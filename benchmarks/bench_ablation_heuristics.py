"""Ablation — the Section 4.2.2 heuristics and the dependency analysis
itself: planner communication with each optimisation removed.

Not a paper figure; DESIGN.md calls these out as the design choices worth
isolating.  Four planner variants over the paper's applications:

* full DMac (dependency analysis + Re-assignment + Pull-Up Broadcast),
* no Pull-Up Broadcast,
* no Re-assignment,
* no heuristics at all (pure greedy over dependencies),
* SystemML-S (no dependency analysis at all) as the ceiling.
"""

from __future__ import annotations


from harness import bench_clock, density, fmt_bytes, report
from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like, sparse_random
from repro.programs import build_gnmf_program, build_linreg_program

CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=16, clock=bench_clock())


def workloads():
    gnmf_data = netflix_like(scale=3e-3, seed=30)
    gnmf = build_gnmf_program(
        gnmf_data.shape, density(gnmf_data), factors=8, iterations=4
    )
    lr_design = sparse_random(2000, 80, 0.1, seed=31)
    lr_target = sparse_random(2000, 1, 1.0, seed=32)
    linreg = build_linreg_program(lr_design.shape, density(lr_design), iterations=4)
    return [
        ("GNMF", gnmf, {"V": gnmf_data}),
        ("LinReg", linreg, {"V": lr_design, "y": lr_target}),
    ]


VARIANTS = [
    ("full DMac", dict(pull_up_broadcast=True, re_assignment=True)),
    ("no pull-up", dict(pull_up_broadcast=False, re_assignment=True)),
    ("no re-assign", dict(pull_up_broadcast=True, re_assignment=False)),
    ("no heuristics", dict(pull_up_broadcast=False, re_assignment=False)),
]


def run_variant(program, inputs, flags):
    session = DMacSession(ClusterConfig(**CONFIG), **flags)
    return session.run(program, inputs)


def test_ablation_heuristics(benchmark):
    loads = workloads()
    benchmark.pedantic(
        run_variant, args=(loads[0][1], loads[0][2], VARIANTS[0][1]), rounds=1, iterations=1
    )
    rows = []
    measured: dict[tuple[str, str], int] = {}
    for app, program, inputs in loads:
        for label, flags in VARIANTS:
            result = run_variant(program, inputs, flags)
            measured[(app, label)] = result.comm_bytes
            rows.append([app, label, fmt_bytes(result.comm_bytes)])
        systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, inputs)
        measured[(app, "SystemML-S")] = systemml.comm_bytes
        rows.append([app, "SystemML-S (no deps)", fmt_bytes(systemml.comm_bytes)])
    report(
        "ablation_heuristics",
        "Ablation -- planner communication by optimisation level",
        ["app", "planner", "communication"],
        rows,
        notes=(
            "dependency analysis provides the bulk of the saving; the two "
            "heuristics refine the greedy plan and never hurt"
        ),
    )
    for app, __, ___ in loads:
        full = measured[(app, "full DMac")]
        bare = measured[(app, "no heuristics")]
        ceiling = measured[(app, "SystemML-S")]
        # heuristics never hurt, dependency analysis dominates
        assert full <= bare, app
        assert measured[(app, "no pull-up")] >= full, app
        assert measured[(app, "no re-assign")] >= full, app
        assert bare < ceiling, app


def test_reassignment_matters_on_linreg(benchmark):
    """Without Re-assignment the loads are frozen in Row scheme and the
    planner pays for layouts the program never wanted."""
    __, program, inputs = workloads()[1]

    def run_pair():
        with_h = run_variant(program, inputs, dict(re_assignment=True))
        without_h = run_variant(program, inputs, dict(re_assignment=False))
        return with_h.comm_bytes, without_h.comm_bytes

    with_bytes, without_bytes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert with_bytes <= without_bytes

"""The ast frontend must compile for free relative to planning.

Every registered program is now produced by ``@matrix_program`` functions
compiled at workload-build time, so frontend lowering sits on the critical
path of every ``repro`` invocation.  This benchmark times compilation
(source capture + ast lowering + IR build) for each registered app —
datasets excluded — against the planner's cost on the same program, and
budgets the whole sweep: the frontend may not dominate planning.
"""

from __future__ import annotations

import time

from harness import fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.frontend.staged import StagedProgram
from repro.programs import (
    build_cf_program,
    build_gnmf_program,
    build_jacobi_program,
    build_linreg_program,
    build_logreg_program,
    build_pagerank_program,
    build_power_iteration_program,
    build_ridge_program,
    build_svd_program,
)
from repro.programs.registry import ALL_APPS

#: app -> frontend compilation thunk at the small-workload shapes.
COMPILERS = {
    "gnmf": lambda: build_gnmf_program((480, 530), 0.05, factors=10,
                                       iterations=2),
    "pagerank": lambda: build_pagerank_program(1200, 0.01, iterations=2),
    "linreg": lambda: build_linreg_program((600, 40), 0.05, iterations=2),
    "logreg": lambda: build_logreg_program((600, 40), 0.05, iterations=2),
    "jacobi": lambda: build_jacobi_program(600, 0.05, iterations=2),
    "cf": lambda: build_cf_program((530, 480), 0.05),
    "svd": lambda: build_svd_program((480, 530), 0.05, rank=6),
    "powiter": lambda: build_power_iteration_program(600, eps=1e-3),
    "ridge": lambda: build_ridge_program((600, 40), 0.05, iterations=2),
}
WORKERS = 4
ROUNDS = 10


def _program_of(built):
    return built[0] if isinstance(built, tuple) else built


def _segments(program):
    if isinstance(program, StagedProgram):
        return program.segments()
    return ((None, program),)


def test_compile_overhead(benchmark):
    assert set(COMPILERS) == set(ALL_APPS), "registry drifted from benchmark"
    rows = []
    total_compile = 0.0
    total_plan = 0.0
    for app in ALL_APPS:
        compile_thunk = COMPILERS[app]
        start = time.perf_counter()
        for _ in range(ROUNDS):
            built = compile_thunk()
        compile_wall = (time.perf_counter() - start) / ROUNDS
        total_compile += compile_wall

        program = _program_of(built)
        session = DMacSession(ClusterConfig(num_workers=WORKERS))
        start = time.perf_counter()
        for __, segment in _segments(program):
            session.plan(segment)
        plan_wall = time.perf_counter() - start
        total_plan += plan_wall

        rows.append([
            app,
            sum(len(seg.ops) for __, seg in _segments(program)),
            "staged" if isinstance(program, StagedProgram) else "flat",
            fmt_secs(compile_wall),
            fmt_secs(plan_wall),
            f"{compile_wall / max(plan_wall, 1e-9):.2f}x",
        ])

    benchmark.pedantic(
        lambda: [COMPILERS[app]() for app in ALL_APPS],
        rounds=3,
        iterations=1,
    )

    report(
        "compile_overhead",
        "Frontend compilation cost per registered program",
        ["app", "ops", "kind", "compile (avg)", "plan", "compile/plan"],
        rows,
        notes=(
            f"compile = ast lowering to MatrixProgram, averaged over "
            f"{ROUNDS} rounds at the small-workload shapes (datasets "
            "excluded); plan = DMac planning of every segment.  Budget: "
            "compiling the full registry cheaper than planning it."
        ),
    )
    assert total_compile < max(total_plan, 1.0), (
        f"compiling all {len(COMPILERS)} programs took {total_compile:.3f} s "
        f"vs {total_plan:.3f} s planning; the frontend must stay off the "
        "profile"
    )

"""Elasticity benchmark — throughput vs worker-seconds (no paper figure).

The paper's clusters are fixed-size: every experiment holds its worker
count for the whole run.  The elastic backend relaxes that, so this
benchmark prices the trade-off the paper never could: each elasticity
policy turns the plan's per-stage flop profile into a join/leave
timeline, and the sweep reports makespan (throughput) against
worker-seconds -- the quantity a cloud bill actually meters.

Two properties are asserted, not just reported:

* **numerics survive churn** -- every policy-driven run reproduces the
  fixed-peak cluster's outputs to 1e-8;
* **elasticity pays both ways** -- load tracking beats the one-member
  cluster on makespan *and* never exceeds the fixed peak cluster's
  worker-seconds, while every timeline run stays at or below the price
  of holding peak membership for its whole duration
  (``worker_seconds <= slot_seconds``).
"""

from __future__ import annotations

import numpy as np
from harness import fmt_bytes, fmt_secs, report, registry_workload

from repro import ClusterConfig, DMacSession
from repro.config import ClockConfig
from repro.elastic import (
    CostCappedPolicy,
    FixedPolicy,
    LoadTrackingPolicy,
    plan_stage_flop_weights,
    timeline_spec,
)

SEED = 0
PEAK = 6  # most members any policy may scale to

APPS = [
    ("GNMF", "gnmf", {"scale": 2e-3, "iterations": 3}),
    ("PageRank", "pagerank", {"scale": 2e-3, "iterations": 4}),
]


def elastic_clock() -> ClockConfig:
    """A mixed compute/overhead simulated clock.

    The shared ``bench_clock()`` is communication-dominated -- the
    paper's regime, where adding workers mostly adds cross-worker
    traffic.  The membership decision matters in a mixed regime: flops
    expensive enough that scaling the heavy stages out divides their
    makespan, with per-stage latency and shuffle time that bill *every
    live member* for the whole stage, so holding peak membership through
    the light stages is the waste elasticity recovers.
    """
    return ClockConfig(
        network_bytes_per_sec=2e7,
        dense_flops_per_sec=5e6,
        sparse_flops_per_sec=1.5e6,
        disk_bytes_per_sec=2e7,
        latency_per_stage_sec=0.01,
    )


def _run(load, spec, workers):
    """One elastic run; empty ``spec`` is the fixed-membership baseline."""
    config = ClusterConfig(
        num_workers=workers,
        threads_per_worker=1,
        block_size=16,
        clock=elastic_clock(),
        backend="elastic",
        elastic=spec,
        elastic_seed=SEED,
    )
    return DMacSession(config).run(load.program, load.inputs)


def _damped_weights(load, window: int = 2):
    """The plan's per-stage flop profile, damped for policy input.

    Iterative programs alternate heavy multiply stages with light
    bookkeeping stages; tracking the raw profile would join and leave
    every other stage, and each leave loses the departing member's
    cached blocks to lineage recomputation.  A running maximum over
    ``+/- window`` stages is the hysteresis a real autoscaler applies:
    membership follows the load envelope, not its ripple.
    """
    config = ClusterConfig(
        num_workers=PEAK, threads_per_worker=1, block_size=16,
        clock=elastic_clock(),
    )
    weights = plan_stage_flop_weights(DMacSession(config).plan(load.program))
    return [
        max(weights[max(0, i - window): i + window + 1])
        for i in range(len(weights))
    ]


def test_elastic_policy_sweep(benchmark):
    """Fixed vs load-tracking vs cost-capped membership, per app."""
    loads = {app: registry_workload(app, **params) for __, app, params in APPS}
    benchmark.pedantic(_run, args=(loads["gnmf"], "", 1), rounds=1, iterations=1)
    rows = []
    for label, app, __ in APPS:
        load = loads[app]
        weights = _damped_weights(load)
        budget = 0.5 * PEAK * len(weights)
        policies = [
            (FixedPolicy(), 1),
            (FixedPolicy(), PEAK),
            (LoadTrackingPolicy(max_members=PEAK), 1),
            (CostCappedPolicy(max_members=PEAK, budget_worker_stages=budget), 1),
        ]
        runs = []
        for policy, initial in policies:
            spec = timeline_spec(policy.timeline(weights, initial))
            result = _run(load, spec, initial)
            runs.append((policy, initial, result))
        baseline = runs[0][2]  # fixed @ 1: the throughput reference
        peak_run = runs[1][2]  # fixed @ PEAK: numeric + cost reference
        for policy, initial, result in runs:
            for name, array in peak_run.matrices.items():
                np.testing.assert_allclose(
                    result.matrices[name], array, atol=1e-8,
                    err_msg=f"{label} [{policy.name}]: output {name} diverged",
                )
            summary = result.elastic
            assert summary["worker_seconds"] <= summary["slot_seconds"], (
                f"{label} [{policy.name}]: an elastic run must not cost more "
                "than holding peak membership for its whole duration"
            )
            rows.append(
                [
                    label,
                    f"{policy.name}@{initial}",
                    f"{summary['initial_members']}->{summary['final_members']}"
                    f" (peak {summary['slots']})",
                    str(len(summary["events"])),
                    fmt_secs(result.simulated_seconds),
                    f"{baseline.simulated_seconds / result.simulated_seconds:.2f}x",
                    fmt_secs(summary["worker_seconds"]),
                    fmt_secs(summary["slot_seconds"]),
                    fmt_bytes(summary["rebalance_bytes"]),
                ]
            )
        tracking = runs[2][2]
        assert tracking.simulated_seconds < baseline.simulated_seconds, (
            f"{label}: load tracking must beat the one-member cluster on "
            "makespan"
        )
        assert (
            tracking.elastic["worker_seconds"]
            <= peak_run.elastic["worker_seconds"]
        ), (
            f"{label}: load tracking must not bill more worker-seconds than "
            f"the fixed {PEAK}-member cluster"
        )
    report(
        "bench_elastic_policies",
        "Elasticity policies: throughput vs worker-seconds",
        ["app", "policy", "members", "events", "makespan", "speedup",
         "worker-s", "peak-held-s", "rebalanced"],
        rows,
        seed=SEED,
        notes="Policies derive join/leave timelines from the plan's damped "
        "per-stage flop profile (plan_stage_flop_weights); 'speedup' is "
        "makespan relative to the fixed one-member baseline, 'worker-s' "
        "sums duration x live members (the cloud bill), 'peak-held-s' "
        "prices the same duration at peak membership.  Every run's outputs "
        f"are asserted equal to the fixed {PEAK}-member cluster's to 1e-8; "
        "load tracking is asserted faster than fixed@1 and no more "
        f"expensive than fixed@{PEAK}.",
    )


def test_elastic_throughput_scaling(benchmark):
    """Makespan as load tracking is allowed more members (GNMF)."""
    load = registry_workload("gnmf", scale=2e-3, iterations=3)
    weights = _damped_weights(load)
    benchmark.pedantic(_run, args=(load, "", 1), rounds=1, iterations=1)
    rows = []
    results = {}
    for max_members in (1, 2, 4, 6):
        spec = timeline_spec(
            LoadTrackingPolicy(max_members=max_members).timeline(weights, 1)
        )
        result = _run(load, spec, 1)
        results[max_members] = result
        summary = result.elastic
        rows.append(
            [
                str(max_members),
                fmt_secs(result.simulated_seconds),
                f"{results[1].simulated_seconds / result.simulated_seconds:.2f}x",
                fmt_secs(summary["worker_seconds"]),
                fmt_bytes(summary["rebalance_bytes"]),
            ]
        )
    assert results[6].simulated_seconds < results[1].simulated_seconds, (
        "granting load tracking more members must shorten the makespan"
    )
    for max_members, result in results.items():
        for name, array in results[1].matrices.items():
            np.testing.assert_allclose(
                result.matrices[name], array, atol=1e-8,
                err_msg=f"max={max_members}: output {name} diverged",
            )
    report(
        "bench_elastic_scaling",
        "Elastic throughput scaling: GNMF under load tracking",
        ["max members", "makespan", "speedup", "worker-s", "rebalanced"],
        rows,
        seed=SEED,
        notes="Load tracking scales membership with each stage's share of "
        "the damped peak stage weight, capped at 'max members'; the pool "
        "starts at one member.  Speedup is relative to the 1-member cap.  "
        "All runs produce identical numerics to 1e-8.",
    )

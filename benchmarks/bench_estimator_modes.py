"""Ablation — worst-case vs average-case size estimation (Section 5.1).

The paper *chooses* the worst-case estimator ("the size of the intermediate
matrix is estimated through the worst-case method") without quantifying the
alternative.  This ablation runs the planner under both modes and compares
predicted against physically metered communication:

* worst-case predictions are a guaranteed upper bound on the measured
  traffic (asserted),
* average-case predictions can *undershoot* on structured data -- the
  failure mode that justifies the paper's conservative choice.
"""

from __future__ import annotations

import numpy as np

from harness import bench_clock, density, fmt_bytes, report
from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like
from repro.lang.program import ProgramBuilder
from repro.programs import build_cf_program, build_gnmf_program

CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=32, clock=bench_clock())


def structured_square_program():
    """A sparse matrix whose non-zeros form dense stripes: the product is
    far denser than independence predicts."""
    size = 192
    array = np.zeros((size, size))
    array[:, :2] = 1.0
    array[:2, :] = 1.0
    pb = ProgramBuilder()
    a = pb.load("A", (size, size), sparsity=density(array))
    p = pb.assign("P", a @ a)
    pb.output(pb.assign("Q", p @ a))
    return pb.build(), {"A": array}


def workloads():
    gnmf_data = netflix_like(scale=2e-3, seed=50)
    cf_data = netflix_like(scale=1.5e-3, seed=51).T
    structured, structured_inputs = structured_square_program()
    return [
        (
            "GNMF",
            build_gnmf_program(gnmf_data.shape, density(gnmf_data), 8, 2),
            {"V": gnmf_data},
        ),
        ("CF", build_cf_program(cf_data.shape, density(cf_data)), {"R": cf_data}),
        ("structured A@A@A", structured, structured_inputs),
    ]


def test_estimator_modes(benchmark):
    loads = workloads()

    def run_all():
        rows = []
        checks = []
        for app, program, inputs in loads:
            for mode in ("worst", "average"):
                session = DMacSession(ClusterConfig(**CONFIG), estimation_mode=mode)
                plan = session.plan(program)
                result = session.run(program, inputs, plan=plan)
                rows.append(
                    [
                        app,
                        mode,
                        fmt_bytes(plan.predicted_bytes),
                        fmt_bytes(result.comm_bytes),
                        "yes" if result.comm_bytes <= plan.predicted_bytes * 1.2 + 4096
                        else "NO",
                    ]
                )
                checks.append((app, mode, plan.predicted_bytes, result.comm_bytes))
        return rows, checks

    rows, checks = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "estimator_modes",
        "Worst-case vs average-case estimation: predicted vs measured comm",
        ["app", "mode", "predicted", "measured", "bound holds"],
        rows,
        notes=(
            "worst-case predictions always bound the measured traffic; "
            "average-case can undershoot on correlated non-zeros, which is "
            "why the paper estimates worst-case (Section 5.1)"
        ),
    )
    undershoots = 0
    for app, mode, predicted, measured in checks:
        if mode == "worst":
            assert measured <= predicted * 1.2 + 4096, (app, predicted, measured)
        elif measured > predicted:
            undershoots += 1
    # The structured workload must expose at least one average-case undershoot.
    assert undershoots >= 1

"""Extension — 1-D (DMac) vs 2-D block-cyclic (SUMMA) multiplication.

The paper defers two-dimensional partitioning to future work, noting the
trade-off: "two-dimensional partitioning produces a more balanced partition
while one-dimensional partitioning can reduce the number of aggregations".
This benchmark quantifies both sides on the shared substrate:

* communication across operand aspect ratios -- SUMMA's
  ``(sqrt(K)-1)(|A|+|B|)`` wins on square operands, 1-D replication wins
  once one operand is skinny enough to broadcast cheaply (the paper's ML
  workloads live in that regime, which is why DMac's 1-D choice is right
  for them);
* stage counts -- SUMMA pays one synchronised panel stage per inner block;
* balance on a row-skewed matrix.
"""

from __future__ import annotations

import numpy as np

from harness import fmt_bytes, report
from repro.config import ClusterConfig
from repro.core.optimal import optimal_cost
from repro.grid2d import (
    Grid2DMatrix,
    GridLayout,
    one_d_imbalance,
    summa_matmul,
    summa_predicted_bytes,
    summa_stage_count,
)
from repro.lang.program import ProgramBuilder
from repro.rdd.context import ClusterContext

WORKERS = 4
ROWS = 512
BLOCK = 64
#: Right-operand widths, from square down to GNMF-style skinny.
WIDTHS = (512, 256, 128, 32, 8)


def one_d_bytes(rows: int, inner: int, cols: int) -> int:
    pb = ProgramBuilder()
    a = pb.load("A", (rows, inner))
    b = pb.load("B", (inner, cols))
    pb.output(pb.assign("C", a @ b))
    return optimal_cost(pb.build(), WORKERS)


def two_d_bytes(context, a: np.ndarray, b: np.ndarray) -> int:
    ga = Grid2DMatrix.from_numpy(context, a, BLOCK, GridLayout(2, 2), storage="dense")
    gb = Grid2DMatrix.from_numpy(context, b, BLOCK, GridLayout(2, 2), storage="dense")
    return summa_predicted_bytes(ga, gb)


def test_ext2d_aspect_ratio_crossover(benchmark):
    rng = np.random.default_rng(40)
    context = ClusterContext(ClusterConfig(num_workers=WORKERS))

    def sweep():
        rows = []
        winners = []
        for width in WIDTHS:
            a = rng.random((ROWS, ROWS))
            b = rng.random((ROWS, width))
            one_d = one_d_bytes(ROWS, ROWS, width)
            two_d = two_d_bytes(context, a, b)
            winner = "2-D SUMMA" if two_d < one_d else "1-D (DMac)"
            winners.append(winner)
            rows.append(
                [f"{ROWS}x{width}", fmt_bytes(one_d), fmt_bytes(two_d), winner]
            )
        return rows, winners

    rows, winners = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ext2d_crossover",
        "1-D vs 2-D multiplication traffic by right-operand width (K=4)",
        ["B shape", "1-D optimal", "2-D SUMMA", "winner"],
        rows,
        notes=(
            "square operands favour SUMMA; skinny operands (the paper's ML "
            "workloads: factor matrices, vectors) favour 1-D replication -- "
            "supporting DMac's 1-D design choice"
        ),
    )
    assert winners[0] == "2-D SUMMA"  # square: 2-D wins
    assert winners[-1] == "1-D (DMac)"  # skinny: 1-D wins


def test_ext2d_stage_overhead(benchmark):
    """SUMMA's stage count grows with the inner dimension; 1-D RMM stays
    at a broadcast stage plus one local stage."""
    rng = np.random.default_rng(41)
    context = ClusterContext(ClusterConfig(num_workers=WORKERS))

    def stages():
        ga = Grid2DMatrix.from_numpy(context, rng.random((ROWS, ROWS)), BLOCK)
        return summa_stage_count(ga)

    summa_stages = benchmark.pedantic(stages, rounds=1, iterations=1)
    assert summa_stages == ROWS // BLOCK  # one per panel
    assert summa_stages > 2  # vs RMM's broadcast + compute


def test_ext2d_balance(benchmark):
    """Cyclic 2-D placement evens out block-row skew that 1-D Row
    partitioning concentrates on one worker."""
    rng = np.random.default_rng(42)
    context = ClusterContext(ClusterConfig(num_workers=WORKERS))
    skewed = np.zeros((ROWS, ROWS))
    skewed[:BLOCK, :] = rng.random((BLOCK, ROWS))  # one hot block-row

    def measure():
        two_d = Grid2DMatrix.from_numpy(
            context, skewed, BLOCK, GridLayout(2, 2)
        ).imbalance()
        one_d = one_d_imbalance(context, skewed, BLOCK, row_scheme=True)
        return one_d, two_d

    one_d, two_d = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "ext2d_balance",
        "Placement imbalance (max worker load / mean) on a row-skewed matrix",
        ["placement", "imbalance"],
        [["1-D Row", f"{one_d:.2f}"], ["2-D block-cyclic", f"{two_d:.2f}"]],
    )
    assert two_d < one_d


def test_ext2d_correctness(benchmark):
    rng = np.random.default_rng(43)
    context = ClusterContext(ClusterConfig(num_workers=WORKERS))
    a, b = rng.random((96, 80)), rng.random((80, 64))

    def run():
        ga = Grid2DMatrix.from_numpy(context, a, 16)
        gb = Grid2DMatrix.from_numpy(context, b, 16)
        return summa_matmul(ga, gb).to_numpy()

    product = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_allclose(product, a @ b, atol=1e-9)

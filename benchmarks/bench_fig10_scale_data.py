"""Figure 10(a,b) — scalability with the input size: GNMF and Linear
Regression per-iteration time as the number of non-zeros in V grows
(columns fixed, rows scaled -- the paper's generator recipe, Section 6.5).

Paper shapes: the DMac-vs-SystemML-S gap *widens* with the input size (in
the plan SystemML-S repartitions W four times and V H^T / W H H^T once per
GNMF iteration, and V twice per LR iteration -- all growing with V -- while
DMac's per-iteration traffic is essentially size-independent).
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import bench_clock, density, fmt_bytes, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.datasets import sparse_random
from repro.programs import build_gnmf_program, build_linreg_program

COLS = 100  # fixed column count, like the paper's 100000
SPARSITY = 0.1
ROW_STEPS = (400, 800, 1600, 3200)
ITERATIONS = 4
CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=64, clock=bench_clock())


def gnmf_pair(rows: int):
    data = sparse_random(rows, COLS, SPARSITY, seed=rows, ensure_coverage=True)
    program = build_gnmf_program(
        data.shape, density(data), factors=8, iterations=ITERATIONS
    )
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, {"V": data})
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, {"V": data})
    return int(np.count_nonzero(data)), dmac, systemml


def linreg_pair(rows: int):
    data = sparse_random(rows, COLS, SPARSITY, seed=rows + 1)
    target = sparse_random(rows, 1, 1.0, seed=rows + 2)
    program = build_linreg_program(data.shape, density(data), iterations=ITERATIONS)
    inputs = {"V": data, "y": target}
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, inputs)
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, inputs)
    return int(np.count_nonzero(data)), dmac, systemml


@pytest.mark.parametrize(
    "label,runner", [("GNMF", gnmf_pair), ("LinReg", linreg_pair)]
)
def test_fig10ab_gap_widens_with_nnz(benchmark, label, runner):
    benchmark.pedantic(runner, args=(ROW_STEPS[0],), rounds=1, iterations=1)
    rows_out = []
    gaps = []
    dmac_times = []
    for rows in ROW_STEPS:
        nnz, dmac, systemml = runner(rows)
        per_iter = lambda r: r.simulated_seconds / ITERATIONS
        gaps.append(systemml.comm_bytes - dmac.comm_bytes)
        dmac_times.append(per_iter(dmac))
        rows_out.append(
            [
                f"{nnz/1000:.1f}k",
                fmt_secs(per_iter(dmac)),
                fmt_secs(per_iter(systemml)),
                fmt_bytes(dmac.comm_bytes),
                fmt_bytes(systemml.comm_bytes),
            ]
        )
    report(
        f"fig10ab_{label.lower()}",
        f"Figure 10 ({label}) -- per-iteration time vs #nonzeros in V",
        ["nnz(V)", "DMac /iter", "SystemML-S /iter", "DMac comm", "SysML comm"],
        rows_out,
        notes="paper: the gap between the curves widens as V grows",
    )
    # The absolute communication gap must widen monotonically with nnz.
    assert all(later > earlier for earlier, later in zip(gaps, gaps[1:]))


def test_fig10_dmac_comm_nearly_size_independent(benchmark):
    """DMac's LR traffic stays flat while V quadruples (V is partitioned
    once; only vectors move per iteration)."""

    def comm(rows: int) -> int:
        __, dmac, __s = linreg_pair(rows)
        return dmac.comm_bytes

    small = benchmark.pedantic(comm, args=(ROW_STEPS[0],), rounds=1, iterations=1)
    large = comm(ROW_STEPS[-1])
    assert large < small * 3  # vs the 8x growth of the input

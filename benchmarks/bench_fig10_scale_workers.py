"""Figure 10(c,d) — scalability with the worker count: GNMF and Linear
Regression per-iteration time on 4..24 workers over a fixed input.

Paper shape: DMac's time falls as workers are added (GNMF: ~65 s on 4
workers down to ~20 s on 20, a 325 % speed-up), and DMac stays below
SystemML-S at every cluster size.
"""

from __future__ import annotations

import pytest

from harness import bench_clock, density, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.datasets import sparse_random
from repro.programs import build_gnmf_program, build_linreg_program

WORKER_STEPS = (4, 8, 12, 20)
ITERATIONS = 3
ROWS, COLS, SPARSITY = 2400, 96, 0.1


def config(workers: int) -> ClusterConfig:
    # This experiment is about *compute* scale-out: the paper's 2-billion-nnz
    # input keeps per-iteration compute far above per-iteration traffic.  At
    # our reduced data scale the same regime needs a proportionally slower
    # flop rate (see harness.bench_clock's rationale).
    import dataclasses

    clock = dataclasses.replace(
        bench_clock(), dense_flops_per_sec=4e6, sparse_flops_per_sec=1.2e6
    )
    return ClusterConfig(
        num_workers=workers, threads_per_worker=2, block_size=48, clock=clock
    )


def gnmf_pair(workers: int):
    data = sparse_random(ROWS, COLS, SPARSITY, seed=13, ensure_coverage=True)
    program = build_gnmf_program(
        data.shape, density(data), factors=8, iterations=ITERATIONS
    )
    dmac = DMacSession(config(workers)).run(program, {"V": data})
    systemml = DMacSession(config(workers)).run_systemml(program, {"V": data})
    return dmac, systemml


def linreg_pair(workers: int):
    data = sparse_random(ROWS, COLS, SPARSITY, seed=14)
    target = sparse_random(ROWS, 1, 1.0, seed=15)
    program = build_linreg_program(data.shape, density(data), iterations=ITERATIONS)
    inputs = {"V": data, "y": target}
    dmac = DMacSession(config(workers)).run(program, inputs)
    systemml = DMacSession(config(workers)).run_systemml(program, inputs)
    return dmac, systemml


@pytest.mark.parametrize("label,runner", [("GNMF", gnmf_pair), ("LinReg", linreg_pair)])
def test_fig10cd_worker_scaling(benchmark, label, runner):
    benchmark.pedantic(runner, args=(WORKER_STEPS[0],), rounds=1, iterations=1)
    rows_out = []
    dmac_compute = []
    for workers in WORKER_STEPS:
        dmac, systemml = runner(workers)
        dmac_compute.append(dmac.time.compute_seconds)
        rows_out.append(
            [
                workers,
                fmt_secs(dmac.simulated_seconds / ITERATIONS),
                fmt_secs(systemml.simulated_seconds / ITERATIONS),
                fmt_secs(dmac.time.compute_seconds / ITERATIONS),
            ]
        )
        assert dmac.simulated_seconds < systemml.simulated_seconds, workers
    report(
        f"fig10cd_{label.lower()}",
        f"Figure 10 ({label}) -- per-iteration time vs #workers",
        ["workers", "DMac /iter", "SystemML-S /iter", "DMac compute /iter"],
        rows_out,
        notes="paper: GNMF drops from ~65s (4 workers) to ~20s (20 workers)",
    )
    # Compute time must fall monotonically as workers are added.
    assert all(later < earlier for earlier, later in zip(dmac_compute, dmac_compute[1:]))
    # And in this compute-bound regime the total falls too (paper's curve).
    first_total = float(rows_out[0][1].split()[0])
    last_total = float(rows_out[-1][1].split()[0])
    assert last_total < first_total


def test_fig10cd_gnmf_speedup_magnitude(benchmark):
    """Paper: 4 -> 20 workers gives roughly a 3x speed-up on compute."""

    def compute_ratio():
        four, __ = gnmf_pair(4)
        twenty, __s = gnmf_pair(20)
        return four.time.compute_seconds / twenty.time.compute_seconds

    ratio = benchmark.pedantic(compute_ratio, rounds=1, iterations=1)
    assert 2.0 < ratio < 6.5

"""Figure 6 — GNMF on a Netflix-shaped matrix: accumulated execution time
(6a) and accumulated communication (6b) over 10 iterations, DMac vs
SystemML-S vs single-machine R.  Also reports the Section 6.2 claim that
communication is ~44 % of SystemML-S's runtime but only ~6 % of DMac's.

Paper setup: Netflix (480189 x 17770, s~0.012), factor rank 200, 4 nodes.
Here: the same shape at reduced scale (see DESIGN.md), rank scaled alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import bench_clock, density, fmt_bytes, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.baselines.rlocal import run_local
from repro.datasets import netflix_like
from repro.programs import build_gnmf_program

SCALE = 4e-3
FACTORS = 16
MAX_ITERATIONS = 10
CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=96, clock=bench_clock())


@pytest.fixture(scope="module")
def ratings() -> np.ndarray:
    return netflix_like(scale=SCALE, seed=1)


def run_dmac(ratings: np.ndarray, iterations: int):
    program = build_gnmf_program(
        ratings.shape, density(ratings), factors=FACTORS, iterations=iterations
    )
    return DMacSession(ClusterConfig(**CONFIG)).run(program, {"V": ratings})


def run_systemml(ratings: np.ndarray, iterations: int):
    program = build_gnmf_program(
        ratings.shape, density(ratings), factors=FACTORS, iterations=iterations
    )
    return DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, {"V": ratings})


def test_fig6_gnmf_series(benchmark):
    ratings = netflix_like(scale=SCALE, seed=1)
    benchmark.pedantic(run_dmac, args=(ratings, 2), rounds=1, iterations=1)

    rows = []
    final = {}
    for iterations in range(1, MAX_ITERATIONS + 1):
        dmac = run_dmac(ratings, iterations)
        systemml = run_systemml(ratings, iterations)
        program = build_gnmf_program(
            ratings.shape, density(ratings), factors=FACTORS, iterations=iterations
        )
        local = run_local(program, {"V": ratings}, clock=bench_clock())
        rows.append(
            [
                iterations,
                fmt_secs(dmac.simulated_seconds),
                fmt_secs(systemml.simulated_seconds),
                fmt_secs(local.simulated_seconds),
                fmt_bytes(dmac.comm_bytes),
                fmt_bytes(systemml.comm_bytes),
            ]
        )
        final = {"dmac": dmac, "systemml": systemml}

    dmac, systemml = final["dmac"], final["systemml"]
    dmac_share = dmac.time.network_seconds / max(
        dmac.time.network_seconds + dmac.time.compute_seconds, 1e-12
    )
    sysml_share = systemml.time.network_seconds / max(
        systemml.time.network_seconds + systemml.time.compute_seconds, 1e-12
    )
    report(
        "fig6_gnmf",
        "Figure 6 -- GNMF on Netflix-shaped data (accumulated, 10 iterations)",
        ["iter", "DMac time", "SystemML-S time", "R time", "DMac comm", "SystemML-S comm"],
        rows,
        notes=(
            f"communication share of (network+compute) runtime: "
            f"SystemML-S {sysml_share:.0%} vs DMac {dmac_share:.0%} "
            f"(paper: ~44% vs ~6%); comm ratio "
            f"{systemml.comm_bytes / max(dmac.comm_bytes, 1):.1f}x "
            f"(paper: ~40GB vs ~1.5GB, ~27x)"
        ),
    )

    # Paper shapes that must hold at any scale:
    assert dmac.comm_bytes * 5 < systemml.comm_bytes
    assert dmac.simulated_seconds < systemml.simulated_seconds
    assert dmac_share < sysml_share


def test_fig6_results_numerically_identical(benchmark):
    """Both systems compute the same factors -- the gap is pure plumbing."""
    ratings = netflix_like(scale=SCALE, seed=1)

    def run_both():
        return run_dmac(ratings, 2), run_systemml(ratings, 2)

    dmac, systemml = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for name in dmac.matrices:
        np.testing.assert_allclose(
            dmac.matrices[name], systemml.matrices[name], atol=1e-8
        )

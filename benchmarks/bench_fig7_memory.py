"""Figure 7 — local matmul memory: In-Place vs Buffer on four graphs.

Paper setup: squaring each real graph's adjacency matrix on one worker;
In-Place needs far less memory than Buffer, and Buffer cannot finish
Wikipedia within the 48 GB node budget at all.  Here: the Table 3 graph
surrogates at reduced scale, with the same per-node budget scaled down.
"""

from __future__ import annotations

import pytest

from harness import fmt_bytes, report
from repro.blocks import split
from repro.datasets import PAPER_GRAPHS, graph_like
from repro.errors import MemoryLimitExceeded
from repro.localexec import LocalEngine

SCALES = {
    "soc-pokec": 1.2e-3,
    "cit-Patents": 5e-4,
    "LiveJournal": 4e-4,
    "Wikipedia": 8e-5,
}
BLOCK = 128
THREADS = 4


def measure(name: str, inplace: bool, limit: int | None = None):
    adjacency = graph_like(name, scale=SCALES[name], seed=3)
    grid = split(adjacency, BLOCK, storage="sparse")
    engine = LocalEngine(threads=THREADS, inplace=inplace, memory_limit_bytes=limit)
    engine.register_grid(grid)
    engine.matmul_grids(grid, grid)
    return engine.tracker.peak_bytes


def test_fig7_inplace_vs_buffer(benchmark):
    benchmark.pedantic(measure, args=("soc-pokec", True), rounds=1, iterations=1)
    rows = []
    peaks = {}
    for name in PAPER_GRAPHS:
        inplace = measure(name, inplace=True)
        buffer = measure(name, inplace=False)
        peaks[name] = (inplace, buffer)
        rows.append([name, fmt_bytes(inplace), fmt_bytes(buffer), f"{buffer / inplace:.2f}x"])
    report(
        "fig7_memory",
        "Figure 7 -- local matmul peak memory: In-Place vs Buffer",
        ["graph", "In-Place", "Buffer", "Buffer/In-Place"],
        rows,
        notes=(
            "paper: In-Place uses several GB less on LiveJournal; Buffer cannot "
            "complete Wikipedia in 48 GB.  Sparser graphs (soc-pokec, "
            "cit-Patents) show smaller gaps."
        ),
    )
    # Shapes: In-Place always <= Buffer; densest intermediate (LiveJournal /
    # Wikipedia surrogates) shows the largest absolute gap.
    for name, (inplace, buffer) in peaks.items():
        assert inplace <= buffer, name
    gaps = {name: b - i for name, (i, b) in peaks.items()}
    assert gaps["LiveJournal"] > gaps["cit-Patents"]


def test_fig7_buffer_exceeds_scaled_node_budget(benchmark):
    """The paper's Wikipedia failure: a budget In-Place fits in kills Buffer."""

    def run() -> int:
        return measure("Wikipedia", inplace=True)

    inplace_peak = benchmark.pedantic(run, rounds=1, iterations=1)
    budget = int(inplace_peak * 1.3)
    measure("Wikipedia", inplace=True, limit=budget)  # fits
    with pytest.raises(MemoryLimitExceeded):
        measure("Wikipedia", inplace=False, limit=budget)

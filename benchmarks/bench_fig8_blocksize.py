"""Figure 8 — influence of block size: execution time (8a) and memory (8b)
for local matrix multiplication on three graphs, plus the Equation-3
threshold check.

Paper shapes: tiny blocks waste memory on duplicated Column-Start-Index
arrays and slow execution down; blocks past the Equation-3 bound starve the
thread pool and slow execution down again; memory decreases monotonically
with block size.
"""

from __future__ import annotations

import time

import pytest

from harness import fmt_bytes, report
from repro.blocks import max_block_size, split
from repro.datasets import graph_like
from repro.localexec import LocalEngine

GRAPHS = ("LiveJournal", "soc-pokec", "cit-Patents")
SCALE = {"LiveJournal": 3e-4, "soc-pokec": 8e-4, "cit-Patents": 3.5e-4}
WORKERS, THREADS = 4, 8
#: Block sizes as fractions of the matrix dimension (sweep like Fig 8's x axis).
FRACTIONS = (0.02, 0.05, 0.125, 0.25, 0.5, 1.0)


def sweep(name: str):
    adjacency = graph_like(name, scale=SCALE[name], seed=4)
    nodes = adjacency.shape[0]
    points = []
    for fraction in FRACTIONS:
        block = max(8, int(nodes * fraction))
        grid = split(adjacency, block, storage="sparse")
        engine = LocalEngine(threads=THREADS, inplace=True)
        engine.register_grid(grid)
        start = time.perf_counter()
        engine.matmul_grids(grid, grid)
        wall = time.perf_counter() - start
        # Storage memory of the blocked input (Equation 2's subject).
        input_bytes = sum(b.model_nbytes for b in grid.values())
        points.append((block, wall, input_bytes, engine.tracker.peak_bytes))
    return nodes, points


def test_fig8_block_size_sweep(benchmark):
    benchmark.pedantic(sweep, args=("soc-pokec",), rounds=1, iterations=1)
    rows = []
    shapes_ok = {}
    for name in GRAPHS:
        nodes, points = sweep(name)
        threshold = max_block_size(nodes, nodes, WORKERS, THREADS)
        for block, wall, input_bytes, peak in points:
            rows.append(
                [
                    name,
                    block,
                    f"{wall * 1000:.1f} ms",
                    fmt_bytes(input_bytes),
                    fmt_bytes(peak),
                    f"(Eq3 bound: {threshold})",
                ]
            )
        input_series = [input_bytes for __, __, input_bytes, __ in points]
        shapes_ok[name] = {
            # 8b: sparse storage shrinks monotonically with block size
            "memory_monotone": all(
                a >= b for a, b in zip(input_series, input_series[1:])
            ),
            "threshold": threshold,
            "nodes": nodes,
        }
    report(
        "fig8_blocksize",
        "Figure 8 -- block-size sweep (local sparse matmul, In-Place)",
        ["graph", "block", "exec time", "input memory (Eq2)", "peak memory", "Eq3"],
        rows,
        notes=(
            "paper: memory falls as blocks grow (duplicated Column-Start-Index "
            "arrays shrink); execution degrades past the Eq-3 bound "
            "(~856k LiveJournal / ~289k soc-pokec / ~667k cit-Patents at "
            "full scale) because threads starve."
        ),
    )
    for name, checks in shapes_ok.items():
        assert checks["memory_monotone"], name


def test_fig8_equation3_thresholds_match_paper(benchmark):
    """At the paper's full scale, Equation 3 yields the thresholds quoted in
    Section 6.3."""

    def bounds():
        return {
            "LiveJournal": max_block_size(4_847_571, 4_847_571, 4, 8),
            "soc-pokec": max_block_size(1_632_803, 1_632_803, 4, 8),
            "cit-Patents": max_block_size(3_774_768, 3_774_768, 4, 8),
        }

    values = benchmark.pedantic(bounds, rounds=1, iterations=1)
    assert values["LiveJournal"] == pytest.approx(856_000, rel=0.02)
    assert values["soc-pokec"] == pytest.approx(289_000, rel=0.02)
    assert values["cit-Patents"] == pytest.approx(667_000, rel=0.02)


def test_fig8_oversized_blocks_starve_threads(benchmark):
    """One block per matrix means one task: local parallelism collapses."""
    adjacency = graph_like("soc-pokec", scale=8e-4, seed=4)
    nodes = adjacency.shape[0]

    def tasks_for(block: int) -> int:
        grid = split(adjacency, block, storage="sparse")
        engine = LocalEngine(threads=THREADS, inplace=True)
        engine.matmul_grids(grid, grid)
        return engine.stats.tasks

    small_tasks = benchmark.pedantic(tasks_for, args=(nodes // 8,), rounds=1, iterations=1)
    huge_tasks = tasks_for(nodes)
    assert huge_tasks == 1
    assert small_tasks >= THREADS

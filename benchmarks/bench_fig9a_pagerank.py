"""Figure 9(a) — PageRank per-iteration execution time on the four graphs,
DMac vs SystemML-S.

Paper shape: DMac wins consistently on every graph (e.g. Wikipedia: ~8 s vs
~40 s per iteration) because the link matrix is cached in Column scheme
(Reference dependency) and only the small rank vector is broadcast per
iteration, while SystemML-S repartitions the link matrix every time.
"""

from __future__ import annotations


from harness import bench_clock, density, fmt_bytes, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.core.plan import ExtendedStep
from repro.datasets import PAPER_GRAPHS, graph_like, row_normalize
from repro.programs import build_pagerank_program

SCALES = {
    "soc-pokec": 6e-4,
    "cit-Patents": 2.6e-4,
    "LiveJournal": 2e-4,
    "Wikipedia": 4e-5,
}
ITERATIONS = 10
CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=128, clock=bench_clock())


def run_pair(name: str):
    link = row_normalize(graph_like(name, scale=SCALES[name], seed=5))
    program = build_pagerank_program(link.shape[0], density(link), iterations=ITERATIONS)
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, {"link": link})
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, {"link": link})
    return dmac, systemml


def test_fig9a_pagerank(benchmark):
    benchmark.pedantic(run_pair, args=("soc-pokec",), rounds=1, iterations=1)
    rows = []
    results = {}
    for name in PAPER_GRAPHS:
        dmac, systemml = run_pair(name)
        results[name] = (dmac, systemml)
        rows.append(
            [
                name,
                fmt_secs(dmac.simulated_seconds / ITERATIONS),
                fmt_secs(systemml.simulated_seconds / ITERATIONS),
                fmt_bytes(dmac.comm_bytes),
                fmt_bytes(systemml.comm_bytes),
                f"{systemml.simulated_seconds / dmac.simulated_seconds:.1f}x",
            ]
        )
    report(
        "fig9a_pagerank",
        "Figure 9(a) -- PageRank per-iteration time, DMac vs SystemML-S",
        ["graph", "DMac /iter", "SystemML-S /iter", "DMac comm", "SysML comm", "speedup"],
        rows,
        notes="paper: DMac wins on all four graphs (Wikipedia ~8s vs ~40s, ~5x)",
    )
    for name, (dmac, systemml) in results.items():
        assert dmac.simulated_seconds < systemml.simulated_seconds, name
        assert dmac.comm_bytes < systemml.comm_bytes, name


def test_fig9a_link_cached_in_one_scheme(benchmark):
    """The mechanism behind the win: the plan never moves the link matrix."""

    def plan_for_link():
        link = row_normalize(graph_like("soc-pokec", scale=SCALES["soc-pokec"], seed=5))
        program = build_pagerank_program(
            link.shape[0], density(link), iterations=ITERATIONS
        )
        return DMacSession(ClusterConfig(**CONFIG)).plan(program)

    plan = benchmark.pedantic(plan_for_link, rounds=1, iterations=1)
    link_moves = [
        step
        for step in plan.steps
        if isinstance(step, ExtendedStep)
        and step.communicates
        and step.source.name == "link"
    ]
    assert link_moves == []

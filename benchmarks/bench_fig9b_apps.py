"""Figure 9(b) — Linear Regression, Collaborative Filtering and SVD:
execution time normalised to DMac's.

Paper shapes: LR >7x (SystemML-S repartitions V twice per iteration, DMac
partitions it once for the whole program); SVD ~3.3x (954 s vs 291 s); CF
~1.7x (264 s vs 151 s -- both pick RMM, but SystemML-S re-broadcasts R and
repartitions the dense R R^T intermediate).
"""

from __future__ import annotations

import numpy as np

from harness import bench_clock, density, fmt_bytes, report
from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like, sparse_random
from repro.programs import build_cf_program, build_linreg_program, build_svd_program

CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=64, clock=bench_clock())


def run_linreg():
    design = sparse_random(4000, 100, 0.1, seed=6)
    target = sparse_random(4000, 1, 1.0, seed=7)
    program = build_linreg_program(design.shape, density(design), iterations=10)
    inputs = {"V": design, "y": target}
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, inputs)
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, inputs)
    return dmac, systemml


def run_cf():
    ratings = netflix_like(scale=2.5e-3, seed=8).T  # items x users
    program = build_cf_program(ratings.shape, density(ratings))
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, {"R": ratings})
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, {"R": ratings})
    return dmac, systemml


def run_svd():
    data = netflix_like(scale=2.5e-3, seed=9)
    program, __ = build_svd_program(data.shape, density(data), rank=10)
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, {"V": data})
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, {"V": data})
    return dmac, systemml


def test_fig9b_normalised_ratios(benchmark):
    benchmark.pedantic(run_cf, rounds=1, iterations=1)
    rows = []
    ratios = {}
    paper = {"LR": ">7x", "CF": "~1.7x", "SVD": "~3.3x"}
    for label, runner in (("LR", run_linreg), ("CF", run_cf), ("SVD", run_svd)):
        dmac, systemml = runner()
        ratio = systemml.simulated_seconds / dmac.simulated_seconds
        ratios[label] = ratio
        rows.append(
            [
                label,
                "1.0",
                f"{ratio:.2f}",
                fmt_bytes(dmac.comm_bytes),
                fmt_bytes(systemml.comm_bytes),
                paper[label],
            ]
        )
    report(
        "fig9b_apps",
        "Figure 9(b) -- LR / CF / SVD time normalised to DMac",
        ["app", "DMac", "SystemML-S", "DMac comm", "SysML comm", "paper ratio"],
        rows,
    )
    # Paper shapes: DMac wins everywhere; LR shows the largest ratio.
    assert all(ratio > 1.0 for ratio in ratios.values())
    assert ratios["LR"] >= max(ratios["CF"], ratios["SVD"]) * 0.8


def test_fig9b_linreg_v_partitioned_once(benchmark):
    """The LR mechanism: V moves zero times after its initial load."""
    from repro.core.plan import ExtendedStep

    def plan():
        program = build_linreg_program((4000, 100), 0.1, iterations=10)
        return DMacSession(ClusterConfig(**CONFIG)).plan(program)

    result = benchmark.pedantic(plan, rounds=1, iterations=1)
    moves = [
        s
        for s in result.steps
        if isinstance(s, ExtendedStep) and s.communicates and s.source.name == "V"
    ]
    assert moves == []


def test_fig9b_results_agree(benchmark):
    """Sanity: both systems produce identical numbers on each app."""

    def run():
        return run_linreg()

    dmac, systemml = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in dmac.matrices:
        np.testing.assert_allclose(dmac.matrices[name], systemml.matrices[name], atol=1e-7)

"""repro.kernels — wall-clock wins from fusion and batched BLAS dispatch.

The first benchmark whose headline number is *wall-clock*, not simulated:

* **Fused cellwise ladder** — GNMF-style multiply/divide rungs, iterated so
  the fusion pass collapses twelve cellwise steps into one composed kernel
  per block.  Gate: >= 1.5x over the unfused engine, byte-identical.
* **Batched grid matmul** — a dense block product at a small block size,
  where one broadcast ``np.matmul`` per ascending-k level replaces
  thousands of per-pair dgemm dispatches.  Gate: >= 1.5x, byte-identical.
* **Registry apps, batched vs serial** — GNMF plus the LR and CF
  workloads from ``bench_fig9b_apps`` rerun with ``batched_matmul`` on
  and off.  GNMF's dense factor-update products are the regular stages
  batching targets in real programs (gated on a positive batched-pair
  count); LR and CF are sparse-dominated, so the gate there is the
  *opposite* observable — the planner must route zero pairs through the
  batched path (sparsity-awareness) and add no overhead.
"""

from __future__ import annotations

import time

import numpy as np

from harness import (
    assert_plan_clean,
    bench_clock,
    density,
    fmt_secs,
    registry_workload,
    report,
)
from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like, sparse_random
from repro.lang.program import ProgramBuilder
from repro.programs import build_cf_program, build_linreg_program

SEED = 13
CONFIG = dict(num_workers=4, threads_per_worker=2, clock=bench_clock())


def _best_run(session, program, inputs, plan, rounds=5):
    """Best-of-N wall-clock for executing a pre-built plan."""
    session.run(program, inputs, plan=plan)  # warm caches and pools
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = session.run(program, inputs, plan=plan)
        best = min(best, time.perf_counter() - started)
    return best, result


def run_fused_ladder():
    """GNMF's cellwise ladder, iterated: ``X = X * A / B`` six times."""
    from repro.core.plan import FusedCellwiseStep

    size, rungs = 1024, 6
    pb = ProgramBuilder()
    x = pb.load("X", (size, size))
    a = pb.load("A", (size, size))
    b = pb.load("B", (size, size))
    out = x
    for _ in range(rungs):
        out = pb.assign("X", out * a / b)
    pb.output(out)
    program = pb.build()
    rng = np.random.default_rng(SEED)
    inputs = {
        "X": rng.random((size, size)),
        "A": rng.random((size, size)) + 0.5,
        "B": rng.random((size, size)) + 0.5,
    }
    measured = {}
    for optimized in (False, True):
        config = ClusterConfig(block_size=64, **CONFIG)
        session = DMacSession(config, optimize=optimized)
        plan = session.plan(program)
        assert_plan_clean(plan, config)
        if optimized:
            fused = [s for s in plan.steps if isinstance(s, FusedCellwiseStep)]
            assert fused, "fusion pass left the ladder unfused"
            assert len(fused[0].chain) == 2 * rungs
            assert plan.certificates, "optimized plan must be certified"
        seconds, result = _best_run(session, program, inputs, plan)
        measured[optimized] = (seconds, result)
    (unfused_secs, unfused), (fused_secs, fused) = measured[False], measured[True]
    assert _bytes(unfused) == _bytes(fused), "fusion changed the output bytes"
    return {
        "label": f"fused ladder ({rungs} rungs, {size}^2)",
        "base_secs": unfused_secs,
        "new_secs": fused_secs,
        "identical": True,
        "metric": f"comm {unfused.comm_bytes} -> {fused.comm_bytes} B (simulated)",
    }


def run_batched_chain():
    """Dense chain matmul at block size 32: thousands of same-shape pairs."""
    size, iterations = 768, 3
    pb = ProgramBuilder()
    x = pb.load("X", (size, size))
    a = pb.load("A", (size, size))
    out = x
    for _ in range(iterations):
        out = pb.assign("X", out @ a)
    pb.output(out)
    program = pb.build()
    rng = np.random.default_rng(SEED)
    inputs = {
        "X": rng.standard_normal((size, size)),
        "A": rng.standard_normal((size, size)) * 0.01,
    }
    measured = {}
    for batched in (False, True):
        config = ClusterConfig(block_size=32, batched_matmul=batched, **CONFIG)
        session = DMacSession(config)
        plan = session.plan(program)
        assert_plan_clean(plan, config)
        measured[batched] = _best_run(session, program, inputs, plan)
    (serial_secs, serial), (batched_secs, batched) = measured[False], measured[True]
    assert _bytes(serial) == _bytes(batched), "batching changed the output bytes"
    return {
        "label": f"batched matmul chain ({size}^2, block 32)",
        "base_secs": serial_secs,
        "new_secs": batched_secs,
        "identical": True,
        "metric": f"{(size // 32) ** 3 * iterations} block pairs/run",
    }


def run_apps_batched():
    """GNMF plus the fig9b LR/CF workloads, batched vs serial engine.

    GNMF's factor updates multiply dense block grids, so it must route a
    positive pair count through the batched path; LR and CF are built
    around sparse operands, so the planner must route *zero* pairs (the
    batched path only ever sees regular dense grids) while staying
    byte-identical and overhead-free.
    """
    gnmf = registry_workload("gnmf", iterations=2)
    design = sparse_random(4000, 100, 0.1, seed=6)
    target = sparse_random(4000, 1, 1.0, seed=7)
    ratings = netflix_like(scale=2.5e-3, seed=8).T
    workloads = {
        "GNMF": (gnmf.program, gnmf.inputs, True),
        "fig9b LR": (
            build_linreg_program(design.shape, density(design), iterations=10),
            {"V": design, "y": target},
            False,
        ),
        "fig9b CF": (
            build_cf_program(ratings.shape, density(ratings)),
            {"R": ratings},
            False,
        ),
    }
    rows = []
    for label, (program, inputs, expect_batched) in workloads.items():
        measured = {}
        for batched in (False, True):
            config = ClusterConfig(block_size=64, batched_matmul=batched, **CONFIG)
            session = DMacSession(config)
            plan = session.plan(program)
            measured[batched] = _best_run(session, program, inputs, plan)
        (serial_secs, serial), (batched_secs, batched) = (
            measured[False],
            measured[True],
        )
        assert _bytes(serial) == _bytes(batched), f"{label}: outputs diverged"
        assert serial.batched_pairs == 0
        if expect_batched:
            assert batched.batched_pairs > 0, f"{label}: dense stages never batched"
        else:
            assert batched.batched_pairs == 0, f"{label}: sparse stages batched"
        rows.append(
            {
                "label": f"{label} (batched engine)",
                "base_secs": serial_secs,
                "new_secs": batched_secs,
                "identical": True,
                "batched_pairs": batched.batched_pairs,
                "metric": f"{batched.batched_pairs} block pairs batched/run",
            }
        )
    return rows


def _bytes(result):
    return {key: value.tobytes() for key, value in sorted(result.matrices.items())}


def test_fused_kernels_wall_clock(benchmark):
    ladder = benchmark.pedantic(run_fused_ladder, rounds=1, iterations=1)
    chain = run_batched_chain()
    apps = run_apps_batched()
    entries = [ladder, chain] + apps
    rows = []
    for entry in entries:
        speedup = entry["base_secs"] / entry["new_secs"]
        entry["speedup"] = speedup
        rows.append(
            [
                entry["label"],
                fmt_secs(entry["base_secs"]),
                fmt_secs(entry["new_secs"]),
                f"{speedup:.2f}x",
                "yes" if entry["identical"] else "NO",
                entry["metric"],
            ]
        )
    report(
        "fused_kernels",
        "repro.kernels -- wall-clock speedups (fusion / batched BLAS)",
        ["workload", "baseline", "kernels", "speedup", "byte-identical", "notes"],
        rows,
        notes="baseline = unfused/serial engine; kernels = fused or batched "
        "path.  All outputs byte-identical to the baseline engine.",
        seed=SEED,
    )
    # Hard gates: the headline fusion and batching wins.
    assert ladder["speedup"] >= 1.5, f"fused ladder only {ladder['speedup']:.2f}x"
    assert chain["speedup"] >= 1.5, f"batched chain only {chain['speedup']:.2f}x"
    # On real apps the sparse stages dominate end-to-end time, so the
    # measurable win is the deterministic dispatch count (asserted per app
    # inside run_apps_batched: GNMF > 0, LR/CF == 0); end-to-end time must
    # never really regress (noise floor).
    assert all(entry["speedup"] >= 0.8 for entry in apps)

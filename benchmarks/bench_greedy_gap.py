"""Ablation — how far is Algorithm 1's greedy plan from the communication
optimum?

DESIGN.md calls this out as a quality invariant: on small programs the
greedy plan's cost (re-priced under the paper's model) is compared against
the exhaustive search of ``repro.core.optimal``.  Not a paper figure -- the
paper never quantifies the greedy gap -- but it bounds the claim that the
dependency-oriented greedy is "communication efficient".
"""

from __future__ import annotations


from harness import fmt_bytes, report
from repro.core.optimal import optimal_cost, paper_cost_of_plan
from repro.core.planner import DMacPlanner
from repro.lang.program import ProgramBuilder
from repro.programs import build_cf_program, build_gnmf_program, build_pagerank_program

WORKERS = 4


def corpus():
    """Small representative programs (exhaustive search stays feasible)."""
    programs = []

    pb = ProgramBuilder()
    a = pb.load("A", (256, 256))
    b = pb.load("B", (256, 16))
    pb.output(pb.assign("C", a @ b))
    programs.append(("matmul", pb.build()))

    pb = ProgramBuilder()
    a = pb.load("A", (512, 16), sparsity=0.2)
    pb.output(pb.assign("G", a.T @ a))
    programs.append(("gram", pb.build()))

    programs.append(("CF (RR^T R)", build_cf_program((64, 512), 0.05)))
    programs.append(
        ("GNMF 1 iter", build_gnmf_program((512, 128), 0.05, factors=8, iterations=1))
    )
    programs.append(
        ("PageRank 2 iter", build_pagerank_program(256, 0.02, iterations=2))
    )

    pb = ProgramBuilder()
    a = pb.load("A", (64, 64))
    b = pb.load("B", (64, 64))
    c = pb.assign("C", a + b)
    d = pb.assign("D", c + a)
    e = pb.assign("E", a.T * d)
    g = pb.load("G", (4096, 64))
    pb.output(pb.assign("F", g @ a))
    pb.output(e)
    programs.append(("pull-up pattern", pb.build()))

    return programs


def test_greedy_gap(benchmark):
    programs = corpus()

    def run_all():
        rows = []
        gaps = []
        for name, program in programs:
            plan = DMacPlanner(program, WORKERS).plan()
            greedy = paper_cost_of_plan(plan, WORKERS)
            best = optimal_cost(program, WORKERS)
            gap = greedy / best if best else (1.0 if greedy == 0 else float("inf"))
            gaps.append((name, greedy, best, gap))
            rows.append([name, fmt_bytes(greedy), fmt_bytes(best), f"{gap:.2f}x"])
        return rows, gaps

    rows, gaps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "greedy_gap",
        "Greedy (Algorithm 1) vs exhaustive-optimal communication",
        ["program", "greedy", "optimal", "gap"],
        rows,
    )
    for name, greedy, best, gap in gaps:
        assert greedy >= best, name
        assert gap <= 3.0, f"{name}: greedy {gap:.2f}x off optimal"

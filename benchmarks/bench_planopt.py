"""Plan optimizer — ledgered traffic and simulated time, optimized vs not.

The optimizer (CSE + loop-invariant hoisting + dead-step elimination +
repartition coalescing, paired with the memory-metered block cache) must
pay for itself on the paper's iterative workloads: 10-iteration PageRank
and GNMF should move at least 1.5x fewer ledgered shuffle bytes and finish
in less simulated time, with byte-identical outputs.  Jacobi rides along
as a no-regression check.
"""

from __future__ import annotations

import numpy as np

from harness import bench_clock, fmt_bytes, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.lang.program import LoadOp
from repro.programs import (
    build_gnmf_program,
    build_jacobi_program,
    build_pagerank_program,
)

ITERATIONS = 10
CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=128, clock=bench_clock())

APPS = {
    "pagerank": lambda: build_pagerank_program(1500, 0.004, iterations=ITERATIONS),
    "gnmf": lambda: build_gnmf_program(
        (200, 5000), 0.005, factors=32, iterations=ITERATIONS
    ),
    "jacobi": lambda: build_jacobi_program(600, 0.1, iterations=ITERATIONS),
}


def inputs_for(program, seed=7):
    rng = np.random.default_rng(seed)
    inputs = {}
    for op in program.ops:
        if isinstance(op, LoadOp):
            array = rng.random((op.rows, op.cols))
            if op.sparsity < 1.0:
                array[array > op.sparsity] = 0.0
            inputs[op.output] = array
    return inputs


def run_pair(name: str):
    """One app, optimizer off vs on; returns results plus shuffle bytes."""
    program = APPS[name]()
    inputs = inputs_for(program)
    plain_session = DMacSession(ClusterConfig(**CONFIG))
    plain = plain_session.run(program, inputs)
    opt_session = DMacSession(ClusterConfig(**CONFIG), optimize=True)
    opt = opt_session.run(program, inputs)
    plain_shuffle = plain_session.context.ledger.bytes_by_kind().get("shuffle", 0)
    opt_shuffle = opt_session.context.ledger.bytes_by_kind().get("shuffle", 0)
    return plain, opt, plain_shuffle, opt_shuffle


def test_planopt(benchmark):
    benchmark.pedantic(run_pair, args=("pagerank",), rounds=1, iterations=1)
    rows = []
    results = {}
    for name in APPS:
        plain, opt, plain_shuffle, opt_shuffle = run_pair(name)
        results[name] = (plain, opt, plain_shuffle, opt_shuffle)
        if plain_shuffle == 0:
            reduction = "n/a"
        elif opt_shuffle == 0:
            reduction = "inf"
        else:
            reduction = f"{plain_shuffle / opt_shuffle:.2f}x"
        rows.append(
            [
                name,
                fmt_bytes(plain_shuffle),
                fmt_bytes(opt_shuffle),
                reduction,
                fmt_secs(plain.simulated_seconds),
                fmt_secs(opt.simulated_seconds),
                str(opt.cache["pins"] if opt.cache else 0),
            ]
        )
    report(
        "planopt",
        "Plan optimizer -- ledgered shuffle bytes and simulated time, off vs on",
        ["app", "shuffle off", "shuffle on", "reduction", "time off", "time on", "pins"],
        rows,
        notes=(
            "optimizer = CSE + hoist (Fig 9a reference-dependency caching) + "
            "DCE + repartition coalescing; outputs are byte-identical"
        ),
    )
    for name, (plain, opt, plain_shuffle, opt_shuffle) in results.items():
        for out in plain.matrices:
            assert (
                plain.matrices[out].tobytes() == opt.matrices[out].tobytes()
            ), f"{name}: output {out!r} diverged under optimization"
        if name in ("pagerank", "gnmf"):
            assert plain_shuffle >= 1.5 * opt_shuffle, (
                f"{name}: shuffle reduction below 1.5x "
                f"({plain_shuffle} vs {opt_shuffle})"
            )
            assert opt.simulated_seconds < plain.simulated_seconds, name
        else:  # no-regression ride-alongs (total traffic; the optimizer may
            # legally trade a broadcast for a smaller shuffle)
            assert opt.comm_bytes <= plain.comm_bytes, name
            assert opt.simulated_seconds <= plain.simulated_seconds * 1.001, name

"""Supplemental — GNMF factor-rank sweep.

The paper fixes the factor rank at 200 "a reasonable value for the Netflix
dataset" (Section 6.2) without sweeping it.  This supplemental experiment
varies the rank: both systems' traffic grows with the factor matrices, but
DMac's advantage persists across the sweep because what it eliminates --
the repeated repartitions of W, H and the intermediates -- grows at the
same rate.
"""

from __future__ import annotations


from harness import bench_clock, density, fmt_bytes, report
from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like
from repro.programs import build_gnmf_program

RANKS = (4, 8, 16, 32)
ITERATIONS = 3
CONFIG = dict(num_workers=4, threads_per_worker=2, block_size=24, clock=bench_clock())


def run_pair(ratings, rank):
    program = build_gnmf_program(
        ratings.shape, density(ratings), factors=rank, iterations=ITERATIONS
    )
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, {"V": ratings})
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, {"V": ratings})
    return dmac, systemml


def test_rank_sweep(benchmark):
    ratings = netflix_like(scale=3e-3, seed=60)
    benchmark.pedantic(run_pair, args=(ratings, RANKS[0]), rounds=1, iterations=1)

    rows = []
    dmac_series, ratio_series = [], []
    for rank in RANKS:
        dmac, systemml = run_pair(ratings, rank)
        ratio = systemml.comm_bytes / max(dmac.comm_bytes, 1)
        dmac_series.append(dmac.comm_bytes)
        ratio_series.append(ratio)
        rows.append(
            [rank, fmt_bytes(dmac.comm_bytes), fmt_bytes(systemml.comm_bytes),
             f"{ratio:.1f}x"]
        )
    report(
        "rank_sweep",
        "GNMF factor-rank sweep: communication vs rank (3 iterations)",
        ["rank", "DMac comm", "SystemML-S comm", "ratio"],
        rows,
        notes="both grow with the factor matrices; the DMac advantage persists",
    )
    # Traffic grows with rank for DMac (the factor matrices it must move
    # once per iteration get bigger)...
    assert all(b >= a for a, b in zip(dmac_series, dmac_series[1:]))
    # ...and the advantage holds at every rank.
    assert all(ratio > 3 for ratio in ratio_series)

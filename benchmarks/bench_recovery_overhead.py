"""Recovery-overhead benchmark — clean vs faulted runs (no paper figure).

DMac-on-Spark inherits fault tolerance from RDD lineage; the paper never
prices it.  This benchmark does, on the simulated cluster: GNMF and
PageRank each run clean, then under an injected mid-run block loss (with
and without periodic checkpointing), and the extra simulated time and
recomputed bytes are reported.  Two properties are asserted, not just
reported:

* **recovered results match** -- every output of a faulted run equals the
  clean run's to 1e-9;
* **lineage beats restart** -- recomputing the lost block's upstream cone
  moves strictly fewer bytes than the clean run moved in total (the
  full-restart price).
"""

from __future__ import annotations

import numpy as np
from harness import bench_clock, density, fmt_bytes, fmt_secs, report

from repro import ClusterConfig, DMacSession
from repro.config import RecoveryConfig
from repro.datasets import graph_like, netflix_like, row_normalize
from repro.faults import ChaosEngine
from repro.programs import build_gnmf_program, build_pagerank_program

SEED = 7


def _workloads():
    gnmf_data = netflix_like(scale=1e-3, seed=7)
    gnmf = build_gnmf_program(
        gnmf_data.shape, density(gnmf_data), factors=4, iterations=3
    )
    link = row_normalize(graph_like("soc-pokec", scale=1e-3, seed=8))
    pagerank = build_pagerank_program(link.shape[0], density(link), iterations=4)
    return [
        ("GNMF", gnmf, {"V": gnmf_data}, "lostblock:instance=H,iteration=3"),
        ("PageRank", pagerank, {"link": link}, "lostblock:instance=rank,iteration=3"),
    ]


def _run(program, inputs, faults=None, checkpoint_every=0):
    config = ClusterConfig(
        num_workers=4,
        threads_per_worker=1,
        block_size=16,
        clock=bench_clock(),
        recovery=RecoveryConfig(checkpoint_every=checkpoint_every),
    )
    chaos = ChaosEngine(SEED, faults) if faults else None
    return DMacSession(config).run(program, inputs, chaos=chaos)


def test_recovery_overhead(benchmark):
    loads = _workloads()
    benchmark.pedantic(
        _run, args=(loads[1][1], loads[1][2]), rounds=1, iterations=1
    )
    rows = []
    for app, program, inputs, faults in loads:
        clean = _run(program, inputs)
        faulted = _run(program, inputs, faults=faults)
        checked = _run(program, inputs, faults=faults, checkpoint_every=2)
        for label, run in (("lineage", faulted), ("ckpt k=2", checked)):
            recovery = run.recovery
            assert recovery["blocks_recovered"] == recovery["blocks_lost"] == 1, (
                f"{app} [{label}]: the injected block loss must be recovered"
            )
            assert recovery["bytes_recomputed"] < clean.comm_bytes, (
                f"{app} [{label}]: lineage recovery must beat a full restart"
            )
            for name, array in clean.matrices.items():
                np.testing.assert_allclose(
                    run.matrices[name], array, atol=1e-9,
                    err_msg=f"{app} [{label}]: output {name} diverged",
                )
            rows.append(
                [
                    app,
                    label,
                    fmt_secs(clean.simulated_seconds),
                    fmt_secs(run.simulated_seconds - clean.simulated_seconds),
                    str(recovery["steps_recomputed"]),
                    fmt_bytes(recovery["bytes_recomputed"]),
                    fmt_bytes(clean.comm_bytes),
                ]
            )
    report(
        "bench_recovery_overhead",
        "Recovery overhead: injected block loss, lineage vs checkpoints",
        ["app", "mode", "clean time", "+overhead", "steps redone",
         "bytes recomputed", "restart price"],
        rows,
        notes="One mid-run block loss per app (seeded, deterministic).  "
        "'bytes recomputed' is the recovery cone's traffic, asserted "
        "strictly below the clean run's total ('restart price'); "
        "checkpointing every 2 iterations shrinks the cone further but "
        "pays simulated disk I/O in '+overhead'.  All faulted outputs are "
        "asserted equal to the clean run's.",
    )

"""Smoke benchmark — the concurrent stage runtime vs the serial order.

Tiny shapes (CI-friendly): each paper application runs twice, once with
``max_concurrent_stages=1`` (the historical serial dispatch) and once with
the concurrent scheduler.  Two properties are asserted, not just reported:

* **ledger and clock equivalence** -- the per-scope communication ledger
  *and* the simulated seconds are bit-identical between the two runs: the
  clock charges the dependency-bound schedule, which does not depend on
  how many stages the host actually dispatched at once;
* **critical-path clock** -- the charged seconds are no more than the old
  serial sum of per-stage durations (equal when the graph is a chain);
  the difference is the overlap the concurrent runtime wins.
"""

from __future__ import annotations

from harness import bench_clock, density, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like, row_normalize, graph_like, sparse_random
from repro.programs import (
    build_gnmf_program,
    build_linreg_program,
    build_pagerank_program,
)


def _workloads():
    gnmf_data = netflix_like(scale=1e-3, seed=7)
    gnmf = build_gnmf_program(
        gnmf_data.shape, density(gnmf_data), factors=4, iterations=2
    )
    link = row_normalize(graph_like("soc-pokec", scale=1e-3, seed=8))
    pagerank = build_pagerank_program(link.shape[0], density(link), iterations=2)
    design = sparse_random(200, 16, 0.1, seed=9)
    target = sparse_random(200, 1, 1.0, seed=10)
    linreg = build_linreg_program(design.shape, density(design), iterations=2)
    return [
        ("GNMF", gnmf, {"V": gnmf_data}),
        ("PageRank", pagerank, {"link": link}),
        ("LinReg", linreg, {"V": design, "y": target}),
    ]


def _run(program, inputs, max_concurrent):
    session = DMacSession(
        ClusterConfig(
            num_workers=4,
            threads_per_worker=1,
            block_size=16,
            clock=bench_clock(),
            max_concurrent_stages=max_concurrent,
        )
    )
    result = session.run(program, inputs)
    return result, session.context.ledger.bytes_by_scope()


def test_runtime_smoke(benchmark):
    loads = _workloads()
    benchmark.pedantic(
        _run, args=(loads[0][1], loads[0][2], None), rounds=1, iterations=1
    )
    rows = []
    for app, program, inputs in loads:
        serial, serial_scopes = _run(program, inputs, 1)
        concurrent, concurrent_scopes = _run(program, inputs, None)
        assert serial_scopes == concurrent_scopes, (
            f"{app}: concurrent scheduling changed the communication ledger"
        )
        assert abs(
            concurrent.simulated_seconds - serial.simulated_seconds
        ) < 1e-9, f"{app}: simulated time depends on the dispatch width"
        serial_sum = sum(t.duration_seconds for t in concurrent.stage_timings)
        assert concurrent.simulated_seconds <= serial_sum + 1e-9, (
            f"{app}: critical-path time exceeds the serial sum"
        )
        overlap = serial_sum - concurrent.simulated_seconds
        rows.append(
            [
                app,
                f"{serial.comm_bytes / 1e6:.3f} MB",
                fmt_secs(serial_sum),
                fmt_secs(concurrent.simulated_seconds),
                fmt_secs(overlap),
            ]
        )
    report(
        "bench_runtime_smoke",
        "Concurrent stage runtime vs serial dispatch (tiny shapes)",
        ["app", "comm (both)", "serial sum", "critical path", "overlap won"],
        rows,
        notes="Ledger scopes and simulated seconds are asserted identical "
        "between serial and concurrent dispatch; the last column is the "
        "time the critical-path clock saves over the old serial sum.",
    )

"""Service throughput — jobs/sec and simulated latency vs tenants and cache.

The multi-tenant service (:mod:`repro.serve`) is measured on synthetic
batches of repeated registry workloads: wall-clock jobs/sec (submission +
planning + execution in process) and the p50/p99 *simulated* submit-to-
finish latency, swept over tenant count and with the plan cache on vs
off.  The cache-on configuration must beat cache-off on the planning
path by at least 10x for repeated submissions of the same program --
the service's core amortisation claim.
"""

from __future__ import annotations

import time

from harness import fmt_secs, report
from repro.config import ClusterConfig
from repro.serve import (
    JobSpec,
    MatrixService,
    ServiceConfig,
    TenantSpec,
)

CLUSTER = ClusterConfig(num_workers=4, threads_per_worker=2)
JOBS_PER_TENANT = 6
#: Small repeated workloads: the throughput regime the plan cache targets.
PARAMS = {"scale": 5e-4, "iterations": 2, "rows": 300, "features": 30}
APPS = ("pagerank", "linreg")


def build_service(num_tenants: int, cache_entries: int) -> MatrixService:
    tenants = tuple(
        TenantSpec(f"tenant-{chr(ord('a') + i)}") for i in range(num_tenants)
    )
    return MatrixService(
        ServiceConfig(
            tenants=tenants,
            cluster=CLUSTER,
            plan_cache_entries=cache_entries,
            seed=7,
        )
    )


def run_once(num_tenants: int, cache_entries: int):
    """Submit the full batch, drain it, return throughput metrics."""
    service = build_service(num_tenants, cache_entries)
    started = time.perf_counter()
    for tenant in sorted(service.tenants):
        for index in range(JOBS_PER_TENANT):
            service.submit(
                JobSpec(
                    tenant=tenant,
                    app=APPS[index % len(APPS)],
                    params=dict(PARAMS),
                )
            )
    finished = service.drain()
    elapsed = time.perf_counter() - started
    latencies = sorted(record.latency_seconds for record in finished)
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    plan_seconds = sum(record.plan_wall_seconds for record in service.records)
    hit_times = [
        r.plan_wall_seconds for r in service.records if r.plan_cache == "hit"
    ]
    miss_times = [
        r.plan_wall_seconds for r in service.records if r.plan_cache != "hit"
    ]
    return {
        "jobs": len(finished),
        "jobs_per_sec": len(finished) / elapsed,
        "p50": p50,
        "p99": p99,
        "plan_seconds": plan_seconds,
        "hit_times": hit_times,
        "miss_times": miss_times,
        "cache": service.plan_cache.stats(),
    }


def test_serve_throughput(benchmark):
    benchmark.pedantic(run_once, args=(1, 128), rounds=1, iterations=1)
    rows = []
    measured = {}
    for num_tenants in (1, 2, 3):
        for cache_entries, label in ((0, "off"), (128, "on")):
            metrics = run_once(num_tenants, cache_entries)
            measured[(num_tenants, label)] = metrics
            cache = metrics["cache"]
            rows.append(
                [
                    str(num_tenants),
                    label,
                    str(metrics["jobs"]),
                    f"{metrics['jobs_per_sec']:.2f}",
                    fmt_secs(metrics["p50"]),
                    fmt_secs(metrics["p99"]),
                    f"{cache['hits']}/{cache['misses'] + cache['bypasses']}",
                    fmt_secs(metrics["plan_seconds"]),
                ]
            )
    report(
        "serve_throughput",
        "Service throughput -- jobs/sec and simulated latency vs tenants/cache",
        ["tenants", "cache", "jobs", "jobs/s", "p50 sim", "p99 sim",
         "hit/miss", "planning wall"],
        rows,
        notes=(
            "p50/p99 are simulated submit-to-finish latencies; jobs/s is "
            "wall-clock service throughput including planning; planning "
            "wall is total time in the planner (cache hits skip it)"
        ),
    )
    for num_tenants in (1, 2, 3):
        on = measured[(num_tenants, "on")]
        # The amortisation claim: a repeated identical submission's plan
        # path (fingerprint + cache lookup) must run >= 10x faster than a
        # cold one (fingerprint + planner + verifier prediction).
        jobs = on["jobs"]
        assert on["cache"]["hits"] >= jobs - len(APPS), (num_tenants, on["cache"])
        hit_mean = sum(on["hit_times"]) / len(on["hit_times"])
        miss_mean = sum(on["miss_times"]) / len(on["miss_times"])
        assert hit_mean * 10 <= miss_mean, (
            f"{num_tenants} tenants: cached plan path not 10x faster "
            f"(hit {hit_mean * 1e3:.3f} ms vs miss {miss_mean * 1e3:.3f} ms)"
        )

"""Micro-benchmark — per-call ``model_sizeof`` caching in the shuffle loop.

Replication-heavy layouts shuffle the *same* block object in many records
(one per target partition), so the shuffle's hot loop used to recompute
``model_sizeof`` for every moved record.  The loop now sizes each distinct
value object once per call (an ``id``-keyed cache that never outlives the
call, since pooled blocks are mutated in place and ids recycle).

This benchmark measures that win directly: a shuffle in which every source
partition repeats a handful of distinct values many times, where the value
type makes sizing genuinely expensive (nested tuples, which
``model_sizeof`` walks recursively).  Reported alongside: the raw cost of
sizing the moved records with and without the cache, which bounds the
achievable speedup.
"""

from __future__ import annotations

import time

from harness import report
from repro.config import ClusterConfig
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import HashPartitioner
from repro.rdd.shuffle import shuffle
from repro.rdd.sizeof import model_sizeof

NUM_PARTITIONS = 8
DISTINCT_VALUES = 16
RECORDS_PER_PARTITION = 2_000


def _expensive_value(seed: int) -> tuple:
    """A nested payload whose model_sizeof walk is non-trivial."""
    return tuple((seed + i, float(i), (i, i + 1, i + 2)) for i in range(40))


def _workload():
    values = [_expensive_value(seed) for seed in range(DISTINCT_VALUES)]
    source = [
        [
            (record, values[record % DISTINCT_VALUES])
            for record in range(RECORDS_PER_PARTITION)
        ]
        for __ in range(NUM_PARTITIONS)
    ]
    return source, values


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_shuffle_sizeof_cache(benchmark):
    source, values = _workload()
    context = ClusterContext(ClusterConfig(num_workers=4, threads_per_worker=1))
    partitioner = HashPartitioner(NUM_PARTITIONS)

    result = benchmark.pedantic(
        lambda: shuffle(context, source, partitioner), rounds=3, iterations=1
    )
    assert sum(len(p) for p in result) == NUM_PARTITIONS * RECORDS_PER_PARTITION

    moved = [value for partition in source for __, value in partition]

    def sized_per_record():
        return sum(model_sizeof(value) for value in moved)

    def sized_per_object():
        cache: dict[int, int] = {}
        total = 0
        for value in moved:
            nbytes = cache.get(id(value))
            if nbytes is None:
                nbytes = cache[id(value)] = model_sizeof(value)
            total += nbytes
        return total

    assert sized_per_record() == sized_per_object()
    uncached = _time(sized_per_record)
    cached = _time(sized_per_object)
    shuffle_time = _time(lambda: shuffle(context, source, partitioner))

    report(
        "bench_shuffle_sizeof",
        "Shuffle sizing: per-record vs per-object model_sizeof",
        ["variant", "sizing time", "speedup"],
        [
            ["per record (old loop)", f"{uncached * 1e3:.2f} ms", "1.0x"],
            ["per object (cached)", f"{cached * 1e3:.2f} ms",
             f"{uncached / max(cached, 1e-9):.1f}x"],
            ["full shuffle (cached)", f"{shuffle_time * 1e3:.2f} ms", "-"],
        ],
        notes=f"{NUM_PARTITIONS * RECORDS_PER_PARTITION} records over "
        f"{DISTINCT_VALUES} distinct value objects; cache is per shuffle call.",
    )
    # The cached sizing must beat re-sizing every record on this workload.
    assert cached < uncached

"""Table 4 — one matrix multiplication across four systems:
ScaLAPACK, SciDB, SystemML-S and DMac, on a sparse and a dense input.

Paper setup: V1 (Netflix-shaped, s=0.01) x H (dense, 480189 x 200 ratio) for
MM-Sparse; V2 (same dims, dense) x H for MM-Dense; 8 nodes x 8 processes.

Paper shapes to reproduce:
* MM-Sparse: DMac and SystemML-S (sparse-aware) beat ScaLAPACK by ~6x and
  SciDB by ~40x; DMac edges out SystemML-S slightly (17s vs 18.5s).
* MM-Dense: ScaLAPACK is roughly unchanged, DMac/SystemML-S slow down to
  ScaLAPACK's neighbourhood (121s / 133s vs 116s); SciDB stays far behind.
* ScaLAPACK and SciDB cost the same for sparse and dense (dense-only
  libraries); DMac costs more on dense.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import bench_clock, density, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.baselines import run_scalapack_matmul, run_scidb_matmul
from repro.datasets import dense_random, sparse_random
from repro.lang.program import ProgramBuilder

# Netflix aspect at 1/10 linear scale: large enough that the dense multiply
# is compute-bound (like the paper's), small enough to run in seconds.
ROWS, COLS, FACTORS = 48_000, 1_777, 16
PROCESSES = 16  # paper: 8 nodes x 8 processes


def table4_clock():
    """1/10 linear data scale shrinks flops 1000x but traffic only 100x;
    compensating with a 10x-slower relative network keeps the paper's
    compute/communication proportions for this (bigger) workload."""
    import dataclasses

    return dataclasses.replace(bench_clock(), network_bytes_per_sec=2e7)


CONFIG = dict(
    num_workers=8, threads_per_worker=2, block_size=444, clock=table4_clock()
)


def mm_program(v: np.ndarray, h: np.ndarray):
    pb = ProgramBuilder()
    left = pb.load("V", v.shape, sparsity=density(v))
    right = pb.load("H", h.shape, sparsity=1.0)
    pb.output(pb.assign("P", left @ right))
    return pb.build()


def run_all(v: np.ndarray, h: np.ndarray) -> dict[str, float]:
    program = mm_program(v, h)
    inputs = {"V": v, "H": h}
    dmac = DMacSession(ClusterConfig(**CONFIG)).run(program, inputs)
    systemml = DMacSession(ClusterConfig(**CONFIG)).run_systemml(program, inputs)
    scalapack = run_scalapack_matmul(v, h, PROCESSES, clock=table4_clock())
    scidb = run_scidb_matmul(v, h, PROCESSES, clock=table4_clock())
    # correctness first: all four must agree
    expected = v @ h
    np.testing.assert_allclose(dmac.matrices["P"], expected, atol=1e-7)
    np.testing.assert_allclose(systemml.matrices["P"], expected, atol=1e-7)
    np.testing.assert_allclose(scalapack.product, expected, atol=1e-7)
    np.testing.assert_allclose(scidb.product, expected, atol=1e-7)
    return {
        "ScaLAPACK": scalapack.simulated_seconds,
        "SciDB": scidb.simulated_seconds,
        "SystemML-S": systemml.simulated_seconds,
        "DMac": dmac.simulated_seconds,
    }


def test_table4_sparse_and_dense(benchmark):
    h = dense_random(COLS, FACTORS, seed=21)
    sparse_v = sparse_random(ROWS, COLS, 0.01, seed=20)  # the paper's V1 (s=0.01)
    dense_v = dense_random(ROWS, COLS, seed=22)  # the paper's V2 (s=1)

    def run_sparse():
        return run_all(sparse_v, h)

    sparse_times = benchmark.pedantic(run_sparse, rounds=1, iterations=1)
    dense_times = run_all(dense_v, h)

    systems = ["ScaLAPACK", "SciDB", "SystemML-S", "DMac"]
    paper = {"MM-Sparse": ["107s", "11m35s", "18.5s", "17s"],
             "MM-Dense": ["116s", "12m15s", "133s", "121s"]}
    rows = []
    for label, times in (("MM-Sparse", sparse_times), ("MM-Dense", dense_times)):
        rows.append([label] + [fmt_secs(times[s]) for s in systems])
        rows.append([f"  (paper)"] + paper[label])
    report(
        "table4_systems",
        "Table 4 -- matrix multiplication across systems",
        ["workload"] + systems,
        rows,
    )

    # Paper shapes:
    # 1. sparse: the sparse-aware systems beat the dense-only ones
    assert sparse_times["DMac"] < sparse_times["ScaLAPACK"]
    assert sparse_times["SystemML-S"] < sparse_times["ScaLAPACK"]
    # 2. DMac at least matches SystemML-S (single multiply: same strategy)
    assert sparse_times["DMac"] <= sparse_times["SystemML-S"] * 1.05
    # 3. SciDB is the slowest system in both workloads
    assert sparse_times["SciDB"] == max(sparse_times.values())
    assert dense_times["SciDB"] == max(dense_times.values())
    # 4. ScaLAPACK is sparsity-insensitive...
    assert sparse_times["ScaLAPACK"] == pytest.approx(
        dense_times["ScaLAPACK"], rel=0.05
    )
    # 5. ...while DMac pays real extra work on dense input
    assert dense_times["DMac"] > sparse_times["DMac"] * 1.5
    # 6. dense: DMac lands in ScaLAPACK's neighbourhood (paper: 121s vs 116s)
    assert dense_times["DMac"] < dense_times["ScaLAPACK"] * 4

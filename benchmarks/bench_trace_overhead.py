"""Structured tracing -- its cost when on, and its *absence* of cost when off.

Every emit site in the metering/scheduling/caching layers guards on one
module-global read (``repro.trace.emit.active_tracer() is None``), so a
build with tracing off must run at the same wall-clock speed as before the
subsystem existed, and must produce bit-identical simulated metrics either
way.  This benchmark measures both: the guard's per-call cost, and the
end-to-end wall delta of a traced vs untraced PageRank run (whose ledgered
bytes, simulated seconds and reconciliation are asserted, not eyeballed).
"""

from __future__ import annotations

import time

from harness import bench_clock, fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.datasets import graph_like, row_normalize
from repro.programs import build_pagerank_program
from repro.trace import TraceCollector, assert_reconciled
from repro.trace.emit import active_tracer

CONFIG = dict(
    num_workers=4, threads_per_worker=2, block_size=64, clock=bench_clock()
)
ROUNDS = 3


def _workload():
    link = row_normalize(graph_like("soc-pokec", scale=2e-3, seed=4))
    program = build_pagerank_program(link.shape[0], 0.05, iterations=5)
    return program, {"link": link}


def _run(tracer=None):
    program, inputs = _workload()
    session = DMacSession(ClusterConfig(**CONFIG))
    start = time.perf_counter()
    result = session.run(program, inputs, tracer=tracer)
    return result, time.perf_counter() - start


def test_trace_overhead(benchmark):
    benchmark.pedantic(lambda: _run()[0], rounds=1, iterations=1)
    off_walls, on_walls = [], []
    for __ in range(ROUNDS):
        result_off, wall_off = _run()
        tracer = TraceCollector()
        result_on, wall_on = _run(tracer)
        assert_reconciled(tracer)
        # Tracing observes the simulation; it must never perturb it.
        assert result_on.comm_bytes == result_off.comm_bytes
        assert result_on.simulated_seconds == result_off.simulated_seconds
        off_walls.append(wall_off)
        on_walls.append(wall_on)
    off, on = min(off_walls), min(on_walls)

    calls = 200_000
    start = time.perf_counter()
    for __ in range(calls):
        active_tracer()
    guard_ns = (time.perf_counter() - start) / calls * 1e9

    report(
        "trace_overhead",
        "Structured tracing -- wall-clock cost, off vs on",
        ["workload", "wall (off)", "wall (on)", "delta", "guard/site"],
        [[
            "pagerank x5 iters",
            fmt_secs(off),
            fmt_secs(on),
            f"{(on - off) / off * 100:+.1f}%",
            f"{guard_ns:.0f} ns",
        ]],
        notes=(
            "off = no collector installed: each emit site is a single "
            "module-global read, so disabled tracing is free; on = full "
            "span/event collection + exact ledger/clock reconciliation"
        ),
    )
    # The off-path guard is a global read; ~ns, never microseconds.
    assert guard_ns < 2_000, f"disabled-tracing guard costs {guard_ns:.0f} ns"
    # Collection is bounded: the traced run stays in the same ballpark.
    assert on < off * 5 + 0.5, f"tracing-on overhead exploded: {off=} {on=}"

"""Static verification must be cheap enough to leave on.

``repro verify`` runs the full suite -- fixpoint analyses, hazard
detection, memory prediction, plus translation validation inside the
optimizer -- before a single block moves.  This benchmark times that
static cost for every paper application and holds it to a budget: the
whole 7-app sweep in under a second of analysis time, with per-app
verification far below the cost of actually executing the plan.
"""

from __future__ import annotations

import argparse
import time

from harness import fmt_secs, report
from repro import ClusterConfig, DMacSession
from repro.cli import APPS, _workload
from repro.planopt import optimize_plan
from repro.verify import verify_plan

WORKLOAD_ARGS = dict(
    scale=3e-3, seed=7, factors=10, iterations=2, graph="LiveJournal",
    rows=600, features=40, sparsity=0.05, rank=6,
)
WORKERS = 4


def _plans():
    """app -> (unoptimized plan, wall seconds spent planning)."""
    plans = {}
    for app in APPS:
        program, __, ___ = _workload(
            argparse.Namespace(app=app, **WORKLOAD_ARGS)
        )
        session = DMacSession(ClusterConfig(num_workers=WORKERS))
        start = time.perf_counter()
        plan = session.plan(program)
        plans[app] = (plan, time.perf_counter() - start)
    return plans


def test_verify_overhead(benchmark):
    plans = _plans()
    rows = []
    total_verify = 0.0
    for app, (plan, plan_wall) in plans.items():
        # Translation validation: the optimizer certifies its own rewrites.
        start = time.perf_counter()
        optimized = optimize_plan(plan, num_workers=WORKERS)
        optimize_wall = time.perf_counter() - start

        start = time.perf_counter()
        result = verify_plan(optimized, num_workers=WORKERS, target=app)
        verify_wall = time.perf_counter() - start
        total_verify += verify_wall

        assert not result.has_errors, f"{app}: planner output must verify"
        rows.append([
            app,
            len(optimized.steps),
            result.iterations,
            len(result.certificates),
            fmt_secs(plan_wall),
            fmt_secs(optimize_wall),
            fmt_secs(verify_wall),
        ])

    benchmark.pedantic(
        lambda: [
            verify_plan(plan, num_workers=WORKERS)
            for plan, __ in plans.values()
        ],
        rounds=3,
        iterations=1,
    )

    report(
        "verify_overhead",
        "Static verification cost per application",
        ["app", "steps", "fixpoint pops", "certs", "plan", "optimize+validate",
         "verify"],
        rows,
        notes=(
            "verify = fixpoint analyses + hazard detection + memory "
            "prediction over the optimized plan; optimize+validate includes "
            "per-pass translation validation.  Budget: the whole sweep "
            "under one second."
        ),
    )
    assert total_verify < 1.0, (
        f"verifying all {len(plans)} apps took {total_verify:.3f} s; "
        "static analysis must stay sub-second"
    )

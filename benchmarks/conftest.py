"""Make the benchmark harness importable when pytest runs benchmarks/,
and statically verify every DMac plan a benchmark generates."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))


@pytest.fixture(autouse=True)
def _lint_benchmark_plans(monkeypatch):
    """Every plan generated through a session during a benchmark must be
    free of error-severity lint findings (harness.assert_plan_clean)."""
    from harness import assert_plan_clean
    from repro.session import DMacSession

    original = DMacSession.plan

    def linted_plan(self, program):
        plan = original(self, program)
        assert_plan_clean(plan, self.config, self.estimation_mode)
        return plan

    monkeypatch.setattr(DMacSession, "plan", linted_plan)
    yield

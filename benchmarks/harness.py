"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md, Substitutions).  Results are printed and also written
to ``benchmarks/results/<name>.txt`` so the series survive pytest's output
capture; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_clock():
    """Simulated-hardware constants for the benchmarks.

    The datasets are scaled down ~1000x from the paper's (DESIGN.md,
    Substitutions); scaling the clock's bandwidth/flop constants by a
    similar factor puts the benchmarks back in the paper's regime, where
    communication -- not per-stage scheduling latency -- dominates the
    runtime of the dependency-blind plans.  Ratios between systems depend
    on measured bytes and flops either way; this only affects how visible
    they are in the time series.
    """
    from repro.config import ClockConfig

    return ClockConfig(
        network_bytes_per_sec=2e6,
        dense_flops_per_sec=5e7,
        sparse_flops_per_sec=1.5e7,
        disk_bytes_per_sec=2e6,
        latency_per_stage_sec=0.01,
    )


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024 or unit == "GB":
            return f"{value:.2f} {unit}"
        value /= 1024
    return f"{value:.2f} GB"  # pragma: no cover


def fmt_secs(seconds: float) -> str:
    return f"{seconds:.3f} s"


def report(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
    seed: int | None = None,
) -> str:
    """Render an aligned table, print it, and persist it under results/.

    Besides the human-readable ``results/<name>.txt``, the same table is
    written structured to ``results/<name>.json`` so ``run_all.py`` can
    consolidate every experiment's (simulated and measured) metrics into
    ``BENCH_summary.json``.  ``seed`` stamps the RNG seed the benchmark's
    datasets derive from, when it has a single one.
    """
    table = [list(map(str, headers))] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = [title, "=" * len(title)]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if notes:
        lines.append("")
        lines.append(notes)
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    structured = {
        "name": name,
        "title": title,
        "headers": list(map(str, headers)),
        "rows": [[str(cell) for cell in row] for row in rows],
        "notes": notes,
        "seed": seed,
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(structured, indent=2) + "\n"
    )
    print("\n" + text)
    return text


def density(array) -> float:
    """Non-zero fraction of a numpy array."""
    import numpy as np

    return float(np.count_nonzero(array)) / array.size


def registry_workload(app: str, **overrides):
    """Program + inputs for a registered app (see repro.programs.registry).

    ``overrides`` patch individual :class:`WorkloadParams` fields
    (``scale``, ``iterations``, ``rows``, ...); everything else keeps the
    CLI defaults, so a benchmark measures exactly what ``repro run <app>``
    executes.
    """
    from repro.programs.registry import WorkloadParams, build_workload

    return build_workload(app, WorkloadParams(**overrides))


def assert_plan_clean(plan, config=None, estimation_mode: str = "worst") -> None:
    """Fail the benchmark if its plan has error-severity lint findings.

    Every benchmarked DMac plan must uphold the paper's static invariants
    (scheme constraints, stage purity, ledger agreement, memory bounds) --
    a benchmark of an invalid plan measures nothing.
    """
    from repro.lint import LintContext, lint_plan

    context = (
        LintContext.from_config(config, estimation_mode)
        if config is not None
        else LintContext()
    )
    report = lint_plan(plan, context)
    if report.has_errors:
        raise AssertionError(
            "benchmark plan failed static analysis:\n" + report.format_human()
        )

"""Standalone benchmark runner: regenerate every table and figure without
pytest and print a combined report.

Usage::

    python benchmarks/run_all.py            # run everything
    python benchmarks/run_all.py fig6 table4  # run a subset
    python benchmarks/run_all.py --list     # enumerate experiments
    python benchmarks/run_all.py --only serve --only fig6

Equivalent to ``pytest benchmarks/ --benchmark-only`` but with plain
console output; each experiment's table is also written to
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent

#: Experiment name -> benchmark file.
EXPERIMENTS = {
    "fig6": "bench_fig6_gnmf.py",
    "fig7": "bench_fig7_memory.py",
    "fig8": "bench_fig8_blocksize.py",
    "fig9a": "bench_fig9a_pagerank.py",
    "fig9b": "bench_fig9b_apps.py",
    "fig10data": "bench_fig10_scale_data.py",
    "fig10workers": "bench_fig10_scale_workers.py",
    "table4": "bench_table4_systems.py",
    "heuristics": "bench_ablation_heuristics.py",
    "greedygap": "bench_greedy_gap.py",
    "estimator": "bench_estimator_modes.py",
    "ext2d": "bench_ext_2d.py",
    "ranksweep": "bench_rank_sweep.py",
    "shufflesizeof": "bench_shuffle_sizeof.py",
    "runtimesmoke": "bench_runtime_smoke.py",
    "recovery": "bench_recovery_overhead.py",
    "planopt": "bench_planopt.py",
    "traceoverhead": "bench_trace_overhead.py",
    "verifyoverhead": "bench_verify_overhead.py",
    "compileoverhead": "bench_compile_overhead.py",
    "serve": "bench_serve_throughput.py",
}


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="run_all.py",
        description="run the paper-reproduction benchmark suite",
    )
    parser.add_argument("experiments", nargs="*", metavar="NAME",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list registered experiments and exit")
    parser.add_argument("--only", action="append", default=[], metavar="NAME",
                        help="run only this experiment (repeatable; "
                             "combines with positional names)")
    args = parser.parse_args(argv)
    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name, bench in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {bench}")
        return 0
    requested = args.experiments + args.only or list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}")
        return 2
    failures = []
    for name in requested:
        bench = BENCH_DIR / EXPERIMENTS[name]
        print(f"\n=== {name}: {bench.name} ===")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(bench), "--benchmark-only",
             "-q", "--no-header"],
            cwd=BENCH_DIR.parent,
        )
        if proc.returncode != 0:
            failures.append(name)
    results = sorted((BENCH_DIR / "results").glob("*.txt"))
    print("\n" + "=" * 72)
    print("Combined report (also under benchmarks/results/):")
    for path in results:
        print("\n" + path.read_text())
    if failures:
        print(f"FAILED experiments: {failures}")
        return 1
    print(f"all {len(requested)} experiments completed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Standalone benchmark runner: regenerate every table and figure without
pytest and print a combined report.

Usage::

    python benchmarks/run_all.py            # run everything
    python benchmarks/run_all.py fig6 table4  # run a subset
    python benchmarks/run_all.py --list     # enumerate experiments
    python benchmarks/run_all.py --only serve --only fig6

Equivalent to ``pytest benchmarks/ --benchmark-only`` but with plain
console output; each experiment's table is also written to
``benchmarks/results/``, and a consolidated machine-readable summary --
per-experiment wall-clock plus every (simulated and measured) metric
table, seed stamps included -- to ``benchmarks/results/BENCH_summary.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time

BENCH_DIR = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
SUMMARY_PATH = RESULTS_DIR / "BENCH_summary.json"

#: Experiment name -> benchmark file.
EXPERIMENTS = {
    "fig6": "bench_fig6_gnmf.py",
    "fig7": "bench_fig7_memory.py",
    "fig8": "bench_fig8_blocksize.py",
    "fig9a": "bench_fig9a_pagerank.py",
    "fig9b": "bench_fig9b_apps.py",
    "fig10data": "bench_fig10_scale_data.py",
    "fig10workers": "bench_fig10_scale_workers.py",
    "table4": "bench_table4_systems.py",
    "heuristics": "bench_ablation_heuristics.py",
    "greedygap": "bench_greedy_gap.py",
    "estimator": "bench_estimator_modes.py",
    "ext2d": "bench_ext_2d.py",
    "ranksweep": "bench_rank_sweep.py",
    "shufflesizeof": "bench_shuffle_sizeof.py",
    "runtimesmoke": "bench_runtime_smoke.py",
    "recovery": "bench_recovery_overhead.py",
    "planopt": "bench_planopt.py",
    "traceoverhead": "bench_trace_overhead.py",
    "verifyoverhead": "bench_verify_overhead.py",
    "compileoverhead": "bench_compile_overhead.py",
    "serve": "bench_serve_throughput.py",
    "elastic": "bench_elastic.py",
    "fusedkernels": "bench_fused_kernels.py",
}


def _table_stamps() -> dict[str, float]:
    """Modification times of the structured per-table results."""
    if not RESULTS_DIR.is_dir():
        return {}
    return {path.name: path.stat().st_mtime for path in RESULTS_DIR.glob("*.json")}


def _refreshed_tables(before: dict[str, float]) -> list[dict]:
    """The structured tables written or rewritten since ``before``."""
    tables = []
    for name, mtime in sorted(_table_stamps().items()):
        if name == SUMMARY_PATH.name or before.get(name) == mtime:
            continue
        try:
            tables.append(json.loads((RESULTS_DIR / name).read_text()))
        except (OSError, json.JSONDecodeError):  # pragma: no cover
            continue
    return tables


def write_summary(entries: list[dict]) -> None:
    """Persist the consolidated run summary to ``BENCH_summary.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    summary = {
        "suite": "dmac-paper-reproduction",
        "python": sys.version.split()[0],
        "experiments": entries,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="run_all.py",
        description="run the paper-reproduction benchmark suite",
    )
    parser.add_argument("experiments", nargs="*", metavar="NAME",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list registered experiments and exit")
    parser.add_argument("--only", action="append", default=[], metavar="NAME",
                        help="run only this experiment (repeatable; "
                             "combines with positional names)")
    args = parser.parse_args(argv)
    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name, bench in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {bench}")
        return 0
    requested = args.experiments + args.only or list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiments: {', '.join(unknown)}\n"
            f"valid names: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    failures = []
    entries = []
    for name in requested:
        bench = BENCH_DIR / EXPERIMENTS[name]
        print(f"\n=== {name}: {bench.name} ===")
        stamps = _table_stamps()
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(bench), "--benchmark-only",
             "-q", "--no-header"],
            cwd=BENCH_DIR.parent,
        )
        wall_clock = time.perf_counter() - started
        if proc.returncode != 0:
            failures.append(name)
        entries.append(
            {
                "experiment": name,
                "file": bench.name,
                "wall_clock_seconds": round(wall_clock, 3),
                "returncode": proc.returncode,
                "tables": _refreshed_tables(stamps),
            }
        )
    write_summary(entries)
    results = sorted(RESULTS_DIR.glob("*.txt"))
    print("\n" + "=" * 72)
    print("Combined report (also under benchmarks/results/):")
    for path in results:
        print("\n" + path.read_text())
    print(f"summary written to {SUMMARY_PATH}")
    if failures:
        print(f"FAILED experiments: {failures}")
        return 1
    print(f"all {len(requested)} experiments completed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""GNMF on a Netflix-shaped ratings matrix: the paper's Figure 6 workload.

Factorises V ~= W @ H with multiplicative updates and compares DMac against
the SystemML-S baseline iteration by iteration.

Run with:  python examples/gnmf_netflix.py [scale]
"""

import sys

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.datasets import netflix_like
from repro.programs import build_gnmf_program


def main(scale: float = 4e-3) -> None:
    ratings = netflix_like(scale=scale, seed=1)
    density = np.count_nonzero(ratings) / ratings.size
    print(f"ratings matrix: {ratings.shape[0]} users x {ratings.shape[1]} movies, "
          f"{np.count_nonzero(ratings)} ratings (density {density:.4f})")

    config = ClusterConfig(num_workers=4, threads_per_worker=4)
    print(f"{'iters':>5}  {'DMac comm':>12}  {'SystemML-S comm':>16}  {'ratio':>6}")
    for iterations in (1, 2, 4, 8):
        program = build_gnmf_program(
            ratings.shape, density, factors=16, iterations=iterations
        )
        dmac = DMacSession(config).run(program, {"V": ratings})
        systemml = DMacSession(config).run_systemml(program, {"V": ratings})
        ratio = systemml.comm_bytes / max(dmac.comm_bytes, 1)
        print(f"{iterations:>5}  {dmac.comm_bytes / 1e6:>10.2f} MB  "
              f"{systemml.comm_bytes / 1e6:>14.2f} MB  {ratio:>5.1f}x")

    # Factorisation quality (both systems produce identical factors).
    program = build_gnmf_program(ratings.shape, density, factors=16, iterations=8)
    result = DMacSession(config).run(program, {"V": ratings})
    w = result.matrices[program.bindings["W"]]
    h = result.matrices[program.bindings["H"]]
    # GNMF fits the zero-filled matrix, so measure the overall reconstruction.
    start = np.linalg.norm(ratings)
    residual = np.linalg.norm(ratings - w @ h)
    print(f"\nreconstruction ||V - WH|| / ||V|| after 8 iterations: "
          f"{residual / start:.3f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 4e-3)

"""Linear regression by conjugate gradient (the paper's Code 4), checked
against the closed-form normal-equations solution.

Also demonstrates driver-side scalars: the CG step sizes alpha/beta are
computed from distributed aggregates each iteration.

Run with:  python examples/linreg_cg.py
"""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.datasets import sparse_random
from repro.programs import build_linreg_program


def main() -> None:
    examples, features = 3000, 60
    design = sparse_random(examples, features, 0.1, seed=6)
    true_w = np.random.default_rng(0).normal(size=(features, 1))
    noise = np.random.default_rng(1).normal(scale=0.01, size=(examples, 1))
    target = design @ true_w + noise

    ridge = 1e-6
    program = build_linreg_program(
        (examples, features), 0.1, iterations=features + 10, ridge=ridge
    )
    session = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=4))
    result = session.run(program, {"V": design, "y": target})

    w_cg = result.matrices[program.bindings["w"]]
    w_exact = np.linalg.solve(
        design.T @ design + ridge * np.eye(features), design.T @ target
    )
    print(f"CG vs normal equations: max |diff| = {np.abs(w_cg - w_exact).max():.2e}")
    print(f"recovered vs true weights: corr = "
          f"{np.corrcoef(w_cg.ravel(), true_w.ravel())[0, 1]:.4f}")
    print(f"final squared residual (driver scalar): "
          f"{result.scalars[program.scalar_outputs[0]]:.3e}")
    print(f"communication for the whole solve: {result.comm_bytes / 1024:.1f} KB "
          f"-- V was partitioned once and never moved again")


if __name__ == "__main__":
    main()

"""Logistic regression + the cluster-size advisor.

Trains a logistic-regression model with gradient descent (the sigmoid runs
as a distributed element-wise operator), then asks the advisor what cluster
size the program wants before committing to one.

Run with:  python examples/logreg_advisor.py
"""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.advisor import advise_workers, best_worker_count
from repro.programs import build_logreg_program


def main() -> None:
    rng = np.random.default_rng(11)
    examples, features = 3000, 40
    design = rng.random((examples, features)) - 0.5
    true_w = rng.normal(size=(features, 1)) * 2.0
    probabilities = 1 / (1 + np.exp(-(design @ true_w)))
    labels = (rng.random((examples, 1)) < probabilities).astype(float)

    program = build_logreg_program(
        (examples, features), 1.0, iterations=60, learning_rate=2.0
    )

    # What-if: which cluster size does this program want?
    advice = advise_workers(program, candidate_workers=(2, 4, 8, 16))
    print(f"{'workers':>8}  {'comm':>10}  {'network':>9}  {'compute':>9}  {'total':>9}")
    for entry in advice:
        print(f"{entry.workers:>8}  {entry.predicted_comm_bytes / 1e3:>8.1f} KB"
              f"  {entry.predicted_network_seconds:>8.4f}s"
              f"  {entry.predicted_compute_seconds:>8.4f}s"
              f"  {entry.predicted_total_seconds:>8.4f}s")
    workers = best_worker_count(advice)
    print(f"advisor picks {workers} workers\n")

    # Run on the advised cluster, with a per-step trace.
    session = DMacSession(ClusterConfig(num_workers=workers, threads_per_worker=4))
    result = session.run(program, {"V": design, "y": labels}, trace=True)

    learned = result.matrices[program.bindings["w"]]
    accuracy = np.mean(
        ((1 / (1 + np.exp(-(design @ learned)))) > 0.5) == labels.astype(bool)
    )
    correlation = np.corrcoef(learned.ravel(), true_w.ravel())[0, 1]
    print(f"training accuracy {accuracy:.1%}, weight correlation {correlation:.3f}")
    print(f"communication {result.comm_bytes / 1e3:.1f} KB across "
          f"{result.num_stages} stages")

    assert result.trace is not None
    heaviest = max(result.trace, key=lambda record: record.comm_bytes)
    print(f"heaviest step on the network: {heaviest.step} "
          f"({heaviest.comm_bytes / 1e3:.1f} KB in stage {heaviest.stage})")


if __name__ == "__main__":
    main()

"""PageRank over a scaled LiveJournal-like graph: the Figure 9(a) workload.

Shows why DMac wins on iterative graph programs: the link matrix is loaded
into Column scheme once and referenced for free every iteration; only the
small rank vector moves.

Run with:  python examples/pagerank_graph.py
"""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.datasets import graph_like, row_normalize
from repro.programs import build_pagerank_program


def main() -> None:
    adjacency = graph_like("LiveJournal", scale=3e-4, seed=5)
    link = row_normalize(adjacency)
    nodes = link.shape[0]
    density = np.count_nonzero(link) / link.size
    print(f"graph: {nodes} nodes, {np.count_nonzero(adjacency):.0f} edges")

    program = build_pagerank_program(nodes, density, iterations=15)
    session = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=4))
    plan = session.plan(program)

    link_moves = sum(
        1
        for step in plan.communicating_steps()
        if getattr(step, "source", None) is not None and step.source.name == "link"
    )
    print(f"plan: {plan.num_stages} stages; the link matrix crosses the "
          f"network {link_moves} times (rank vector broadcasts do the rest)")

    result = session.run(program, {"link": link})
    ranks = result.matrices[program.bindings["rank"]].ravel()
    top = np.argsort(ranks)[::-1][:5]
    print("top-5 nodes by rank:")
    for node in top:
        in_degree = int(adjacency[:, node].sum())
        print(f"  node {node:>5}  rank {ranks[node]:.5f}  in-degree {in_degree}")

    baseline = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=4))
    systemml = baseline.run_systemml(program, {"link": link})
    print(f"\ncommunication: DMac {result.comm_bytes / 1e6:.2f} MB vs "
          f"SystemML-S {systemml.comm_bytes / 1e6:.2f} MB "
          f"({systemml.comm_bytes / max(result.comm_bytes, 1):.1f}x)")


if __name__ == "__main__":
    main()

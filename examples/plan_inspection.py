"""Inspect the plan DMac generates for one GNMF iteration -- the textual
analogue of the paper's Figure 3 -- and the dependency classification table
(Table 2) that drives it.

Run with:  python examples/plan_inspection.py
"""

from repro import ClusterConfig, DMacSession
from repro.core.dependency import classify, is_communication
from repro.matrix.schemes import Scheme
from repro.programs import build_gnmf_program


def show_dependency_table() -> None:
    print("Table 2 -- matrix dependency classification")
    print(f"{'out':>4} {'in':>4} {'access':>8}   {'type':<20} {'comm'}")
    for transposed in (False, True):
        for out_scheme in Scheme:
            for in_scheme in Scheme:
                dep = classify(out_scheme, in_scheme, transposed)
                access = "B = A^T" if transposed else "B = A"
                comm = "yes" if is_communication(dep) else "no"
                print(f"{str(out_scheme):>4} {str(in_scheme):>4} {access:>8}   "
                      f"{dep.value:<20} {comm}")
    print()


def show_gnmf_plan() -> None:
    program = build_gnmf_program(
        (4800, 1770), v_sparsity=0.012, factors=20, iterations=1
    )
    print("GNMF operator sequence (multiplications hoisted first):")
    print("  " + "\n  ".join(program.describe().splitlines()))
    print()

    session = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=8))
    plan = session.plan(program)
    print(f"DMac plan -- {plan.num_stages} stages, "
          f"predicted communication {plan.predicted_bytes / 1e6:.2f} MB")
    print(plan.describe())
    print()
    comm = plan.communicating_steps()
    print(f"{len(comm)} communicating steps define the stage boundaries:")
    for step in comm:
        print(f"  stage {step.stage}: {step}")


if __name__ == "__main__":
    show_dependency_table()
    show_gnmf_plan()

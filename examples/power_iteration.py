"""Power iteration written as plain Python, compiled by the ast frontend.

The ``@matrix_program`` decorator lowers the typed function body into the
same ``MatrixProgram`` IR the hand-written builders produce -- but here the
``while`` loop survives compilation as a *staged* program: the loop body is
planned exactly once, and the session extends the run segment by segment
until the convergence scalar crosses ``eps``.

Run with:  python examples/power_iteration.py
"""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import full, norm2, output, output_scalar, value


@matrix_program(max_segments=500)
def power_iteration(A: Matrix, eps: Scalar):
    x = full(A.rows, 1, 1.0 / A.rows)
    y = A @ x
    lam = value(x.T @ y)
    while norm2(y - x * lam) > eps:
        nrm = norm2(y)
        x = y / nrm
        y = A @ x
        lam = value(x.T @ y)
    output(x)
    output_scalar(lam)


def main() -> None:
    n = 400
    rng = np.random.default_rng(17)
    direction = rng.standard_normal((n, 1))
    direction /= np.linalg.norm(direction)
    noise = rng.standard_normal((n, n)) * 0.05
    data = 3.0 * (direction @ direction.T) + (noise + noise.T) / 2.0

    # Compile once: the while loop becomes prologue + body segments.
    staged = power_iteration.compile(A=matrix_input((n, n)), eps=1e-9)
    print(f"compiled staged program: {staged.describe()}")

    session = DMacSession(
        ClusterConfig(num_workers=4, threads_per_worker=4),
        lint="error", verify="error",
    )
    result = session.run(staged, {"A": data})

    lam = result.scalars["lam"]
    reference = np.linalg.eigvalsh(data)[-1]
    print(f"converged in {result.num_segments} segments")
    print(f"dominant eigenvalue {lam:.9f} (numpy says {reference:.9f})")
    print(f"residual |Ax - lam x| = "
          f"{np.linalg.norm(data @ result.matrices['x'] - lam * result.matrices['x']):.2e}")
    print(f"communication {result.comm_bytes / 1e3:.1f} KB over "
          f"{result.num_stages} stages; peak memory "
          f"{result.peak_memory_bytes / 1e3:.1f} KB "
          f"(static bound {result.predicted_peak_memory_bytes / 1e3:.1f} KB)")


if __name__ == "__main__":
    main()

"""Quickstart: build a matrix program, plan it with DMac, run it, and read
the communication/time metrics.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, DMacSession, ProgramBuilder


def main() -> None:
    # 1. Write a matrix program with the R-like expression API.
    #    (`@` is the paper's %*%, `*`/`/` are cell-wise, `.T` transposes.)
    pb = ProgramBuilder()
    v = pb.load("V", (600, 400), sparsity=0.3)
    w = pb.random("W", (600, 10))
    h = pb.random("H", (10, 400))
    for _ in range(10):  # GNMF multiplicative updates
        h = pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
        w = pb.assign("W", w * (v @ h.T) / (w @ h @ h.T))
    pb.output(w)
    pb.output(h)
    program = pb.build()

    # 2. Create a session over a simulated 4-worker cluster and plan.
    session = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=4))
    plan = session.plan(program)
    print(f"plan: {len(plan.steps)} steps in {plan.num_stages} stages, "
          f"predicted communication {plan.predicted_bytes / 1024:.1f} KB")

    # 3. Bind the input data and execute.
    rng = np.random.default_rng(7)
    data = rng.random((600, 400))
    data[data < 0.7] = 0.0
    data[data != 0] += 0.05  # keep values positive for GNMF
    result = session.run(program, {"V": data}, plan=plan)

    # 4. Inspect the outputs and the run's cost.
    w_out = result.matrices[program.bindings["W"]]
    h_out = result.matrices[program.bindings["H"]]
    error = np.linalg.norm(data - w_out @ h_out) / np.linalg.norm(data)
    print(f"V ~= W @ H with relative error {error:.3f}")
    print(f"communication: {result.comm_bytes / 1024:.1f} KB measured "
          f"(<= prediction)")
    print(f"simulated time: {result.simulated_seconds:.3f} s "
          f"({result.time.network_seconds:.3f} s network, "
          f"{result.time.compute_seconds:.3f} s compute)")

    # 5. The same program under the dependency-blind baseline moves far more.
    baseline = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=4))
    systemml = baseline.run_systemml(program, {"V": data})
    print(f"SystemML-S on the same program: {systemml.comm_bytes / 1024:.1f} KB "
          f"({systemml.comm_bytes / max(result.comm_bytes, 1):.1f}x DMac)")


if __name__ == "__main__":
    main()

"""Ridge regression by gradient descent, written for the ast frontend.

A fixed-count ``for`` loop unrolls at compile time (the paper's loop
unrolling), so the optimizer sees every iteration's dependencies at once:
``V`` enters the cluster in one scheme and is referenced for free by both
``V @ w`` and ``V.T @ r`` in every unrolled step.

Run with:  python examples/ridge_regression.py
"""

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import full, output, output_scalar, sum


@matrix_program
def ridge(V: Matrix, y: Matrix, iterations: int, lam: Scalar, step: Scalar):
    w = full(V.cols, 1, 0.0)
    rate = step / V.rows
    for _ in range(iterations):
        g = V.T @ (V @ w - y) + w * lam
        w = w - g * rate
    r = V @ w - y
    sq_err = sum(r * r)
    output(w)
    output_scalar(sq_err)


def main() -> None:
    rows, features = 900, 40
    rng = np.random.default_rng(23)
    design = rng.standard_normal((rows, features))
    truth = rng.standard_normal((features, 1))
    target = design @ truth + rng.standard_normal((rows, 1)) * 0.1

    lam = 1e-3
    program = ridge.compile(
        V=matrix_input((rows, features)),
        y=matrix_input((rows, 1)),
        iterations=60,
        lam=lam,
        step=0.5,
    )
    print(f"compiled {len(program.ops)} ops from a 9-line Python function")

    session = DMacSession(ClusterConfig(num_workers=4, threads_per_worker=4))
    result = session.run(program, {"V": design, "y": target})

    w = result.matrices[program.bindings["w"]]
    closed_form = np.linalg.solve(
        design.T @ design + lam * np.eye(features), design.T @ target
    )
    gap = np.linalg.norm(w - closed_form) / np.linalg.norm(closed_form)
    print(f"squared error {result.scalars['sq_err']:.4f}; "
          f"{gap:.1%} from the closed-form ridge solution")
    print(f"communication {result.comm_bytes / 1e3:.1f} KB in "
          f"{result.num_stages} stages, "
          f"simulated {result.simulated_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()

"""The paper's future work, explored: 1-D (DMac) vs 2-D block-cyclic
partitioning with SUMMA multiplication.

Shows the trade-off the paper describes in Section 3.1 / related work:
2-D placement balances better and moves less data on square multiplies,
but pays more synchronised stages; 1-D replication wins on the skinny
operands ML workloads actually have.

Run with:  python examples/two_d_partitioning.py
"""

import numpy as np

from repro import ClusterConfig, ClusterContext
from repro.core.optimal import optimal_cost
from repro.grid2d import (
    Grid2DMatrix,
    GridLayout,
    one_d_imbalance,
    summa_matmul,
    summa_predicted_bytes,
    summa_stage_count,
)
from repro.lang.program import ProgramBuilder


def one_d_cost(rows: int, inner: int, cols: int, workers: int) -> int:
    pb = ProgramBuilder()
    a = pb.load("A", (rows, inner))
    b = pb.load("B", (inner, cols))
    pb.output(pb.assign("C", a @ b))
    return optimal_cost(pb.build(), workers)


def main() -> None:
    workers = 4
    context = ClusterContext(ClusterConfig(num_workers=workers))
    rng = np.random.default_rng(0)
    rows = 256

    print(f"{'B shape':>10}  {'1-D bytes':>11}  {'2-D bytes':>11}  winner")
    for width in (256, 64, 16, 4):
        a = rng.random((rows, rows))
        b = rng.random((rows, width))
        ga = Grid2DMatrix.from_numpy(context, a, 32, GridLayout(2, 2), storage="dense")
        gb = Grid2DMatrix.from_numpy(context, b, 32, GridLayout(2, 2), storage="dense")
        two_d = summa_predicted_bytes(ga, gb)
        one_d = one_d_cost(rows, rows, width, workers)
        winner = "2-D SUMMA" if two_d < one_d else "1-D (DMac)"
        print(f"{rows}x{width:>4}  {one_d:>11,}  {two_d:>11,}  {winner}")

    # Correctness and the stage-count cost of 2-D.
    a, b = rng.random((128, 96)), rng.random((96, 64))
    ga = Grid2DMatrix.from_numpy(context, a, 16)
    gb = Grid2DMatrix.from_numpy(context, b, 16)
    product = summa_matmul(ga, gb)
    assert np.allclose(product.to_numpy(), a @ b)
    print(f"\nSUMMA stages for the 128x96 multiply: {summa_stage_count(ga)} "
          f"(1-D replication needs 2)")

    # Balance on a skewed matrix.
    skewed = np.zeros((256, 256))
    skewed[:32, :] = rng.random((32, 256))
    two_d_bal = Grid2DMatrix.from_numpy(context, skewed, 32, GridLayout(2, 2)).imbalance()
    one_d_bal = one_d_imbalance(context, skewed, 32)
    print(f"imbalance on a row-skewed matrix: 1-D Row {one_d_bal:.2f} vs "
          f"2-D cyclic {two_d_bal:.2f} (1.0 = perfect)")


if __name__ == "__main__":
    main()

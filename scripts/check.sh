#!/usr/bin/env bash
# One-stop local gate: style, tier-1 tests, and the analyzer self-test.
# Mirrors .github/workflows/ci.yml so a green run here means a green CI.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping style check =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (strict on repro.verify and repro.frontend) =="
    mypy
else
    echo "== mypy not installed; skipping type check =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo "== analyzer self-test =="
PYTHONPATH=src python -m repro lint --selftest

echo "== lint examples =="
for script in examples/*.py examples/*.dml; do
    [ -e "$script" ] || continue
    echo "-- $script"
    PYTHONPATH=src python -m repro lint "$script"
done

echo "== frontend smoke (registry compiles, staged run converges) =="
for app in gnmf pagerank linreg logreg jacobi cf svd ridge; do
    echo "-- lint $app"
    PYTHONPATH=src python -m repro lint "$app" --scale 1e-3 --iterations 2 \
        --factors 4 --rows 200 --features 20
done
PYTHONPATH=src python -m repro run powiter --rows 100 --eps 1e-5 --trace

echo "All checks passed."

"""DMac: dependency-aware distributed matrix computation.

A full reproduction of "Exploiting Matrix Dependency for Efficient
Distributed Matrix Computation" (Yu, Shao, Cui -- SIGMOD 2015): the matrix
language, the dependency-oriented planner with its Pull-Up Broadcast and
Re-assignment heuristics, the stage scheduler, a block-based local engine
(In-Place vs Buffer), and a metered in-process Spark-like substrate, plus
the paper's baselines (SystemML-S, ScaLAPACK, SciDB, single-machine R) and
benchmark applications (GNMF, PageRank, linear regression, collaborative
filtering, Lanczos SVD).

Public entry points::

    from repro import ClusterConfig, DMacSession, ProgramBuilder
"""

from repro.config import ClockConfig, ClusterConfig, RecoveryConfig
from repro.core.executor import ExecutionResult
from repro.core.plan import Plan
from repro.core.planner import DMacPlanner
from repro.errors import (
    BlockError,
    ClusterError,
    ExecutionError,
    FaultInjected,
    FaultSpecError,
    MemoryLimitExceeded,
    PlanError,
    ProgramError,
    ReproError,
    SchemeError,
    ShapeError,
    ShuffleBlockLost,
    StageExecutionError,
    TransferFault,
    TranslationValidationError,
    VerificationError,
    WorkerCrashed,
)
from repro.faults import ChaosEngine, parse_fault_spec
from repro.lang.program import MatrixProgram, ProgramBuilder
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext
from repro.runtime.graph import StageGraph
from repro.session import DMacSession

__version__ = "1.0.0"

__all__ = [
    "BlockError",
    "ChaosEngine",
    "ClockConfig",
    "ClusterConfig",
    "ClusterContext",
    "ClusterError",
    "DMacPlanner",
    "DMacSession",
    "DistributedMatrix",
    "ExecutionError",
    "ExecutionResult",
    "FaultInjected",
    "FaultSpecError",
    "MatrixProgram",
    "MemoryLimitExceeded",
    "Plan",
    "PlanError",
    "ProgramBuilder",
    "ProgramError",
    "RecoveryConfig",
    "ReproError",
    "Scheme",
    "SchemeError",
    "ShapeError",
    "ShuffleBlockLost",
    "StageExecutionError",
    "StageGraph",
    "TransferFault",
    "TranslationValidationError",
    "VerificationError",
    "WorkerCrashed",
    "parse_fault_spec",
    "__version__",
]

"""Cluster-size advisor: what-if analysis over worker counts.

Given a program, the advisor plans it for each candidate worker count and
predicts the end-to-end cost from the plan alone (no execution): network
time from the plan's predicted bytes, compute time from the program's flop
estimate spread over the cluster, plus stage latency.  The result is the
kind of table an operator wants before renting a cluster -- and it captures
the paper's scalability story analytically: DMac's communication barely
grows with ``K`` while compute shrinks, so the sweet spot moves right as
data grows.
"""

from __future__ import annotations

import dataclasses

from repro.config import ClockConfig
from repro.core.estimator import SizeEstimator
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.errors import PlanError
from repro.lang.program import CellwiseOp, MatMulOp, MatrixProgram, UnaryMatrixOp


@dataclasses.dataclass(frozen=True)
class WorkerAdvice:
    """Predicted cost of running the program on one cluster size."""

    workers: int
    predicted_comm_bytes: int
    predicted_network_seconds: float
    predicted_compute_seconds: float
    predicted_overhead_seconds: float
    stages: int

    @property
    def predicted_total_seconds(self) -> float:
        return (
            self.predicted_network_seconds
            + self.predicted_compute_seconds
            + self.predicted_overhead_seconds
        )


def estimate_program_flops(program: MatrixProgram) -> int:
    """Worst-case flop estimate for the whole program (from estimated
    sizes; multiplication dominates)."""
    estimator = SizeEstimator(program)
    flops = 0
    for op in program.ops:
        if isinstance(op, MatMulOp):
            rows, inner = program.dims_of(op.left)
            cols = program.dims_of(op.right)[1]
            flops += int(2 * rows * inner * cols * estimator.sparsity_of(op.left))
        elif isinstance(op, (CellwiseOp, UnaryMatrixOp)):
            rows, cols = program.dims[op.output]
            flops += rows * cols
    return flops


def advise_workers(
    program: MatrixProgram,
    candidate_workers: tuple[int, ...] = (2, 4, 8, 16),
    threads_per_worker: int = 8,
    clock: ClockConfig | None = None,
) -> list[WorkerAdvice]:
    """Plan the program for each candidate ``K`` and predict its cost."""
    if not candidate_workers:
        raise PlanError("no candidate worker counts given")
    clock = clock or ClockConfig()
    flops = estimate_program_flops(program)
    advice = []
    for workers in sorted(set(candidate_workers)):
        plan = schedule_stages(DMacPlanner(program, workers).plan())
        network = plan.predicted_bytes / clock.network_bytes_per_sec
        compute = flops / (workers * threads_per_worker * clock.dense_flops_per_sec)
        overhead = plan.num_stages * clock.latency_per_stage_sec
        advice.append(
            WorkerAdvice(
                workers=workers,
                predicted_comm_bytes=plan.predicted_bytes,
                predicted_network_seconds=network,
                predicted_compute_seconds=compute,
                predicted_overhead_seconds=overhead,
                stages=plan.num_stages,
            )
        )
    return advice


def best_worker_count(advice: list[WorkerAdvice]) -> int:
    """The candidate with the lowest predicted total time (ties: fewest
    workers, i.e. the cheapest cluster)."""
    if not advice:
        raise PlanError("empty advice list")
    return min(advice, key=lambda a: (a.predicted_total_seconds, a.workers)).workers

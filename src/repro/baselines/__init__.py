"""Comparator systems: SystemML-S, ScaLAPACK, SciDB, single-machine R."""

from repro.baselines.rlocal import LocalResult, run_local
from repro.baselines.scalapack import (
    SystemRunResult,
    process_grid,
    run_scalapack_matmul,
)
from repro.baselines.scidb import run_scidb_matmul
from repro.baselines.systemml import SystemMLSExecutor

__all__ = [
    "LocalResult",
    "SystemMLSExecutor",
    "SystemRunResult",
    "process_grid",
    "run_local",
    "run_scalapack_matmul",
    "run_scidb_matmul",
]

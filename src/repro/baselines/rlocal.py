"""Single-machine in-memory baseline (the paper's "R" line, Figure 6a).

Interprets the same decomposed matrix program directly with numpy on one
node, with no communication at all.  Simulated time is pure compute on one
machine's thread pool under the shared clock model, so the series is
comparable with the distributed systems' simulated seconds.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.config import ClockConfig
from repro.core.executor import evaluate_scalar
from repro.errors import ExecutionError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    MatrixProgram,
    Operand,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)

#: Density below which the single-machine flop model counts only non-zeros.
_SPARSE_FLOP_DENSITY = 0.5


@dataclasses.dataclass
class LocalResult:
    """Outputs and simulated single-machine cost of a local run."""

    matrices: dict[str, np.ndarray]
    scalars: dict[str, float]
    simulated_seconds: float
    flops: int
    wall_seconds: float


def run_local(
    program: MatrixProgram,
    inputs: dict[str, np.ndarray] | None = None,
    clock: ClockConfig | None = None,
    threads: int = 8,
) -> LocalResult:
    """Execute ``program`` on one machine with numpy.

    Args:
        program: a built :class:`MatrixProgram`.
        inputs: arrays for the program's LoadOps.
        clock: hardware model used to convert flops into seconds.
        threads: local parallelism assumed by the time model (the paper's
            single R process effectively uses the machine's cores for BLAS).
    """
    inputs = inputs or {}
    clock = clock or ClockConfig()
    env: dict[str, np.ndarray] = {}
    scalars: dict[str, float] = {}
    flops = 0
    wall_start = time.perf_counter()

    def resolve(operand: Operand) -> np.ndarray:
        if operand.name not in env:
            raise ExecutionError(f"operand {operand} used before production")
        array = env[operand.name]
        return array.T if operand.transposed else array

    for op in program.ops:
        if isinstance(op, LoadOp):
            if op.output not in inputs:
                raise ExecutionError(f"no input array bound for load {op.output!r}")
            array = np.asarray(inputs[op.output], dtype=np.float64)
            if array.shape != (op.rows, op.cols):
                raise ExecutionError(
                    f"input {op.output!r} has shape {array.shape}, "
                    f"program declared {(op.rows, op.cols)}"
                )
            env[op.output] = array
        elif isinstance(op, RandomOp):
            env[op.output] = np.random.default_rng(op.seed).random((op.rows, op.cols))
        elif isinstance(op, FullOp):
            env[op.output] = np.full((op.rows, op.cols), op.value)
        elif isinstance(op, MatMulOp):
            left, right = resolve(op.left), resolve(op.right)
            env[op.output] = left @ right
            flops += _matmul_flops(left, right)
        elif isinstance(op, CellwiseOp):
            left, right = resolve(op.left), resolve(op.right)
            with np.errstate(divide="ignore", invalid="ignore"):
                env[op.output] = _CELLWISE[op.op](left, right)
            flops += left.size
        elif isinstance(op, ScalarMatrixOp):
            source = resolve(op.operand)
            value = scalars[op.scalar] if isinstance(op.scalar, str) else float(op.scalar)
            env[op.output] = _CELLWISE[op.op](source, value)
            flops += source.size
        elif isinstance(op, UnaryMatrixOp):
            from repro.blocks.ops import apply_unary

            source = resolve(op.operand)
            env[op.output] = apply_unary(op.func, source)
            flops += source.size
        elif isinstance(op, RowAggOp):
            source = resolve(op.operand)
            axis = 1 if op.kind == "rowsum" else 0
            env[op.output] = source.sum(axis=axis, keepdims=True)
            flops += source.size
        elif isinstance(op, AggregateOp):
            source = resolve(op.operand)
            if op.kind == "sum":
                scalars[op.output] = float(source.sum())
            elif op.kind == "sqsum":
                scalars[op.output] = float(np.square(source).sum())
            else:
                scalars[op.output] = float(source[0, 0])
            flops += source.size
        elif isinstance(op, ScalarComputeOp):
            scalars[op.output] = evaluate_scalar(op.expr, scalars)
        else:  # pragma: no cover - all op kinds enumerated
            raise ExecutionError(f"local baseline: unknown operator {type(op).__name__}")

    return LocalResult(
        matrices={name: env[name] for name in program.outputs},
        scalars={name: scalars[name] for name in program.scalar_outputs},
        simulated_seconds=flops / (clock.dense_flops_per_sec * threads),
        flops=flops,
        wall_seconds=time.perf_counter() - wall_start,
    )


def _matmul_flops(left: np.ndarray, right: np.ndarray) -> int:
    m, k = left.shape
    n = right.shape[1]
    left_density = np.count_nonzero(left) / max(left.size, 1)
    if left_density < _SPARSE_FLOP_DENSITY:
        return int(2 * np.count_nonzero(left) * n)
    return 2 * m * k * n


def _divide(left, right):
    return left / right


_CELLWISE = {
    "add": np.add,
    "subtract": np.subtract,
    "multiply": np.multiply,
    "divide": _divide,
}

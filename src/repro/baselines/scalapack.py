"""ScaLAPACK comparator for the Table 4 matrix-multiplication experiment.

ScaLAPACK distributes dense matrices in a 2-D block-cyclic layout over a
``pr x pc`` process grid and multiplies with a SUMMA-style algorithm
(PDGEMM).  Two properties matter for the paper's comparison (Section 6.6):

* it is **dense-only** -- a sparse input is handled "as the way on dense
  one", so MM-Sparse and MM-Dense cost the same;
* processes communicate through MPI messages rather than shared memory, so
  every panel exchange pays the network even within one node ("multiple
  processes will be created on a single node and data is transferred
  through messages instead of share memory").

The comparator really computes the product (numpy, after densifying) and
derives simulated time from the standard SUMMA cost model: each process
receives ``A``-panels of ``m/pr x k`` and ``B``-panels of ``k x n/pc``
along its grid row/column over ``k / nb`` steps, i.e. total traffic on the
order of ``|A| * pc + |B| * pr`` spread over ``P`` links, plus a per-step
message latency.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.config import ClockConfig
from repro.errors import ShapeError

#: Panel width used in the SUMMA step count.
DEFAULT_PANEL = 64
#: Per-MPI-message latency (seconds); dominates for many small steps.
MPI_MESSAGE_LATENCY = 2e-4
#: Bytes per dense element on the wire (double precision).
ELEMENT_BYTES = 8


@dataclasses.dataclass
class SystemRunResult:
    """Result + simulated cost for a whole-system comparator run."""

    product: np.ndarray
    simulated_seconds: float
    comm_bytes: int
    flops: int


def process_grid(num_processes: int) -> tuple[int, int]:
    """The near-square ``pr x pc`` grid ScaLAPACK would use."""
    pr = int(math.sqrt(num_processes))
    while num_processes % pr:
        pr -= 1
    return pr, num_processes // pr


def run_scalapack_matmul(
    a: np.ndarray,
    b: np.ndarray,
    num_processes: int,
    clock: ClockConfig | None = None,
    panel: int = DEFAULT_PANEL,
) -> SystemRunResult:
    """Multiply ``a @ b`` the ScaLAPACK way (dense, block-cyclic, SUMMA)."""
    clock = clock or ClockConfig()
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"matmul inner dimensions differ: {a.shape} @ {b.shape}")
    dense_a = np.asarray(a, dtype=np.float64)
    dense_b = np.asarray(b, dtype=np.float64)
    m, k = dense_a.shape
    n = dense_b.shape[1]

    pr, pc = process_grid(num_processes)
    steps = max(1, math.ceil(k / panel))
    # Every process receives its A-panel row-broadcast (pc - 1 hops worth of
    # traffic per element in aggregate) and its B-panel column-broadcast.
    comm_bytes = int(
        ELEMENT_BYTES * (m * k * (pc - 1) / max(pc, 1) + k * n * (pr - 1) / max(pr, 1))
    )
    flops = 2 * m * k * n  # dense-only: sparsity is not exploited
    compute_seconds = flops / (clock.dense_flops_per_sec * num_processes)
    network_seconds = comm_bytes / clock.network_bytes_per_sec
    latency_seconds = steps * 2 * MPI_MESSAGE_LATENCY

    product = dense_a @ dense_b
    return SystemRunResult(
        product=product,
        simulated_seconds=compute_seconds + network_seconds + latency_seconds,
        comm_bytes=comm_bytes,
        flops=flops,
    )

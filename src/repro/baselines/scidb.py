"""SciDB comparator for the Table 4 matrix-multiplication experiment.

SciDB's linear-algebra library delegates the multiply itself to ScaLAPACK,
but the end-to-end operation pays for much more (paper Section 6.6):

* chunks must be **redistributed** from SciDB's storage layout into the
  block-cyclic layout ScaLAPACK requires (and the result back), and
* the system runs query processing and a **failure-handling mechanism**
  during the computation, "which introduces extra overhead".

The paper measures SciDB roughly 6x slower than raw ScaLAPACK on the same
multiply; the default overhead factor below is calibrated to that gap and
is an explicit model parameter, not a measurement.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.scalapack import (
    ELEMENT_BYTES,
    SystemRunResult,
    run_scalapack_matmul,
)
from repro.config import ClockConfig

#: Multiplier on the ScaLAPACK core time covering query processing and the
#: fault-tolerance machinery (calibrated to Table 4's ~6x gap).
DEFAULT_SYSTEM_OVERHEAD = 5.0


def run_scidb_matmul(
    a: np.ndarray,
    b: np.ndarray,
    num_processes: int,
    clock: ClockConfig | None = None,
    system_overhead: float = DEFAULT_SYSTEM_OVERHEAD,
) -> SystemRunResult:
    """Multiply ``a @ b`` the SciDB way: redistribute, call ScaLAPACK,
    redistribute back, all under system overhead."""
    clock = clock or ClockConfig()
    core = run_scalapack_matmul(a, b, num_processes, clock)
    m, k = a.shape
    n = b.shape[1]
    # Chunk redistribution: A and B into block-cyclic, C back into chunks.
    redistribution_bytes = ELEMENT_BYTES * (m * k + k * n + m * n)
    redistribution_seconds = redistribution_bytes / clock.network_bytes_per_sec
    total = (core.simulated_seconds + redistribution_seconds) * (1.0 + system_overhead)
    return SystemRunResult(
        product=core.product,
        simulated_seconds=total,
        comm_bytes=core.comm_bytes + int(redistribution_bytes),
        flops=core.flops,
    )

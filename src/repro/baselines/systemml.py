"""SystemML-S: the paper's primary baseline (Section 6.1).

SystemML-S is SystemML's planner ported to Spark with DMac's local engine,
so "the only difference between SystemML-S and DMac is that SystemML-S
generates the execution plan without utilizing matrix dependency".
Operationally (Section 6.2):

* intermediates are cached hash-partitioned, so *every* use of a matrix
  pays a repartition to the scheme the operator strategy needs -- even when
  the producing operator happened to emit a compatible layout, and even for
  a transposed read ("SystemML needs to repartition it for W.t as well");
* every Broadcast-scheme requirement re-broadcasts the matrix ("SystemML-S
  needs to broadcast matrix R twice");
* strategy choice uses the same catalog and size estimates as DMac, but
  input costs are always ``|A|`` (Row/Column requirement) or ``N x |A|``
  (Broadcast requirement) -- there are no free dependencies.

The executor below runs on the same substrate (same engines, same metered
shuffle) so communication and simulated time are directly comparable with
DMac's.  Obliviousness is modelled physically: before each use the cached
matrix is viewed as hash-scattered (an unmetered relabelling -- the cache
layout fiction) and then shuffled to the required scheme with full
metering.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cost import output_cost
from repro.core.estimator import SizeEstimator
from repro.core.executor import ExecutionResult, evaluate_scalar
from repro.core.strategies import Strategy, candidate_strategies
from repro.errors import ExecutionError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    MatrixProgram,
    Operand,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.primitives import (
    broadcast_matrix,
    cellwise_op,
    col_sums,
    cpmm,
    local_transpose,
    matrix_sq_sum,
    matrix_sum,
    rmm1,
    rmm2,
    row_sums,
    scalar_op_matrix,
    unary_op_matrix,
)
from repro.matrix.schemes import Scheme
from repro.rdd.clock import TimeBreakdown
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import HashPartitioner
from repro.rdd.rdd import RDD
from repro.rdd.shuffle import shuffle


class SystemMLSExecutor:
    """Plans and executes a program the SystemML-S way."""

    def __init__(self, context: ClusterContext, block_size: int | None = None) -> None:
        self.context = context
        self.block_size = block_size if block_size is not None else context.config.block_size

    # -- strategy choice (no dependency information) -------------------------

    def choose_strategy(self, op, estimator: SizeEstimator) -> Strategy:
        """Argmin of the dependency-blind cost: every 1-D input costs
        ``|A|``, every Broadcast input ``N x |A|`` (plus CPMM's output)."""
        workers = self.context.num_workers
        best, best_cost = None, None
        for strategy in candidate_strategies(op):
            cost = output_cost(strategy, estimator.nbytes(op.output), workers)
            for operand, scheme in zip(op.matrix_inputs(), strategy.input_schemes):
                nbytes = estimator.nbytes(operand.name)
                cost += workers * nbytes if scheme is Scheme.BROADCAST else nbytes
            if best_cost is None or cost < best_cost:
                best, best_cost = strategy, cost
        assert best is not None
        return best

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        program: MatrixProgram,
        inputs: dict[str, np.ndarray] | None = None,
    ) -> ExecutionResult:
        inputs = inputs or {}
        estimator = SizeEstimator(program)
        block_size = self._resolve_block_size(program)
        env: dict[str, DistributedMatrix] = {}
        scalars: dict[str, float] = {}
        context = self.context

        bytes_before = context.ledger.snapshot()
        time_before = context.clock.elapsed
        wall_start = time.perf_counter()
        stages = 0

        for op in program.ops:
            snapshot = context.flops_snapshot()
            if isinstance(op, (LoadOp, RandomOp, FullOp)):
                env[op.output] = self._materialise_source(op, inputs, block_size)
            elif isinstance(op, ScalarComputeOp):
                scalars[op.output] = evaluate_scalar(op.expr, scalars)
            elif isinstance(op, AggregateOp):
                matrix = env[op.operand.name]
                if op.kind == "sum":
                    scalars[op.output] = matrix_sum(matrix)
                elif op.kind == "sqsum":
                    scalars[op.output] = matrix_sq_sum(matrix)
                else:
                    scalars[op.output] = matrix.value()
            elif isinstance(op, MatMulOp):
                strategy = self.choose_strategy(op, estimator)
                left = self._prepare(env, op.left, strategy.input_schemes[0])
                right = self._prepare(env, op.right, strategy.input_schemes[1])
                if strategy.name == "rmm1":
                    env[op.output] = rmm1(left, right)
                elif strategy.name == "rmm2":
                    env[op.output] = rmm2(left, right)
                else:
                    env[op.output] = cpmm(left, right, strategy.primary_output)
                stages += 1
            elif isinstance(op, CellwiseOp):
                strategy = self.choose_strategy(op, estimator)
                left = self._prepare(env, op.left, strategy.input_schemes[0])
                right = self._prepare(env, op.right, strategy.input_schemes[1])
                env[op.output] = cellwise_op(op.op, left, right)
                stages += 1
            elif isinstance(op, ScalarMatrixOp):
                strategy = self.choose_strategy(op, estimator)
                source = self._prepare(env, op.operand, strategy.input_schemes[0])
                scalar = op.scalar
                value = scalars[scalar] if isinstance(scalar, str) else float(scalar)
                env[op.output] = scalar_op_matrix(op.op, source, value)
                stages += 1
            elif isinstance(op, UnaryMatrixOp):
                strategy = self.choose_strategy(op, estimator)
                source = self._prepare(env, op.operand, strategy.input_schemes[0])
                env[op.output] = unary_op_matrix(op.func, source)
                stages += 1
            elif isinstance(op, RowAggOp):
                strategy = self.choose_strategy(op, estimator)
                source = self._prepare(env, op.operand, strategy.input_schemes[0])
                aggregate = row_sums if op.kind == "rowsum" else col_sums
                if strategy.shuffles_output:
                    env[op.output] = aggregate(source, strategy.primary_output)
                else:
                    env[op.output] = aggregate(source)
                stages += 1
            else:  # pragma: no cover - all op kinds enumerated
                raise ExecutionError(f"SystemML-S: unknown operator {type(op).__name__}")
            context.charge_compute_since(snapshot)

        context.clock.advance_stage_overhead(max(stages, 1))
        matrices = {name: env[name].to_numpy() for name in program.outputs}
        wall_seconds = time.perf_counter() - wall_start
        time_after = context.clock.elapsed
        return ExecutionResult(
            matrices=matrices,
            scalars={name: scalars[name] for name in program.scalar_outputs},
            comm_bytes=context.ledger.snapshot() - bytes_before,
            time=TimeBreakdown(
                network_seconds=time_after.network_seconds - time_before.network_seconds,
                compute_seconds=time_after.compute_seconds - time_before.compute_seconds,
                overhead_seconds=time_after.overhead_seconds
                - time_before.overhead_seconds,
            ),
            num_stages=max(stages, 1),
            peak_memory_bytes=context.peak_memory_bytes(),
            wall_seconds=wall_seconds,
        )

    # -- input preparation: always repartition / broadcast ----------------------

    def _prepare(
        self,
        env: dict[str, DistributedMatrix],
        operand: Operand,
        required: Scheme,
    ) -> DistributedMatrix:
        matrix = env.get(operand.name)
        if matrix is None:
            raise ExecutionError(f"operand {operand} is used before being produced")
        if operand.transposed:
            # SystemML-S repartitions for the transposed view as well; the
            # element movement happens in the oblivious shuffle below, the
            # local flip is part of the reduce side.
            matrix = local_transpose(matrix)
        if required is Scheme.BROADCAST:
            if matrix.scheme is Scheme.BROADCAST:
                return matrix
            return broadcast_matrix(matrix)
        return self._oblivious_repartition(matrix, required)

    def _oblivious_repartition(
        self, matrix: DistributedMatrix, required: Scheme
    ) -> DistributedMatrix:
        """Shuffle into ``required`` as if the source were hash-scattered.

        The cached copy is *viewed* as living under Spark's default hash
        partitioning (a relabelling that moves nothing -- the planner simply
        has no scheme information to exploit); the metered shuffle to the
        required scheme then pays the full repartition the paper describes.
        """
        context = matrix.context
        if matrix.scheme is Scheme.BROADCAST:
            # A broadcast copy is everywhere; take worker 0's replica as the
            # canonical shard set before scattering.
            records = sorted(matrix.worker_grid(0).items())
        else:
            records = sorted(matrix.rdd.collect())
        hasher = HashPartitioner(context.num_workers)
        scattered: list[list] = [[] for __ in range(context.num_workers)]
        for key, block in records:
            scattered[hasher.partition_for(key)].append((key, block))
        partitioner = required.partitioner(context.num_workers)
        partitions = shuffle(context, scattered, partitioner)
        rdd = RDD(context, partitions, partitioner)
        return matrix.with_scheme_rdd(rdd, required)

    # -- sources -----------------------------------------------------------------

    def _materialise_source(
        self,
        op: LoadOp | RandomOp | FullOp,
        inputs: dict[str, np.ndarray],
        block_size: int,
    ) -> DistributedMatrix:
        if isinstance(op, LoadOp):
            if op.output not in inputs:
                raise ExecutionError(f"no input array bound for load {op.output!r}")
            array = np.asarray(inputs[op.output], dtype=np.float64)
            if array.shape != (op.rows, op.cols):
                raise ExecutionError(
                    f"input {op.output!r} has shape {array.shape}, "
                    f"program declared {(op.rows, op.cols)}"
                )
            return DistributedMatrix.from_numpy(self.context, array, block_size)
        if isinstance(op, RandomOp):
            return DistributedMatrix.random(
                self.context, op.rows, op.cols, block_size, seed=op.seed
            )
        array = np.full((op.rows, op.cols), op.value, dtype=np.float64)
        return DistributedMatrix.from_numpy(
            self.context, array, block_size, storage="dense"
        )

    def _resolve_block_size(self, program: MatrixProgram) -> int:
        if self.block_size is not None:
            return self.block_size
        from repro.blocks.memory import choose_block_size

        rows, cols = max(program.dims.values(), key=lambda shape: shape[0] * shape[1])
        config = self.context.config
        return choose_block_size(
            rows, cols, config.num_workers, config.threads_per_worker
        )

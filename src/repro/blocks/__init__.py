"""Block-based local matrix substrate (paper Section 5.3).

Dense and CSC sparse blocks, the pure compute kernels that operate on them,
the paper's memory model (Equation 2) and block-size rule (Equation 3), and
helpers to split/assemble numpy matrices into block grids.
"""

from repro.blocks.conversion import (
    BlockGrid,
    assemble,
    block_extent,
    grid_model_nbytes,
    grid_shape,
    split,
)
from repro.blocks.dense import DenseBlock
from repro.blocks.memory import (
    choose_block_size,
    dense_block_model_bytes,
    matrix_model_bytes,
    max_block_size,
    sparse_block_model_bytes,
)
from repro.blocks.ops import (
    CELLWISE_OPS,
    Block,
    accumulate,
    block_col_sums,
    block_row_sums,
    block_sq_sum,
    block_sum,
    cellwise,
    cellwise_flops,
    matmul,
    matmul_flops,
    scalar_op,
    transpose,
)
from repro.blocks.sparse import CSCBlock

__all__ = [
    "Block",
    "BlockGrid",
    "CELLWISE_OPS",
    "CSCBlock",
    "DenseBlock",
    "accumulate",
    "assemble",
    "block_extent",
    "block_col_sums",
    "block_row_sums",
    "block_sq_sum",
    "block_sum",
    "cellwise",
    "cellwise_flops",
    "choose_block_size",
    "dense_block_model_bytes",
    "grid_model_nbytes",
    "grid_shape",
    "matmul",
    "matmul_flops",
    "matrix_model_bytes",
    "max_block_size",
    "scalar_op",
    "sparse_block_model_bytes",
    "split",
    "transpose",
]

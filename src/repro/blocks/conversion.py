"""Splitting matrices into block grids and assembling them back.

DMac partitions every matrix twice (paper Section 5.3): first into square
``block_size`` x ``block_size`` blocks -- the base computing unit -- and then
the *blocks* are distributed across workers by the partition scheme.  This
module implements the first level: numpy array <-> block grid.

Blocks are addressed by ``(block_row, block_col)`` indices.  Edge blocks are
smaller when the matrix dimensions are not multiples of the block size.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.blocks.dense import DenseBlock
from repro.blocks.ops import Block
from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError

#: Blocks whose density is below this fraction are stored in CSC format
#: when the storage format is chosen automatically.
DEFAULT_SPARSE_THRESHOLD = 0.3

BlockGrid = dict[tuple[int, int], Block]


def grid_shape(rows: int, cols: int, block_size: int) -> tuple[int, int]:
    """Number of block rows and block columns for a matrix of the given shape."""
    if block_size < 1:
        raise BlockError(f"block_size must be >= 1, got {block_size}")
    return math.ceil(rows / block_size), math.ceil(cols / block_size)


def block_extent(index: int, dim: int, block_size: int) -> tuple[int, int]:
    """Half-open ``[start, stop)`` range covered by block ``index`` along a
    dimension of length ``dim``."""
    start = index * block_size
    if start >= dim:
        raise BlockError(f"block index {index} out of range for dim {dim}")
    return start, min(start + block_size, dim)


def split(
    array: np.ndarray,
    block_size: int,
    storage: str = "auto",
    sparse_threshold: float = DEFAULT_SPARSE_THRESHOLD,
) -> BlockGrid:
    """Split a 2-D numpy array into a grid of blocks.

    Args:
        array: the matrix to split.
        block_size: rows/columns per square block.
        storage: ``"dense"``, ``"sparse"`` or ``"auto"`` (per-block choice by
            density against ``sparse_threshold``).
    """
    arr = np.asarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise BlockError(f"expected a 2-D array, got ndim={arr.ndim}")
    if storage not in ("auto", "dense", "sparse"):
        raise BlockError(f"unknown storage policy {storage!r}")
    rows, cols = arr.shape
    block_rows, block_cols = grid_shape(rows, cols, block_size)
    grid: BlockGrid = {}
    for bi in range(block_rows):
        r0, r1 = block_extent(bi, rows, block_size)
        for bj in range(block_cols):
            c0, c1 = block_extent(bj, cols, block_size)
            piece = arr[r0:r1, c0:c1]
            grid[(bi, bj)] = _wrap(piece, storage, sparse_threshold)
    return grid


def _wrap(piece: np.ndarray, storage: str, sparse_threshold: float) -> Block:
    if storage == "dense":
        return DenseBlock(piece)
    if storage == "sparse":
        return CSCBlock.from_dense(piece)
    size = piece.size
    density = np.count_nonzero(piece) / size if size else 0.0
    if density < sparse_threshold:
        return CSCBlock.from_dense(piece)
    return DenseBlock(piece)


def assemble(
    grid: Mapping[tuple[int, int], Block],
    shape: tuple[int, int],
    block_size: int,
) -> np.ndarray:
    """Reassemble a block grid into a dense numpy array.

    Missing blocks are treated as all-zero (the distributed layer drops
    empty sparse blocks).
    """
    rows, cols = shape
    out = np.zeros((rows, cols), dtype=np.float64)
    block_rows, block_cols = grid_shape(rows, cols, block_size)
    for (bi, bj), block in grid.items():
        if not (0 <= bi < block_rows and 0 <= bj < block_cols):
            raise BlockError(f"block index {(bi, bj)} out of range for shape {shape}")
        r0, r1 = block_extent(bi, rows, block_size)
        c0, c1 = block_extent(bj, cols, block_size)
        expected = (r1 - r0, c1 - c0)
        if block.shape != expected:
            raise BlockError(
                f"block {(bi, bj)} has shape {block.shape}, expected {expected}"
            )
        out[r0:r1, c0:c1] = block.to_numpy() if isinstance(block, CSCBlock) else block.data
    return out


def grid_model_nbytes(grid: Mapping[tuple[int, int], Block]) -> int:
    """Total memory of a grid under the paper's model (Equation 2 summed
    block by block)."""
    return sum(block.model_nbytes for block in grid.values())

"""Dense matrix blocks.

A :class:`DenseBlock` is the base computing unit for dense data in DMac's
local engine (paper Section 5.3): a 2-D, C-ordered ``float64`` numpy array
plus the memory accounting the paper uses.

The paper's memory model (Equation 2) charges ``4mn`` bytes for a dense
``m x n`` block, i.e. 4 bytes per element.  We keep the computation in
``float64`` for numerical fidelity but expose the paper's accounting via
:attr:`DenseBlock.model_nbytes` so the memory experiments (Figures 7 and 8)
reproduce the published formulas; :attr:`DenseBlock.actual_nbytes` reports
the real allocation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BlockError

#: Bytes per element in the paper's dense memory model (Equation 2).
DENSE_MODEL_BYTES_PER_ELEMENT = 4


class DenseBlock:
    """A dense sub-matrix block backed by a ``float64`` numpy array."""

    __slots__ = ("data",)

    is_sparse = False

    def __init__(self, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2:
            raise BlockError(f"DenseBlock requires a 2-D array, got ndim={arr.ndim}")
        self.data = np.ascontiguousarray(arr)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "DenseBlock":
        """An all-zero block of the given shape."""
        return cls(np.zeros((rows, cols), dtype=np.float64))

    @classmethod
    def full(cls, rows: int, cols: int, value: float) -> "DenseBlock":
        """A constant block of the given shape."""
        return cls(np.full((rows, cols), value, dtype=np.float64))

    @classmethod
    def random(cls, rows: int, cols: int, rng: np.random.Generator) -> "DenseBlock":
        """A uniform(0, 1) random block drawn from ``rng``."""
        return cls(rng.random((rows, cols)))

    # -- metadata ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def nnz(self) -> int:
        """Number of non-zero entries (counted, not estimated)."""
        return int(np.count_nonzero(self.data))

    @property
    def sparsity(self) -> float:
        """Fraction of non-zero entries in the block."""
        rows, cols = self.shape
        if rows == 0 or cols == 0:
            return 0.0
        return self.nnz / (rows * cols)

    @property
    def model_nbytes(self) -> int:
        """Memory charge under the paper's model: ``4mn`` bytes."""
        rows, cols = self.shape
        return DENSE_MODEL_BYTES_PER_ELEMENT * rows * cols

    @property
    def actual_nbytes(self) -> int:
        """Real bytes held by the backing array."""
        return self.data.nbytes

    # -- conversions -------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """A defensive copy of the block contents as a numpy array."""
        return self.data.copy()

    def copy(self) -> "DenseBlock":
        return DenseBlock(self.data.copy())

    def transpose(self) -> "DenseBlock":
        """The transposed block (materialised, C-ordered)."""
        return DenseBlock(self.data.T)

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self.shape
        return f"DenseBlock({rows}x{cols})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenseBlock):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self.data, other.data))

    def __hash__(self) -> int:  # blocks are mutable; identity hash
        return id(self)

"""Memory model and block-size selection (paper Section 5.3).

Two results from the paper are implemented here:

* **Equation 2** -- the total memory consumed by an ``M x N`` matrix with
  sparsity ``S`` split into ``m x m`` blocks::

      Mem(A) = 4 N (M / m) + 8 M N S     (sparse)
      Mem(A) = 4 M N                     (dense)

  The first term is the duplicated Column-Start-Index arrays (one 4-byte
  entry per column *per block row*), which is why small blocks waste memory
  on sparse matrices.

* **Equation 3** -- the upper bound on the block row size that still gives
  every local thread at least one task, derived from the RMM task count
  ``M N / (K m^2)`` spread over ``K`` workers with ``L`` threads each::

      m <= sqrt(M N / (L K))

  DMac auto-tunes the block size to sit just under this bound, trading the
  sparse-memory overhead of small blocks against local parallelism.
"""

from __future__ import annotations

import math

from repro.errors import BlockError


def sparse_block_model_bytes(rows: int, cols: int, sparsity: float) -> int:
    """Paper model for one sparse block: ``4n + 8mns`` bytes."""
    return int(4 * cols + 8 * rows * cols * sparsity)


def dense_block_model_bytes(rows: int, cols: int) -> int:
    """Paper model for one dense block: ``4mn`` bytes."""
    return 4 * rows * cols


def matrix_model_bytes(
    rows: int,
    cols: int,
    sparsity: float,
    block_size: int,
    sparse: bool = True,
) -> int:
    """Equation 2: memory of an ``M x N`` matrix partitioned into
    ``block_size``-row blocks.

    For sparse storage this charges one Column-Start-Index array per block
    row (``4 N * ceil(M / m)``) plus 8 bytes per stored non-zero; dense
    storage is insensitive to blocking.
    """
    if block_size < 1:
        raise BlockError(f"block_size must be >= 1, got {block_size}")
    if not sparse:
        return 4 * rows * cols
    block_rows = math.ceil(rows / block_size)
    return int(4 * cols * block_rows + 8 * rows * cols * sparsity)


def max_block_size(rows: int, cols: int, workers: int, local_parallelism: int) -> int:
    """Equation 3: the largest block row size ``m`` such that an RMM-style
    multiplication still yields at least one task per local thread,
    ``m <= sqrt(M N / (L K))``."""
    if workers < 1 or local_parallelism < 1:
        raise BlockError("workers and local_parallelism must be >= 1")
    if rows < 1 or cols < 1:
        raise BlockError("matrix dimensions must be >= 1")
    bound = math.sqrt(rows * cols / (local_parallelism * workers))
    return max(1, int(bound))


def choose_block_size(
    rows: int,
    cols: int,
    workers: int,
    local_parallelism: int,
    fraction_of_bound: float = 0.9,
) -> int:
    """DMac's automatic block-size choice: a value near (just under) the
    Equation-3 upper bound, so blocks are as large as possible -- minimising
    the duplicated index arrays of Equation 2 -- while every thread still
    gets a task."""
    if not 0 < fraction_of_bound <= 1:
        raise BlockError(f"fraction_of_bound must lie in (0, 1], got {fraction_of_bound}")
    bound = max_block_size(rows, cols, workers, local_parallelism)
    chosen = max(1, int(bound * fraction_of_bound))
    return min(chosen, max(rows, cols))

"""Block-level compute kernels.

These kernels operate on single blocks (:class:`~repro.blocks.dense.DenseBlock`
or :class:`~repro.blocks.sparse.CSCBlock`) and are the base computing units
scheduled by the local engine (paper Section 5.3).  All kernels are pure:
they never mutate their inputs (the one deliberate exception is
:func:`accumulate`, which implements the In-Place aggregation and says so).

Output-format policy
--------------------
* ``matmul`` always yields a dense block.  This mirrors the paper's
  worst-case estimator, which pins the sparsity of any multiplication
  result to 1 (Section 5.1).
* cell-wise ``multiply`` with at least one sparse operand yields a sparse
  block (the result pattern is contained in the sparse operand's pattern).
* cell-wise ``add``/``subtract`` of two sparse blocks stays sparse (union
  pattern); mixing sparse with dense densifies.
* cell-wise ``divide`` yields a sparse block only when the numerator is
  sparse and the denominator dense; otherwise dense.
* scalar ``multiply``/``divide`` preserve the operand's format; scalar
  ``add``/``subtract`` with a non-zero constant densify a sparse operand.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.dense import DenseBlock
from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError, ShapeError

Block = DenseBlock | CSCBlock

#: Binary cell-wise operators supported by DMac (paper Section 3.1).
CELLWISE_OPS = ("add", "subtract", "multiply", "divide")


def _check_same_shape(a: Block, b: Block, what: str) -> None:
    if a.shape != b.shape:
        raise ShapeError(f"{what} requires equal shapes, got {a.shape} and {b.shape}")


# ---------------------------------------------------------------------------
# Matrix multiplication
# ---------------------------------------------------------------------------


def matmul(a: Block, b: Block) -> DenseBlock:
    """Block matrix product ``a @ b``; the result is always dense."""
    am, ak = a.shape
    bk, bn = b.shape
    if ak != bk:
        raise ShapeError(f"matmul inner dimensions differ: {a.shape} @ {b.shape}")
    if isinstance(a, DenseBlock) and isinstance(b, DenseBlock):
        return DenseBlock(a.data @ b.data)
    if isinstance(a, CSCBlock) and isinstance(b, DenseBlock):
        return _sparse_dense_matmul(a, b)
    if isinstance(a, DenseBlock) and isinstance(b, CSCBlock):
        # (A @ B) == (B^T @ A^T)^T; reuse the sparse-times-dense kernel.
        product = _sparse_dense_matmul(b.transpose(), a.transpose())
        return product.transpose()
    assert isinstance(a, CSCBlock) and isinstance(b, CSCBlock)
    return _sparse_dense_matmul(a, b.to_dense_block())


def _sparse_dense_matmul(a: CSCBlock, b: DenseBlock) -> DenseBlock:
    """``C[r, :] += v * B[c, :]`` for every stored ``A[r, c] = v``."""
    m, _ = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.float64)
    if a.nnz:
        contributions = a.values[:, None] * b.data[a.column_indices(), :]
        np.add.at(out, a.row_idx, contributions)
    return DenseBlock(out)


def matmul_flops(a: Block, b: Block) -> int:
    """Floating-point operations performed by :func:`matmul`.

    Dense x dense costs ``2 m k n``; a sparse operand reduces the count to
    the stored non-zeros actually touched.
    """
    am, ak = a.shape
    _, bn = b.shape
    if isinstance(a, CSCBlock):
        return 2 * a.nnz * bn
    if isinstance(b, CSCBlock):
        return 2 * am * b.nnz
    return 2 * am * ak * bn


# ---------------------------------------------------------------------------
# Cell-wise binary operators
# ---------------------------------------------------------------------------


def cellwise(op: str, a: Block, b: Block) -> Block:
    """Apply a cell-wise binary operator (``add``/``subtract``/``multiply``/
    ``divide``) to two equally-shaped blocks."""
    if op not in CELLWISE_OPS:
        raise BlockError(f"unknown cell-wise operator {op!r}")
    _check_same_shape(a, b, f"cell-wise {op}")
    if op == "multiply":
        return _cellwise_multiply(a, b)
    if op == "divide":
        return _cellwise_divide(a, b)
    return _cellwise_additive(op, a, b)


def _cellwise_multiply(a: Block, b: Block) -> Block:
    if isinstance(a, DenseBlock) and isinstance(b, DenseBlock):
        return DenseBlock(a.data * b.data)
    if isinstance(a, CSCBlock) and isinstance(b, DenseBlock):
        return _sparse_times_dense(a, b)
    if isinstance(a, DenseBlock) and isinstance(b, CSCBlock):
        return _sparse_times_dense(b, a)
    assert isinstance(a, CSCBlock) and isinstance(b, CSCBlock)
    return _sparse_times_sparse(a, b)


def _sparse_times_dense(sparse: CSCBlock, dense: DenseBlock) -> CSCBlock:
    """Hadamard product with a sparse mask: the result keeps the sparse
    operand's pattern (entries where the dense factor is zero are dropped
    during canonicalisation)."""
    rows, cols, values = sparse.to_coo()
    scaled = values * dense.data[rows, cols]
    return CSCBlock.from_coo(rows, cols, scaled, sparse.shape)


def _sparse_times_sparse(a: CSCBlock, b: CSCBlock) -> CSCBlock:
    m, _ = a.shape
    a_keys = a.column_indices().astype(np.int64) * m + a.row_idx
    b_keys = b.column_indices().astype(np.int64) * m + b.row_idx
    _, a_pos, b_pos = np.intersect1d(a_keys, b_keys, assume_unique=True, return_indices=True)
    values = a.values[a_pos] * b.values[b_pos]
    keys = a_keys[a_pos]
    return CSCBlock.from_coo(keys % m, keys // m, values, a.shape)


def _cellwise_divide(a: Block, b: Block) -> Block:
    if isinstance(a, CSCBlock) and isinstance(b, DenseBlock):
        rows, cols, values = a.to_coo()
        with np.errstate(divide="ignore", invalid="ignore"):
            quotient = values / b.data[rows, cols]
        return CSCBlock.from_coo(rows, cols, quotient, a.shape)
    a_dense = a.to_dense_block() if isinstance(a, CSCBlock) else a
    b_dense = b.to_dense_block() if isinstance(b, CSCBlock) else b
    with np.errstate(divide="ignore", invalid="ignore"):
        return DenseBlock(a_dense.data / b_dense.data)


def _cellwise_additive(op: str, a: Block, b: Block) -> Block:
    sign = 1.0 if op == "add" else -1.0
    if isinstance(a, CSCBlock) and isinstance(b, CSCBlock):
        a_rows, a_cols, a_vals = a.to_coo()
        b_rows, b_cols, b_vals = b.to_coo()
        rows = np.concatenate([a_rows, b_rows])
        cols = np.concatenate([a_cols, b_cols])
        vals = np.concatenate([a_vals, sign * b_vals])
        return CSCBlock.from_coo(rows, cols, vals, a.shape)
    a_dense = a.to_dense_block() if isinstance(a, CSCBlock) else a
    b_dense = b.to_dense_block() if isinstance(b, CSCBlock) else b
    result = a_dense.data + sign * b_dense.data
    return DenseBlock(result)


def cellwise_flops(a: Block, b: Block) -> int:
    """Flop estimate for a cell-wise operator on two blocks."""
    if isinstance(a, CSCBlock) and isinstance(b, CSCBlock):
        return a.nnz + b.nnz
    rows, cols = a.shape
    return rows * cols


# ---------------------------------------------------------------------------
# Scalar operators
# ---------------------------------------------------------------------------


def scalar_op(op: str, block: Block, scalar: float) -> Block:
    """Apply ``block <op> scalar`` element-wise.

    ``multiply``/``divide`` preserve sparsity; ``add``/``subtract`` with a
    non-zero scalar turn an (implicitly zero-padded) sparse block dense.
    """
    if op not in CELLWISE_OPS:
        raise BlockError(f"unknown scalar operator {op!r}")
    if op == "divide" and scalar == 0:
        raise BlockError("division by zero scalar")
    if isinstance(block, CSCBlock):
        if op == "multiply":
            return CSCBlock(block.shape, block.values * scalar, block.row_idx.copy(),
                            block.colptr.copy())
        if op == "divide":
            return CSCBlock(block.shape, block.values / scalar, block.row_idx.copy(),
                            block.colptr.copy())
        if scalar == 0:
            return block.copy()
        block = block.to_dense_block()
    data = block.data
    if op == "add":
        return DenseBlock(data + scalar)
    if op == "subtract":
        return DenseBlock(data - scalar)
    if op == "multiply":
        return DenseBlock(data * scalar)
    return DenseBlock(data / scalar)


# ---------------------------------------------------------------------------
# Element-wise unary functions
# ---------------------------------------------------------------------------

#: Unary functions whose result at 0 is 0: they keep a sparse block sparse.
ZERO_PRESERVING_UNARY = frozenset({"abs", "sqrt", "sign"})

#: All supported element-wise unary functions.
UNARY_FUNCS = ("exp", "log", "sqrt", "abs", "sign", "sigmoid", "reciprocal")


def _stable_sigmoid(data: np.ndarray) -> np.ndarray:
    out = np.empty_like(data)
    positive = data >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-data[positive]))
    exp_x = np.exp(data[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def apply_unary(func: str, data: np.ndarray) -> np.ndarray:
    """Apply an element-wise unary function to a raw ndarray (the kernel
    behind :func:`unary_op`; also used by the single-machine baseline)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        if func == "exp":
            return np.exp(data)
        if func == "log":
            return np.log(data)
        if func == "sqrt":
            return np.sqrt(data)
        if func == "abs":
            return np.abs(data)
        if func == "sign":
            return np.sign(data)
        if func == "sigmoid":
            return _stable_sigmoid(data)
        if func == "reciprocal":
            return 1.0 / data
    raise BlockError(f"unknown unary function {func!r}")  # pragma: no cover


def unary_op(func: str, block: Block) -> Block:
    """Apply an element-wise unary function to a block.

    Zero-preserving functions (``abs``/``sqrt``/``sign``) act on a sparse
    block's stored values only; the others (``exp``, ``sigmoid``, ...) map
    the implicit zeros to non-zeros and therefore densify.
    """
    if func not in UNARY_FUNCS:
        raise BlockError(f"unknown unary function {func!r}")
    if isinstance(block, CSCBlock):
        if func in ZERO_PRESERVING_UNARY:
            return CSCBlock(
                block.shape,
                apply_unary(func, block.values),
                block.row_idx.copy(),
                block.colptr.copy(),
            )
        block = block.to_dense_block()
    return DenseBlock(apply_unary(func, block.data))


def unary_flops(block: Block, func: str) -> int:
    """Flop estimate for :func:`unary_op` on one block."""
    if isinstance(block, CSCBlock) and func in ZERO_PRESERVING_UNARY:
        return block.nnz
    rows, cols = block.shape
    return rows * cols


# ---------------------------------------------------------------------------
# Structural and aggregate kernels
# ---------------------------------------------------------------------------


def transpose(block: Block) -> Block:
    """The transposed block, preserving storage format."""
    return block.transpose()


def block_sum(block: Block) -> float:
    """Sum of all entries of the block."""
    if isinstance(block, CSCBlock):
        return float(block.values.sum())
    return float(block.data.sum())


def block_row_sums(block: Block) -> DenseBlock:
    """Column vector of per-row sums (``m x 1``)."""
    rows, __ = block.shape
    if isinstance(block, CSCBlock):
        out = np.zeros((rows, 1), dtype=np.float64)
        if block.nnz:
            np.add.at(out[:, 0], block.row_idx, block.values)
        return DenseBlock(out)
    return DenseBlock(block.data.sum(axis=1, keepdims=True))


def block_col_sums(block: Block) -> DenseBlock:
    """Row vector of per-column sums (``1 x n``)."""
    __, cols = block.shape
    if isinstance(block, CSCBlock):
        sums = np.add.reduceat(
            np.concatenate([block.values, [0.0]]),
            np.minimum(block.colptr[:-1], len(block.values)),
        )
        # reduceat misbehaves on empty columns: recompute them as zero.
        empty = np.diff(block.colptr) == 0
        sums = np.where(empty, 0.0, sums[:cols])
        return DenseBlock(sums.reshape(1, cols))
    return DenseBlock(block.data.sum(axis=0, keepdims=True))


def block_sq_sum(block: Block) -> float:
    """Sum of squared entries (used for Frobenius norms)."""
    if isinstance(block, CSCBlock):
        return float(np.square(block.values).sum())
    return float(np.square(block.data).sum())


def accumulate(target: DenseBlock, addition: Block) -> None:
    """In-place aggregation: ``target += addition``.

    This is the only mutating kernel; it backs the In-Place local execution
    strategy (paper Section 5.3) where every partial product of a result
    block is folded directly into that block, avoiding intermediate buffers.
    """
    _check_same_shape(target, addition, "accumulate")
    if isinstance(addition, CSCBlock):
        rows, cols, values = addition.to_coo()
        np.add.at(target.data, (rows, cols), values)
    else:
        target.data += addition.data

"""Sparse matrix blocks in Compressed Sparse Column (CSC) format.

This is a from-scratch CSC implementation following Figure 5 of the paper:
three arrays hold a sparse ``m x n`` block --

* ``values``  -- the non-zero entries, column-major order (``float64``),
* ``row_idx`` -- the row index of each non-zero (``int32``),
* ``colptr``  -- for each column ``j``, ``colptr[j]`` is the offset of the
  first entry of column ``j`` in the other two arrays (``int32``,
  length ``n + 1``).

The paper's memory model for a sparse block with ``m x n`` size and
sparsity ``s`` is ``Mem(b) = 4n + 8mns`` bytes (Section 5.3): a 4-byte
column-start entry per column plus 8 bytes per stored non-zero.
:attr:`CSCBlock.model_nbytes` implements exactly that; the real allocation
(8-byte float values) is available as :attr:`CSCBlock.actual_nbytes`.

Row indices are kept sorted within each column and duplicate coordinates
are coalesced by summation, so every logical matrix has a unique CSC form.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.dense import DenseBlock
from repro.errors import BlockError

#: Bytes per column-start entry in the paper's model.
CSC_MODEL_BYTES_PER_COLUMN = 4
#: Bytes per stored non-zero in the paper's model (index + value).
CSC_MODEL_BYTES_PER_NNZ = 8


class CSCBlock:
    """A sparse sub-matrix block stored in compressed sparse column form."""

    __slots__ = ("values", "row_idx", "colptr", "_shape")

    is_sparse = True

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        row_idx: np.ndarray,
        colptr: np.ndarray,
    ) -> None:
        rows, cols = shape
        values = np.asarray(values, dtype=np.float64)
        row_idx = np.asarray(row_idx, dtype=np.int32)
        colptr = np.asarray(colptr, dtype=np.int32)
        if rows < 0 or cols < 0:
            raise BlockError(f"negative block shape {shape}")
        if values.ndim != 1 or row_idx.ndim != 1 or colptr.ndim != 1:
            raise BlockError("CSC component arrays must be one-dimensional")
        if len(values) != len(row_idx):
            raise BlockError(
                f"values ({len(values)}) and row_idx ({len(row_idx)}) lengths differ"
            )
        if len(colptr) != cols + 1:
            raise BlockError(f"colptr must have length cols+1={cols + 1}, got {len(colptr)}")
        if len(colptr) > 0 and (colptr[0] != 0 or colptr[-1] != len(values)):
            raise BlockError("colptr must start at 0 and end at nnz")
        if np.any(np.diff(colptr) < 0):
            raise BlockError("colptr must be non-decreasing")
        if len(row_idx) and (row_idx.min() < 0 or row_idx.max() >= rows):
            raise BlockError("row index out of range")
        self._shape = (int(rows), int(cols))
        self.values = values
        self.row_idx = row_idx
        self.colptr = colptr

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSCBlock":
        """Build a CSC block from coordinate triples.

        Duplicate coordinates are coalesced by summing their values; explicit
        zeros are dropped so the stored non-zeros equal the logical ones.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise BlockError("COO component arrays must have equal length")
        m, n = shape
        if len(rows) and (rows.min() < 0 or rows.max() >= m or cols.min() < 0 or cols.max() >= n):
            raise BlockError(f"COO coordinates out of range for shape {shape}")

        # Sort column-major, coalesce duplicates, drop explicit zeros.
        keys = cols * m + rows
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        if len(keys):
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            summed = np.zeros(len(unique_keys), dtype=np.float64)
            np.add.at(summed, inverse, values)
            nonzero = summed != 0.0
            unique_keys, summed = unique_keys[nonzero], summed[nonzero]
        else:
            unique_keys = keys.astype(np.int64)
            summed = values

        out_cols = unique_keys // m
        out_rows = unique_keys % m
        counts = np.bincount(out_cols, minlength=n)
        colptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int32)
        return cls(shape, summed, out_rows.astype(np.int32), colptr)

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CSCBlock":
        """Compress a dense 2-D array into CSC form."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.ndim != 2:
            raise BlockError(f"expected a 2-D array, got ndim={arr.ndim}")
        rows, cols = np.nonzero(arr)
        return cls.from_coo(rows, cols, arr[rows, cols], arr.shape)

    @classmethod
    def empty(cls, rows: int, cols: int) -> "CSCBlock":
        """An all-zero sparse block."""
        return cls(
            (rows, cols),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int32),
            np.zeros(cols + 1, dtype=np.int32),
        )

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        sparsity: float,
        rng: np.random.Generator,
    ) -> "CSCBlock":
        """A random sparse block with the requested expected sparsity."""
        if not 0.0 <= sparsity <= 1.0:
            raise BlockError(f"sparsity must lie in [0, 1], got {sparsity}")
        nnz = rng.binomial(rows * cols, sparsity) if rows * cols else 0
        flat = rng.choice(rows * cols, size=nnz, replace=False) if nnz else np.empty(0, int)
        values = rng.random(nnz) + 1e-12  # strictly positive: never an explicit zero
        return cls.from_coo(flat % rows, flat // rows, values, (rows, cols))

    # -- metadata ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def sparsity(self) -> float:
        rows, cols = self._shape
        if rows == 0 or cols == 0:
            return 0.0
        return self.nnz / (rows * cols)

    @property
    def model_nbytes(self) -> int:
        """Memory charge under the paper's model: ``4n + 8 * nnz`` bytes."""
        __, cols = self._shape
        return CSC_MODEL_BYTES_PER_COLUMN * cols + CSC_MODEL_BYTES_PER_NNZ * self.nnz

    @property
    def actual_nbytes(self) -> int:
        """Real bytes held by the three backing arrays."""
        return self.values.nbytes + self.row_idx.nbytes + self.colptr.nbytes

    # -- views and conversions ---------------------------------------------

    def column_indices(self) -> np.ndarray:
        """The column index of each stored non-zero, in storage order."""
        counts = np.diff(self.colptr)
        return np.repeat(np.arange(self._shape[1], dtype=np.int32), counts)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinate triples ``(rows, cols, values)`` in column-major order."""
        return self.row_idx.copy(), self.column_indices(), self.values.copy()

    def to_numpy(self) -> np.ndarray:
        """Decompress into a dense numpy array."""
        dense = np.zeros(self._shape, dtype=np.float64)
        if self.nnz:
            dense[self.row_idx, self.column_indices()] = self.values
        return dense

    def to_dense_block(self) -> DenseBlock:
        return DenseBlock(self.to_numpy())

    def copy(self) -> "CSCBlock":
        return CSCBlock(
            self._shape, self.values.copy(), self.row_idx.copy(), self.colptr.copy()
        )

    def transpose(self) -> "CSCBlock":
        """The transposed block, rebuilt in canonical CSC form."""
        rows, cols, values = self.to_coo()
        m, n = self._shape
        return CSCBlock.from_coo(cols, rows, values, (n, m))

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of the stored entries of column ``j``."""
        if not 0 <= j < self._shape[1]:
            raise BlockError(f"column {j} out of range for shape {self._shape}")
        start, stop = self.colptr[j], self.colptr[j + 1]
        return self.row_idx[start:stop], self.values[start:stop]

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self._shape
        return f"CSCBlock({rows}x{cols}, nnz={self.nnz})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSCBlock):
            return NotImplemented
        return (
            self._shape == other._shape
            and bool(np.array_equal(self.values, other.values))
            and bool(np.array_equal(self.row_idx, other.row_idx))
            and bool(np.array_equal(self.colptr, other.colptr))
        )

    def __hash__(self) -> int:  # blocks are mutable; identity hash
        return id(self)

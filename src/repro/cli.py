"""Command-line interface: run the paper's applications and inspect plans.

Examples::

    python -m repro gnmf --scale 4e-3 --iterations 5 --compare
    python -m repro pagerank --graph LiveJournal --workers 8
    python -m repro linreg --rows 2000 --features 80
    python -m repro plan gnmf --iterations 1          # Figure-3-style listing
    python -m repro plan gnmf --dot > plan.dot        # Graphviz export
    python -m repro stages gnmf --iterations 2        # runtime stage graph
    python -m repro lint examples/gnmf.dml            # static analysis
    python -m repro lint gnmf --format json
    python -m repro lint --selftest                   # prove the rules fire
    python -m repro verify gnmf                       # certificates + hazards + memory bound
    python -m repro verify pagerank --execute --format json
    python -m repro chaos pagerank --seed 7 --faults "lostblock:instance=rank,iteration=3"
    python -m repro run gnmf --trace                  # traced run + timeline
    python -m repro trace pagerank --format chrome --out trace.json  # Perfetto

Exit codes: 0 on success, 1 when the lint reports error-severity findings
(likewise when verify finds hazards, fails a rewrite certificate, or an
``--execute`` cross-check observes a peak above the static bound, or a
chaos run's recovered results diverge from the clean run), 2 when a
program or fault spec fails to parse.

Every ``--format json`` subcommand prints exactly one JSON document on
stdout; human-readable progress and diagnostics go to stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

import numpy as np

from repro import ClusterConfig, DMacSession
from repro.core.analysis import explain, format_statistics
from repro.core.viz import plan_to_dot
from repro.datasets import PAPER_GRAPHS
from repro.errors import ProgramError
from repro.frontend.staged import StagedProgram
from repro.programs import singular_values
from repro.programs.registry import (
    ALL_APPS,
    PAPER_APPS,
    WorkloadParams,
    build_workload,
)

#: Exit codes shared by the plan/lint subcommands.
EXIT_OK = 0
EXIT_LINT_ERRORS = 1
EXIT_PARSE_ERROR = 2

#: The paper's seven applications.  Kept under the historical name for the
#: tests and benchmarks that parameterise over it; the full runnable list
#: (frontend demos included) is :data:`repro.programs.registry.ALL_APPS`.
APPS = PAPER_APPS


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=4, help="cluster workers (K)")
    parser.add_argument("--threads", type=int, default=4, help="threads per worker (L)")
    parser.add_argument("--block-size", type=int, default=None,
                        help="block rows/cols (default: Equation 3 automatic)")
    parser.add_argument("--compare", action="store_true",
                        help="also run the SystemML-S baseline")
    parser.add_argument("--optimize", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run the repro.planopt pass pipeline (CSE, "
                             "repartition coalescing, dead-step elimination, "
                             "loop-invariant hoisting, cellwise fusion) on "
                             "the plan")
    parser.add_argument("--batched-matmul", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="group same-shape dense block products into one "
                             "stacked BLAS dispatch (byte-identical)")
    parser.add_argument("--strassen", action="store_true",
                        help="use the Strassen kernel for large dense block "
                             "products (faster, not bitwise-stable)")
    parser.add_argument("--strassen-min-size", type=int, default=128,
                        help="dense-size crossover below which block products "
                             "stay on the naive BLAS kernel")
    parser.add_argument("--backend", choices=["simulated", "elastic"],
                        default="simulated",
                        help="execution substrate: the static simulated "
                             "cluster, or the elastic worker pool whose "
                             "members may join and leave between stages")
    parser.add_argument("--elastic", default=None, metavar="SPEC",
                        help="membership timeline for --backend elastic, "
                             "e.g. 'join@2:count=2; leave@5:worker=0' "
                             "(kinds: join, leave; see repro.elastic.spec)")
    parser.add_argument("--elastic-seed", type=int, default=0,
                        help="seed of the elastic pool's rendezvous slot "
                             "assignment (same seed + timeline = "
                             "byte-identical runs)")


def _session(args: argparse.Namespace) -> DMacSession:
    return DMacSession(
        ClusterConfig(
            num_workers=args.workers,
            threads_per_worker=args.threads,
            block_size=args.block_size,
            batched_matmul=getattr(args, "batched_matmul", True),
            strassen=getattr(args, "strassen", False),
            strassen_min_size=getattr(args, "strassen_min_size", 128),
            backend=getattr(args, "backend", "simulated"),
            elastic=getattr(args, "elastic", None),
            elastic_seed=getattr(args, "elastic_seed", 0),
        ),
        optimize=getattr(args, "optimize", False),
    )


def _report(label: str, result, baseline=None) -> None:
    print(f"{label}: {result.comm_bytes / 1e6:.3f} MB communication, "
          f"{result.simulated_seconds:.3f} s simulated "
          f"({result.num_stages} stages, "
          f"peak {result.peak_memory_bytes / 1e6:.1f} MB/worker)")
    if baseline is not None:
        ratio = baseline.comm_bytes / max(result.comm_bytes, 1)
        print(f"SystemML-S baseline: {baseline.comm_bytes / 1e6:.3f} MB "
              f"({ratio:.1f}x DMac), {baseline.simulated_seconds:.3f} s simulated")


def _workload(args: argparse.Namespace):
    """Build (program, inputs, extra) for the registered app in args.app."""
    try:
        workload = build_workload(args.app, WorkloadParams.from_namespace(args))
    except ProgramError as exc:
        raise SystemExit(str(exc)) from exc
    return workload.program, workload.inputs, workload.extra


def _segment_plans(session: DMacSession, program, target: str):
    """Label/plan pairs: one pair for a plain program, the prologue and
    the loop body for a staged convergence program."""
    if isinstance(program, StagedProgram):
        return [
            (f"{target} [{label}]", session.plan(segment))
            for label, segment in program.segments()
        ]
    return [(target, session.plan(program))]


def _cmd_run(args: argparse.Namespace) -> int:
    program, inputs, svd_names = _workload(args)
    staged = isinstance(program, StagedProgram)
    if args.compare and staged:
        print("run --compare: the SystemML-S baseline cannot execute a "
              "staged convergence loop", file=sys.stderr)
        return EXIT_PARSE_ERROR
    if args.compare and getattr(args, "backend", "simulated") == "elastic":
        print("run --compare: the SystemML-S baseline runs on the static "
              "backend; drop --backend elastic to compare", file=sys.stderr)
        return EXIT_PARSE_ERROR
    session = _session(args)
    tracer = None
    if getattr(args, "trace", False):
        if staged:
            session.trace = True  # one reconciled collector per segment
        else:
            from repro.trace import TraceCollector

            tracer = TraceCollector()
    result = session.run(program, inputs, tracer=tracer)
    if getattr(args, "trace", False):
        from repro.trace import assert_reconciled

        if staged:
            for record in result.segments:
                assert_reconciled(record.result.tracing)
            tracer = result.tracing  # last segment, for the reports below
        else:
            assert_reconciled(tracer)
    baseline = None
    if args.compare:
        baseline = _session(args).run_systemml(program, inputs)
        for name in result.matrices:
            np.testing.assert_allclose(
                result.matrices[name], baseline.matrices[name], atol=1e-7
            )
    if getattr(args, "format", "text") == "json":
        ledger = session.context.ledger
        report = {
            "app": args.app,
            "optimized": args.optimize,
            "comm_bytes": result.comm_bytes,
            "bytes_by_kind": ledger.bytes_by_kind(),
            "shuffle_links": {
                f"{src}->{dst}": nbytes
                for (src, dst), nbytes in sorted(ledger.bytes_by_link().items())
            },
            "simulated_seconds": result.simulated_seconds,
            "num_stages": result.num_stages,
            "peak_memory_bytes": result.peak_memory_bytes,
            "cache": result.cache,
        }
        if staged:
            report["staged"] = True
            report["segments"] = result.num_segments
        if result.elastic is not None:
            report["elastic"] = result.elastic
        if baseline is not None:
            report["baseline_comm_bytes"] = baseline.comm_bytes
            report["baseline_simulated_seconds"] = baseline.simulated_seconds
        if tracer is not None:
            from repro.trace import reconcile

            report["trace"] = {
                "reconciled": reconcile(tracer)["ok"],
                "metrics": tracer.metrics().to_json_dict(),
            }
        print(json.dumps(report, indent=2))
        return 0
    _report(f"DMac {args.app}", result, baseline)
    if result.elastic is not None:
        summary = result.elastic
        print(f"elastic: {summary['initial_members']} -> "
              f"{summary['final_members']} members over {summary['slots']} "
              f"slots, {summary['worker_seconds']:.3f} worker-s "
              f"(fixed cluster: {summary['slot_seconds']:.3f}), "
              f"{summary['rebalance_bytes'] / 1e6:.3f} MB rebalanced")
        for event in summary["events"]:
            print(f"  {event}")
    if staged:
        print(result.describe())
    if svd_names is not None:
        values = singular_values(result.scalars, svd_names)
        print("top singular values:", np.array2string(values[:5], precision=3))
    if tracer is not None:
        from repro.trace import format_summary

        print(format_summary(tracer))
    return 0


def _load_bound_array(path: str) -> np.ndarray:
    """Load an input array from .npy, or from a repro matrix .npz."""
    if path.endswith(".npy"):
        return np.load(path)
    with np.load(path, allow_pickle=False) as payload:
        if "format" in payload:  # repro.matrix.io format
            rows, cols = (int(v) for v in payload["shape"])
            array = np.zeros((rows, cols))
            array[payload["rows"], payload["cols"]] = payload["values"]
            return array
        raise SystemExit(f"{path}: not a .npy or repro matrix .npz file")


def _cmd_script(args: argparse.Namespace) -> int:
    from repro.lang.dml import load_names, parse_program

    source = open(args.path, encoding="utf-8").read()
    program = parse_program(source)
    names = load_names(program)
    inputs = {}
    for binding in args.bind or []:
        name, __, path = binding.partition("=")
        if name not in names:
            raise SystemExit(
                f"--bind {name}: script has no load named {name!r} "
                f"(loads: {sorted(names)})"
            )
        inputs[names[name]] = _load_bound_array(path)
    session = _session(args)
    result = session.run(program, inputs)
    _report(f"DMac script {args.path}", result)
    for name in program.scalar_outputs:
        print(f"scalar {name} = {result.scalars[name]:.6g}")
    for name, array in result.matrices.items():
        print(f"matrix {name}: shape {array.shape}, "
              f"||.||_F = {np.linalg.norm(array):.6g}")
    return 0


def _resolve_plan_target(args: argparse.Namespace, target: str):
    """An app name or a ``.dml`` path -> its program (ProgramError on a
    script that fails to parse)."""
    if target in ALL_APPS:
        args.app = target
        program, __, ___ = _workload(args)
        return program
    if target.endswith(".dml") or os.path.sep in target or os.path.exists(target):
        from repro.lang.dml import parse_program

        try:
            with open(target, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise ProgramError(f"cannot read {target}: {exc}") from exc
        return parse_program(source)
    raise SystemExit(
        f"unknown target {target!r}: expected one of {', '.join(ALL_APPS)} "
        f"or a .dml script path"
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    try:
        program = _resolve_plan_target(args, args.app)
    except ProgramError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    if args.show_rewrites:
        args.optimize = True  # rewrites only exist on optimized plans
    session = _session(args)
    plans = _segment_plans(session, program, args.app)
    if args.dot:
        for label, plan in plans:
            print(plan_to_dot(plan, title=f"DMac plan: {label}"))
    elif args.format == "json":
        documents = [
            {
                "target": label,
                "optimized": args.optimize,
                "predicted_bytes": plan.predicted_bytes,
                "num_stages": plan.num_stages,
                "outputs": {k: str(v) for k, v in plan.outputs.items()},
                "cache_pins": [str(i) for i in getattr(plan, "cache_pins", ())],
                "rewrites": [
                    {"pass": r.pass_name, "description": r.description}
                    for r in getattr(plan, "rewrites", ())
                ],
                "steps": [
                    {"stage": step.stage, "communicates": step.communicates,
                     "description": str(step)}
                    for step in plan.steps
                ],
            }
            for label, plan in plans
        ]
        if len(documents) == 1:
            print(json.dumps(documents[0], indent=2))
        else:
            print(json.dumps(
                {"target": args.app, "staged": True, "segments": documents},
                indent=2,
            ))
    else:
        for label, plan in plans:
            print(f"# {label}")
            print(format_statistics(explain(plan, args.workers)))
            print(plan.describe())
            if args.show_rewrites:
                rewrites = getattr(plan, "rewrites", ())
                print(f"\n# applied rewrites ({len(rewrites)})")
                for rewrite in rewrites:
                    print(rewrite.format_human())
                pins = getattr(plan, "cache_pins", ())
                if pins:
                    print("# cache pins: " + ", ".join(str(i) for i in pins))
    return EXIT_OK


def _cmd_stages(args: argparse.Namespace) -> int:
    try:
        program = _resolve_plan_target(args, args.app)
    except ProgramError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    session = _session(args)
    if isinstance(program, StagedProgram):
        graphs = [
            (f"{args.app} [{label}]", session.stage_graph(segment))
            for label, segment in program.segments()
        ]
    else:
        graphs = [(args.app, session.stage_graph(program))]
    if args.format == "json":
        if len(graphs) == 1:
            print(json.dumps(
                {"target": args.app, **graphs[0][1].to_json_dict()}, indent=2
            ))
        else:
            print(json.dumps(
                {
                    "target": args.app,
                    "staged": True,
                    "segments": [
                        {"segment": label, **graph.to_json_dict()}
                        for label, graph in graphs
                    ],
                },
                indent=2,
            ))
    else:
        for label, graph in graphs:
            print(f"# {label}")
            print(graph.describe())
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintContext,
        format_selftest,
        lint_path,
        lint_plan,
        plan_for,
        run_selftest,
    )

    if args.selftest:
        results = run_selftest()
        print(format_selftest(results))
        return EXIT_OK if all(r.passed for r in results) else EXIT_LINT_ERRORS
    if args.target is None:
        print("lint: a target (app name or script path) is required "
              "unless --selftest is given", file=sys.stderr)
        return EXIT_PARSE_ERROR
    context = LintContext(
        num_workers=args.workers,
        threads_per_worker=args.threads,
        block_size=args.block_size,
        memory_limit_bytes=args.memory_limit,
    )
    suppress = tuple(args.suppress or ())
    try:
        if args.target in ALL_APPS:
            args.app = args.target
            program, __, ___ = _workload(args)
            segments = (
                program.segments()
                if isinstance(program, StagedProgram)
                else ((None, program),)
            )
            reports = []
            for label, segment in segments:
                plan = plan_for(segment, context)
                if args.optimize:
                    from repro.planopt import optimize_plan

                    plan = optimize_plan(plan, num_workers=args.workers)
                reports.append((label, lint_plan(plan, context, suppress)))
        elif os.path.exists(args.target):
            reports = [(None, lint_path(args.target, context, suppress))]
        else:
            print(
                f"unknown lint target {args.target!r}: expected one of "
                f"{', '.join(ALL_APPS)} or an existing .dml/.py file",
                file=sys.stderr,
            )
            return EXIT_PARSE_ERROR
    except ProgramError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    except ValueError as exc:  # e.g. unknown rule id in --suppress
        print(f"lint: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    if args.format == "json":
        if len(reports) == 1:
            print(reports[0][1].to_json_string())
        else:
            print(json.dumps(
                {
                    "target": args.target,
                    "staged": True,
                    "segments": [
                        {"segment": label,
                         "report": json.loads(report.to_json_string())}
                        for label, report in reports
                    ],
                },
                indent=2,
            ))
    else:
        for label, report in reports:
            if label is not None:
                print(f"# {args.target} [{label}]")
            print(report.format_human())
    failed = any(report.has_errors for __, report in reports)
    return EXIT_LINT_ERRORS if failed else EXIT_OK


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.errors import TranslationValidationError
    from repro.verify import verify_plan

    try:
        program = _resolve_plan_target(args, args.target)
    except ProgramError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    chaos = None
    if args.faults:
        from repro.errors import FaultSpecError
        from repro.faults import ChaosEngine, parse_fault_spec

        try:
            clauses = parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            print(f"fault spec error: {exc}", file=sys.stderr)
            return EXIT_PARSE_ERROR
        chaos = ChaosEngine(args.seed, clauses)
        args.execute = True  # a fault spec only matters on a real run
    session = _session(args)
    print(f"verifying {args.target} on {args.workers} workers ...", file=sys.stderr)
    try:
        plans = _segment_plans(session, program, args.target)
    except TranslationValidationError as exc:
        print(f"translation validation failed: {exc}", file=sys.stderr)
        return EXIT_LINT_ERRORS
    reports = [
        (label, verify_plan(
            plan,
            num_workers=session.config.num_workers,
            threads_per_worker=args.threads,
            block_size=args.block_size,
            target=label,
        ))
        for label, plan in plans
    ]
    execution = None
    if args.execute:
        if args.target not in ALL_APPS:
            print("verify --execute: script targets have no bundled inputs; "
                  f"use one of {', '.join(ALL_APPS)}", file=sys.stderr)
            return EXIT_PARSE_ERROR
        __, inputs, ___ = _workload(args)  # same seed -> same data
        result = _session(args).run(program, inputs, chaos=chaos)
        observed = result.peak_memory_bytes
        predicted = result.predicted_peak_memory_bytes
        execution = {
            "observed_peak_bytes": observed,
            "predicted_peak_bytes": predicted,
            "faults": args.faults,
            "sound": predicted is not None and observed <= predicted,
        }
        if isinstance(program, StagedProgram):
            execution["segments"] = result.num_segments
    if args.format == "json":
        if len(reports) == 1:
            document = reports[0][1].to_json_dict()
        else:
            document = {
                "target": args.target,
                "staged": True,
                "segments": [report.to_json_dict() for __, report in reports],
            }
        if execution is not None:
            document["execution"] = execution
        print(json.dumps(document, indent=2))
    else:
        for __, report in reports:
            print(report.format_human())
        if execution is not None:
            verdict = "within" if execution["sound"] else "EXCEEDS"
            print(f"[execute] observed per-worker peak "
                  f"{execution['observed_peak_bytes']} bytes {verdict} the "
                  f"static bound {execution['predicted_peak_bytes']}"
                  + (f" (faults: {args.faults})" if args.faults else ""))
    failed = any(report.has_errors for __, report in reports) or (
        execution is not None and not execution["sound"]
    )
    return EXIT_LINT_ERRORS if failed else EXIT_OK


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.config import RecoveryConfig
    from repro.errors import FaultSpecError
    from repro.faults import (
        ChaosEngine,
        build_chaos_report,
        format_chaos_report,
        parse_fault_spec,
    )

    try:
        clauses = parse_fault_spec(args.faults)
    except FaultSpecError as exc:
        print(f"fault spec error: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    program, inputs, __ = _workload(args)
    config = ClusterConfig(
        num_workers=args.workers,
        threads_per_worker=args.threads,
        block_size=args.block_size,
        recovery=RecoveryConfig(
            max_stage_attempts=args.retries,
            checkpoint_every=args.checkpoint_every,
            speculation_multiplier=args.speculation,
        ),
        backend=getattr(args, "backend", "simulated"),
        elastic=getattr(args, "elastic", None),
        elastic_seed=getattr(args, "elastic_seed", 0),
    )
    # Two fresh sessions: the clean reference and the faulted run share
    # nothing but the program, the inputs and the config.
    clean = DMacSession(config).run(program, inputs)
    engine = ChaosEngine(args.seed, clauses)
    faulted = DMacSession(config).run(program, inputs, chaos=engine)
    results_match = set(clean.matrices) == set(faulted.matrices) and all(
        np.allclose(clean.matrices[name], faulted.matrices[name], atol=1e-9)
        for name in clean.matrices
    )
    report = build_chaos_report(
        args.app, args.seed, args.faults, clean, faulted, results_match
    )
    if args.format == "json":
        print(json.dumps(report, sort_keys=True))
    else:
        print(format_chaos_report(report))
    return EXIT_OK if results_match else EXIT_LINT_ERRORS


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import (
        TraceCollector,
        assert_reconciled,
        format_summary,
        to_chrome_trace,
        to_json_dict,
    )

    chaos = None
    if args.faults:
        from repro.errors import FaultSpecError
        from repro.faults import ChaosEngine, parse_fault_spec

        try:
            clauses = parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            print(f"fault spec error: {exc}", file=sys.stderr)
            return EXIT_PARSE_ERROR
        chaos = ChaosEngine(args.seed, clauses)
    program, inputs, __ = _workload(args)
    session = _session(args)
    print(f"tracing {args.app} on {args.workers} workers ...", file=sys.stderr)
    # The cross-check: trace-summed bytes/seconds must reconcile exactly
    # with the CommunicationLedger and the SimulatedClock.
    if isinstance(program, StagedProgram):
        session.trace = True  # one collector per segment
        result = session.run(program, inputs, chaos=chaos)
        for record in result.segments:
            assert_reconciled(record.result.tracing)
        print(f"trace reconciled against ledger and clock on "
              f"{len(result.segments)} segment(s); exporting the final one",
              file=sys.stderr)
        tracer = result.tracing
    else:
        tracer = TraceCollector()
        session.run(program, inputs, chaos=chaos, tracer=tracer)
        assert_reconciled(tracer)
        print("trace reconciled against ledger and clock", file=sys.stderr)
    if args.format == "chrome":
        payload = to_chrome_trace(tracer)
    elif args.format == "json":
        payload = json.dumps(to_json_dict(tracer), indent=2, sort_keys=True)
    else:
        payload = format_summary(tracer)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(payload)
    return EXIT_OK


def _parse_tenant_flag(text: str):
    """``name[:weight]`` -> TenantSpec (the CLI's minimal tenant syntax;
    quotas and queue caps come from batch scripts)."""
    from repro.serve import TenantSpec

    name, _, weight = text.partition(":")
    return TenantSpec(name, weight=float(weight) if weight else 1.0)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.serve import (
        MatrixService,
        ServiceConfig,
        parse_batch,
        render_report,
    )

    specs = []
    if args.script:
        try:
            with open(args.script, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"serve: cannot read script {args.script}: {exc}",
                  file=sys.stderr)
            return EXIT_PARSE_ERROR
        if args.seed is not None:
            data["seed"] = args.seed
        try:
            config, specs = parse_batch(data)
        except ReproError as exc:
            print(f"serve: bad batch script: {exc}", file=sys.stderr)
            return EXIT_PARSE_ERROR
    else:
        if not args.tenant:
            print("serve: give --script batch.json and/or at least one "
                  "--tenant name[:weight]", file=sys.stderr)
            return EXIT_PARSE_ERROR
        try:
            config = ServiceConfig(
                tenants=tuple(_parse_tenant_flag(t) for t in args.tenant),
                cluster=ClusterConfig(
                    num_workers=args.workers,
                    threads_per_worker=args.threads,
                    block_size=args.block_size,
                    backend=args.backend,
                    elastic=args.elastic,
                    elastic_seed=args.elastic_seed,
                ),
                plan_cache_entries=args.cache_entries,
                optimize=args.optimize,
                seed=args.seed if args.seed is not None else 0,
            )
        except (ReproError, ValueError) as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return EXIT_PARSE_ERROR
    service = MatrixService(config)
    try:
        for spec in specs:
            service.submit(spec)
        service.drain()
    except ReproError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    if args.socket:
        from repro.serve.daemon import serve_forever

        print(f"repro serve: listening on {args.socket} "
              f"({len(config.tenants)} tenant(s))", file=sys.stderr)
        serve_forever(service, args.socket)
        print("repro serve: shut down", file=sys.stderr)
        return EXIT_OK
    text = render_report(service.report())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    failed = any(record.state == "failed" for record in service.records)
    return EXIT_LINT_ERRORS if failed else EXIT_OK


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import AdmissionError, ServiceError
    from repro.serve import RemoteClient

    client = RemoteClient(args.socket, timeout=args.timeout)
    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            print(f"submit: --params is not valid JSON: {exc}", file=sys.stderr)
            return EXIT_PARSE_ERROR
    exit_code = EXIT_OK
    try:
        if args.app:
            if not args.tenant:
                print("submit: --tenant is required to submit a job",
                      file=sys.stderr)
                return EXIT_PARSE_ERROR
            try:
                job = client.submit(
                    args.tenant, args.app,
                    params=params, priority=args.priority, label=args.label,
                )
                print(json.dumps(job, indent=2, sort_keys=True))
            except AdmissionError as exc:
                print(f"rejected ({exc.reason}): {exc}", file=sys.stderr)
                exit_code = EXIT_LINT_ERRORS
        if args.drain:
            finished = client.drain()
            print(f"drained {len(finished)} job(s)", file=sys.stderr)
        if args.report:
            from repro.serve import render_report

            sys.stdout.write(render_report(client.report()))
        if args.shutdown:
            client.shutdown()
    except (ServiceError, OSError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    return exit_code


def _add_app_args(parser: argparse.ArgumentParser, positional: bool = True) -> None:
    if positional:
        parser.add_argument("app", choices=list(ALL_APPS))
    parser.add_argument("--scale", type=float, default=3e-3,
                        help="dataset scale factor (gnmf/pagerank/cf/svd)")
    parser.add_argument("--graph", choices=sorted(PAPER_GRAPHS), default="soc-pokec",
                        help="graph surrogate for pagerank")
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--factors", type=int, default=16, help="GNMF rank")
    parser.add_argument("--rank", type=int, default=10, help="SVD rank")
    parser.add_argument("--rows", type=int, default=2000,
                        help="examples / matrix dimension "
                             "(linreg/logreg/jacobi/ridge/powiter)")
    parser.add_argument("--features", type=int, default=80,
                        help="regression features (linreg/logreg/ridge)")
    parser.add_argument("--sparsity", type=float, default=0.1,
                        help="design-matrix sparsity (linreg/logreg/ridge)")
    parser.add_argument("--eps", type=float, default=1e-3,
                        help="powiter convergence threshold "
                             "(stop when ||Ax - lambda x|| < eps)")
    parser.add_argument("--ridge", type=float, default=1e-3,
                        help="L2 regulariser weight for the ridge app")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DMac reproduction: dependency-aware distributed matrix computation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute an application on the simulated cluster")
    _add_app_args(run)
    _add_cluster_args(run)
    run.add_argument("--format", choices=["text", "json"], default="text",
                     help="report format (default: text); json includes "
                          "per-link shuffle traffic and cache statistics")
    run.add_argument("--trace", action="store_true",
                     help="record a structured trace of the run, reconcile "
                          "it against the ledger/clock, and append a "
                          "timeline (text) or trace metrics (json)")
    run.set_defaults(func=_cmd_run)

    plan = sub.add_parser("plan", help="print the DMac plan for an application")
    plan.add_argument("app", metavar="app|script.dml",
                      help=f"one of {', '.join(ALL_APPS)}, or a .dml script path")
    _add_app_args(plan, positional=False)
    _add_cluster_args(plan)
    plan.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    plan.add_argument("--format", choices=["text", "json"], default="text",
                      help="report format (default: text)")
    plan.add_argument("--show-rewrites", action="store_true",
                      help="optimize the plan and list the applied "
                           "repro.planopt rewrites")
    plan.set_defaults(func=_cmd_plan)

    stages = sub.add_parser(
        "stages", help="print the runtime's stage graph for an application"
    )
    stages.add_argument("app", metavar="app|script.dml",
                        help=f"one of {', '.join(ALL_APPS)}, or a .dml script path")
    _add_app_args(stages, positional=False)
    _add_cluster_args(stages)
    stages.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    stages.set_defaults(func=_cmd_stages)

    lint = sub.add_parser(
        "lint", help="statically analyse a program's plan without executing it"
    )
    lint.add_argument("target", nargs="?", metavar="app|script.dml|builder.py",
                      help=f"one of {', '.join(ALL_APPS)}, or a .dml/.py file")
    _add_app_args(lint, positional=False)
    _add_cluster_args(lint)
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="report format (default: text)")
    lint.add_argument("--memory-limit", type=int, default=None,
                      help="per-worker memory budget in bytes (enables DM106)")
    lint.add_argument("--suppress", action="append", metavar="RULE",
                      help="suppress a rule id (repeatable), e.g. DM202")
    lint.add_argument("--selftest", action="store_true",
                      help="corrupt a reference plan once per rule and "
                           "verify each rule fires")
    lint.set_defaults(func=_cmd_lint)

    verify = sub.add_parser(
        "verify",
        help="statically verify a plan: optimizer rewrite certificates, "
             "ordering hazards, and a sound per-worker peak-memory bound",
    )
    verify.add_argument("target", metavar="app|script.dml",
                        help=f"one of {', '.join(ALL_APPS)}, or a .dml script path")
    _add_app_args(verify, positional=False)
    _add_cluster_args(verify)
    verify.set_defaults(optimize=True)  # certificates exist on optimized plans
    verify.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    verify.add_argument("--execute", action="store_true",
                        help="also run the application and cross-check the "
                             "observed per-worker peak against the static bound")
    verify.add_argument("--faults", default=None,
                        help="fault spec (see `repro chaos`) for the --execute "
                             "cross-check run; implies --execute")
    verify.set_defaults(func=_cmd_verify)

    chaos = sub.add_parser(
        "chaos",
        help="run an application clean and faulted, report recovery overhead",
    )
    _add_app_args(chaos)
    _add_cluster_args(chaos)
    chaos.add_argument(
        "--faults", required=True,
        help="fault spec, e.g. 'crash:stage=2;flaky:at=shuffle,p=0.5' "
             "(kinds: crash, lostblock, flaky, straggler; see repro.faults.spec)",
    )
    chaos.add_argument("--format", choices=["text", "json"], default="text",
                       help="report format (default: text)")
    chaos.add_argument("--retries", type=int, default=3,
                       help="max attempts per stage island (default: 3)")
    chaos.add_argument("--checkpoint-every", type=int, default=0,
                       help="checkpoint loop-carried instances every k "
                            "iterations (0 = off)")
    chaos.add_argument("--speculation", type=float, default=0.0,
                       help="launch a speculative copy of a straggler at N x "
                            "the median sibling duration (0 = off)")
    chaos.set_defaults(func=_cmd_chaos)

    trace = sub.add_parser(
        "trace",
        help="run an application with structured tracing and export the "
             "trace (Chrome/Perfetto JSON, raw JSON, or a terminal timeline)",
    )
    _add_app_args(trace)
    _add_cluster_args(trace)
    trace.add_argument("--format", choices=["json", "chrome", "summary"],
                       default="summary",
                       help="export format (default: summary); chrome emits "
                            "Chrome trace-event JSON loadable in Perfetto")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write the export to FILE instead of stdout")
    trace.add_argument("--faults", default=None,
                       help="optional fault spec (see `repro chaos`); the "
                            "traced run then executes under a seeded "
                            "ChaosEngine and records fault/recovery events")
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant matrix service: execute a batch script "
             "and print its deterministic report, and/or listen on a unix "
             "socket for repro submit",
    )
    serve.add_argument("--script", default=None, metavar="BATCH.json",
                       help="batch script (tenants + jobs, see repro.serve.batch)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="after the script (if any), serve the newline-JSON "
                            "protocol on this unix socket until shutdown")
    serve.add_argument("--tenant", action="append", metavar="NAME[:WEIGHT]",
                       help="declare a tenant (repeatable; scriptless mode)")
    serve.add_argument("--seed", type=int, default=None,
                       help="service seed (overrides the script's)")
    serve.add_argument("--cache-entries", type=int, default=128,
                       help="plan cache capacity; 0 disables the cache")
    serve.add_argument("--out", default=None, metavar="FILE",
                       help="write the report to FILE instead of stdout")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--threads", type=int, default=4)
    serve.add_argument("--block-size", type=int, default=None)
    serve.add_argument("--backend", choices=["simulated", "elastic"],
                       default="simulated",
                       help="execution substrate for scriptless mode "
                            "(see `repro run --backend`)")
    serve.add_argument("--elastic", default=None, metavar="SPEC",
                       help="membership timeline for --backend elastic")
    serve.add_argument("--elastic-seed", type=int, default=0,
                       help="elastic pool rendezvous seed")
    serve.add_argument("--optimize", action=argparse.BooleanOptionalAction,
                       default=False)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a job to (and control) a running repro serve daemon",
    )
    submit.add_argument("app", nargs="?", choices=list(ALL_APPS),
                        help="registry application to submit")
    submit.add_argument("--socket", required=True, metavar="PATH",
                        help="unix socket of the repro serve daemon")
    submit.add_argument("--tenant", default=None, help="submitting tenant")
    submit.add_argument("--params", default=None, metavar="JSON",
                        help='workload params, e.g. \'{"scale": 1e-3}\'')
    submit.add_argument("--priority", type=int, default=0,
                        help="within-tenant priority (higher first)")
    submit.add_argument("--label", default=None, help="display label")
    submit.add_argument("--drain", action="store_true",
                        help="run all queued jobs after submitting")
    submit.add_argument("--report", action="store_true",
                        help="print the service report")
    submit.add_argument("--shutdown", action="store_true",
                        help="stop the daemon")
    submit.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout in seconds")
    submit.set_defaults(func=_cmd_submit)

    script = sub.add_parser("script", help="run a DML-style script file")
    script.add_argument("path", help="script file (see repro.lang.dml)")
    script.add_argument("--bind", action="append", metavar="NAME=FILE",
                        help="bind a script load() to a .npy / repro .npz file")
    _add_cluster_args(script)
    script.set_defaults(func=_cmd_script)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

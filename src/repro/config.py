"""Cluster and engine configuration objects.

The paper's experiments run on clusters of 4--20 physical nodes with eight
local threads each (Section 6.1).  :class:`ClusterConfig` captures exactly
the knobs the paper varies: the number of workers ``K``, the local
parallelism ``L``, the block size, the local aggregation mode (In-Place vs
Buffer, Section 5.3) and the parameters of the simulated clock used to turn
metered bytes/flops into an execution-time estimate.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ClusterError


@dataclasses.dataclass(frozen=True)
class ClockConfig:
    """Parameters of the simulated clock.

    The defaults model commodity 2015-era hardware: a gigabit-class network
    and a few Gflop/s of effective per-thread dense throughput.  Absolute
    values only scale the reported seconds; the DMac-vs-baseline *ratios*
    depend on bytes and flops, which are measured, not modelled.
    """

    network_bytes_per_sec: float = 125e6  # ~1 Gbit/s effective
    dense_flops_per_sec: float = 2e9  # per thread
    sparse_flops_per_sec: float = 5e8  # per thread; irregular access is slower
    disk_bytes_per_sec: float = 100e6
    latency_per_stage_sec: float = 0.1  # scheduling + task launch overhead
    #: Optional per-worker relative speeds (1.0 = nominal, 0.5 = half speed).
    #: Workers beyond the tuple's length run at nominal speed.  Models
    #: heterogeneous clusters / stragglers: stage time is the slowest
    #: worker's, so one slow node drags whole stages.
    worker_speed_factors: tuple[float, ...] | None = None

    def worker_speed(self, worker: int) -> float:
        """Relative speed of one worker (nominal 1.0)."""
        if self.worker_speed_factors is None or worker >= len(self.worker_speed_factors):
            return 1.0
        factor = self.worker_speed_factors[worker]
        if factor <= 0:
            raise ValueError(f"worker speed factors must be positive, got {factor}")
        return factor


@dataclasses.dataclass(frozen=True)
class RecoveryConfig:
    """Fault-tolerance knobs of the runtime (see :mod:`repro.faults`).

    The defaults are inert for clean runs: retries only trigger on
    *injected* transient faults, checkpointing and speculation are off, so
    with no :class:`~repro.faults.ChaosEngine` installed (or with one that
    never fires) ledgered bytes, chosen strategies and numeric results are
    bit-identical to a run without this config.

    Attributes:
        max_stage_attempts: how many times a stage node may run before its
            failure is final (retries happen only for retryable injected
            faults; genuine errors always fail fast).
        backoff_base_sec: simulated backoff before the second attempt;
            doubles per retry (capped), charged to the node's duration.
        backoff_cap_sec: upper bound on a single backoff interval.
        checkpoint_every: persist loop-carried instances (SSA versions
            ``X@v``) every ``k`` iterations so lineage recovery replays from
            the last checkpoint instead of iteration 0; ``0`` disables.
        speculation_multiplier: launch a speculative copy of a stage node
            once it exceeds ``N x`` the median duration of its same-stage
            siblings (first finisher wins, the loser's remaining time is
            not charged); ``0`` disables.
    """

    max_stage_attempts: int = 3
    backoff_base_sec: float = 1.0
    backoff_cap_sec: float = 30.0
    checkpoint_every: int = 0
    speculation_multiplier: float = 0.0

    def __post_init__(self) -> None:
        if self.max_stage_attempts < 1:
            raise ClusterError(
                f"max_stage_attempts must be >= 1, got {self.max_stage_attempts}"
            )
        if self.backoff_base_sec < 0 or self.backoff_cap_sec < 0:
            raise ClusterError("backoff seconds must be >= 0")
        if self.checkpoint_every < 0:
            raise ClusterError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.speculation_multiplier < 0:
            raise ClusterError(
                f"speculation_multiplier must be >= 0, "
                f"got {self.speculation_multiplier}"
            )


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Static description of the (simulated) cluster.

    Attributes:
        num_workers: number of worker nodes ``K`` (paper: 4 default, up to 20).
        threads_per_worker: local parallelism ``L`` (paper: 8).
        block_size: rows/columns per square block, or ``None`` to let the
            engine choose via Equation 3 of the paper.
        inplace: use the In-Place local aggregation strategy when ``True``
            (the DMac default), the Buffer strategy otherwise.
        memory_limit_bytes: per-worker simulated memory budget; ``None``
            disables the check.  Exceeding it raises
            :class:`repro.errors.MemoryLimitExceeded`, which reproduces the
            paper's "Buffer cannot run Wikipedia in 48 GB" observation.
        clock: simulated clock parameters.
        max_concurrent_stages: how many independent stage-graph nodes the
            runtime may dispatch at once; ``None`` uses the scheduler
            default, ``1`` forces the historical serial order.
        recovery: fault-tolerance parameters (retry/backoff, checkpointing,
            speculative re-execution) consumed when a
            :class:`~repro.faults.ChaosEngine` is installed.
        resource_event_log_limit: cap on the ResourceManager's lifecycle
            event log (long iterative runs with retries would otherwise
            grow it without bound); ``None`` keeps it unbounded.
        cache_limit_bytes: per-worker budget for instances the optimizer
            pinned in the runtime BlockCache.  ``None`` falls back to
            ``memory_limit_bytes`` (and to "unbounded" when that is also
            ``None``).  Exceeding it never fails a run: the least recently
            used pinned instance is spilled and, if read again, recomputed
            through lineage.
        batched_matmul: group same-shape dense block products within a
            stage into one stacked BLAS dispatch (:mod:`repro.kernels`).
            Byte-identical to the serial path and on by default; disabled
            automatically under a ``memory_limit_bytes`` budget, whose
            experiments depend on the serial path's exact transient
            accounting.
        strassen: opt-in Strassen kernel for dense block products at or
            above ``strassen_min_size`` in every dimension.  Faster above
            the crossover but *not* bitwise-stable (results agree with the
            naive kernel only to relative tolerance), hence off by default.
        strassen_min_size: dense-size crossover below which block products
            always use the naive BLAS kernel.
        backend: execution substrate -- ``"simulated"`` (the static
            cluster) or ``"elastic"`` (the :mod:`repro.elastic` worker
            pool, whose members may join and leave between stages).
        elastic: membership-timeline spec for the elastic backend (the
            ``--elastic`` grammar, e.g. ``"join@2; leave@5"``); ``None``
            or ``""`` runs the elastic pool with static membership.
            Only meaningful with ``backend="elastic"``.
        elastic_seed: seed of the pool's rendezvous slot assignment (same
            seed + same timeline = byte-identical runs).
    """

    num_workers: int = 4
    threads_per_worker: int = 8
    block_size: int | None = None
    inplace: bool = True
    memory_limit_bytes: int | None = None
    clock: ClockConfig = dataclasses.field(default_factory=ClockConfig)
    max_concurrent_stages: int | None = None
    recovery: RecoveryConfig = dataclasses.field(default_factory=RecoveryConfig)
    resource_event_log_limit: int | None = 65536
    cache_limit_bytes: int | None = None
    batched_matmul: bool = True
    strassen: bool = False
    strassen_min_size: int = 128
    backend: str = "simulated"
    elastic: str | None = None
    elastic_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ClusterError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.threads_per_worker < 1:
            raise ClusterError(
                f"threads_per_worker must be >= 1, got {self.threads_per_worker}"
            )
        if self.block_size is not None and self.block_size < 1:
            raise ClusterError(f"block_size must be >= 1, got {self.block_size}")
        if self.max_concurrent_stages is not None and self.max_concurrent_stages < 1:
            raise ClusterError(
                f"max_concurrent_stages must be >= 1, got {self.max_concurrent_stages}"
            )
        if (
            self.resource_event_log_limit is not None
            and self.resource_event_log_limit < 1
        ):
            raise ClusterError(
                f"resource_event_log_limit must be >= 1 or None, "
                f"got {self.resource_event_log_limit}"
            )
        if self.cache_limit_bytes is not None and self.cache_limit_bytes < 1:
            raise ClusterError(
                f"cache_limit_bytes must be >= 1 or None, "
                f"got {self.cache_limit_bytes}"
            )
        if self.strassen_min_size < 2:
            raise ClusterError(
                f"strassen_min_size must be >= 2, got {self.strassen_min_size}"
            )
        if self.backend not in ("simulated", "elastic"):
            raise ClusterError(
                f"backend must be 'simulated' or 'elastic', got {self.backend!r}"
            )
        if self.elastic and self.backend != "elastic":
            raise ClusterError(
                "an elastic membership timeline requires backend='elastic'"
            )

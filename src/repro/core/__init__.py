"""DMac's core: dependency analysis, cost model, plan generation, execution.

This package is the paper's contribution: the dependency classifier
(Table 2), the worst-case size estimator (Section 5.1), the strategy
catalog (Figure 2), the dependency-oriented cost model (Section 4.1), the
plan generator with its two heuristics (Algorithm 1, Section 4.2), the
stage scheduler (Section 5.2) and the plan executor.
"""

from repro.core.analysis import PlanStatistics, explain, format_statistics
from repro.core.cost import dependency_cost, output_cost
from repro.core.dependency import (
    BROADCAST_DEPENDENCIES,
    COMMUNICATION_DEPENDENCIES,
    DependencyType,
    classify,
    is_communication,
    lowering_chain,
)
from repro.core.estimator import SizeEstimator
from repro.core.events import InputEvent, OutputEvent, precedes
from repro.core.executor import ExecutionResult, PlanExecutor, StepTrace, evaluate_scalar
from repro.core.optimal import free_closure, optimal_cost, paper_cost_of_plan
from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    ScalarComputeStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages, validate_stage_invariant
from repro.core.viz import plan_to_dot
from repro.core.strategies import (
    AGGREGATE_STRATEGIES,
    CELLWISE_STRATEGIES,
    CPMM,
    MATMUL_STRATEGIES,
    RMM1,
    RMM2,
    SCALAR_STRATEGIES,
    SOURCE_STRATEGY,
    Strategy,
    candidate_strategies,
)

__all__ = [
    "AGGREGATE_STRATEGIES",
    "AggregateStep",
    "BROADCAST_DEPENDENCIES",
    "CELLWISE_STRATEGIES",
    "COMMUNICATION_DEPENDENCIES",
    "CPMM",
    "CellwiseStep",
    "DMacPlanner",
    "DependencyType",
    "ExecutionResult",
    "ExtendedStep",
    "InputEvent",
    "MATMUL_STRATEGIES",
    "MatMulStep",
    "MatrixInstance",
    "OutputEvent",
    "Plan",
    "PlanStatistics",
    "RowAggStep",
    "PlanExecutor",
    "RMM1",
    "RMM2",
    "SCALAR_STRATEGIES",
    "SOURCE_STRATEGY",
    "ScalarComputeStep",
    "ScalarMatrixStep",
    "SizeEstimator",
    "SourceStep",
    "StepTrace",
    "Step",
    "StepTrace",
    "Strategy",
    "UnaryStep",
    "candidate_strategies",
    "classify",
    "dependency_cost",
    "evaluate_scalar",
    "explain",
    "format_statistics",
    "free_closure",
    "is_communication",
    "lowering_chain",
    "optimal_cost",
    "output_cost",
    "paper_cost_of_plan",
    "plan_to_dot",
    "precedes",
    "schedule_stages",
    "validate_stage_invariant",
]

"""Plan analysis: structured statistics about a generated plan.

``explain`` answers the questions the paper's evaluation keeps asking of a
plan -- how much does each stage communicate, which strategies were chosen,
how often does each matrix cross the network -- as data rather than prose,
so tests, benchmarks and the CLI share one implementation.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict

from repro.core.estimator import SizeEstimator
from repro.core.plan import (
    ExtendedStep,
    MatMulStep,
    Plan,
    RowAggStep,
)
from repro.core.stages import schedule_stages


@dataclasses.dataclass(frozen=True)
class PlanStatistics:
    """Aggregate facts about one execution plan."""

    steps: int
    stages: int
    predicted_bytes: int
    comm_steps: int
    predicted_bytes_by_stage: dict[int, int]
    strategy_counts: dict[str, int]  # rmm1/rmm2/cpmm/... usage
    extended_counts: dict[str, int]  # partition/broadcast/transpose/extract
    matrix_moves: dict[str, int]  # logical matrix -> communicating steps

    @property
    def free_dependency_ratio(self) -> float:
        """Fraction of extended operators that were communication-free --
        the paper's 'exploited dependencies'."""
        total = sum(self.extended_counts.values())
        if total == 0:
            return 1.0
        paid = self.extended_counts.get("partition", 0) + self.extended_counts.get(
            "broadcast", 0
        )
        return 1.0 - paid / total


def explain(plan: Plan, num_workers: int) -> PlanStatistics:
    """Compute :class:`PlanStatistics` for a plan (stages are scheduled on
    demand)."""
    if plan.num_stages == 0:
        schedule_stages(plan)
    estimator = SizeEstimator(plan.program)

    by_stage: dict[int, int] = defaultdict(int)
    strategies: Counter = Counter()
    extended: Counter = Counter()
    moves: Counter = Counter()
    comm_steps = 0

    for step in plan.steps:
        if isinstance(step, ExtendedStep):
            extended[step.kind] += 1
            if step.communicates:
                comm_steps += 1
                moves[step.source.name] += 1
                nbytes = estimator.nbytes(step.source.name)
                by_stage[step.stage] += (
                    (num_workers - 1) * nbytes if step.kind == "broadcast" else nbytes
                )
        elif isinstance(step, MatMulStep):
            strategies[step.strategy] += 1
            if step.communicates:
                comm_steps += 1
                moves[step.output.name] += 1
                by_stage[step.stage] += (num_workers - 1) * estimator.nbytes(
                    step.output.name
                )
        elif isinstance(step, RowAggStep):
            strategies[step.strategy] += 1
            if step.communicates:
                comm_steps += 1
                moves[step.output.name] += 1
                by_stage[step.stage] += (num_workers - 1) * estimator.nbytes(
                    step.output.name
                )

    return PlanStatistics(
        steps=len(plan.steps),
        stages=plan.num_stages,
        predicted_bytes=plan.predicted_bytes,
        comm_steps=comm_steps,
        predicted_bytes_by_stage=dict(by_stage),
        strategy_counts=dict(strategies),
        extended_counts=dict(extended),
        matrix_moves=dict(moves),
    )


def format_statistics(stats: PlanStatistics) -> str:
    """Human-readable rendering of plan statistics (used by the CLI)."""
    lines = [
        f"steps: {stats.steps}   stages: {stats.stages}   "
        f"communicating steps: {stats.comm_steps}",
        f"predicted communication: {stats.predicted_bytes / 1e6:.3f} MB",
        f"free-dependency ratio: {stats.free_dependency_ratio:.0%}",
    ]
    if stats.strategy_counts:
        chosen = ", ".join(
            f"{name} x{count}" for name, count in sorted(stats.strategy_counts.items())
        )
        lines.append(f"strategies: {chosen}")
    if stats.extended_counts:
        ops = ", ".join(
            f"{name} x{count}" for name, count in sorted(stats.extended_counts.items())
        )
        lines.append(f"extended operators: {ops}")
    if stats.predicted_bytes_by_stage:
        per_stage = ", ".join(
            f"stage {stage}: {nbytes / 1e3:.1f} KB"
            for stage, nbytes in sorted(stats.predicted_bytes_by_stage.items())
        )
        lines.append(f"communication by stage: {per_stage}")
    if stats.matrix_moves:
        movers = ", ".join(
            f"{name} x{count}" for name, count in sorted(stats.matrix_moves.items())
        )
        lines.append(f"matrices crossing the network: {movers}")
    return "\n".join(lines)

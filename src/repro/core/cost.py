"""The dependency-oriented cost model (paper Section 4.1).

For an input event ``In(A, p_i, op_i)`` depending on an output event
already in the OutputSet, the communication it induces is determined by
the dependency type alone::

    Cost(In) = 0          non-communication dependency        (Situation 1)
    Cost(In) = |A|        Partition / Transpose-Partition     (Situation 2)
    Cost(In) = N * |A|    Broadcast / Transpose-Broadcast     (Situation 3)

The output event costs ``N x |C|`` for CPMM and nothing otherwise.  The
strategy chosen for an operator is the argmin of the summed input and
output event costs (Equation 1); ties are broken by catalog order, which
prefers replication-based multiplication over CPMM.
"""

from __future__ import annotations

from repro.core.dependency import (
    BROADCAST_DEPENDENCIES,
    DependencyType,
    is_communication,
)
from repro.core.strategies import Strategy


def dependency_cost(dependency: DependencyType, nbytes: int, num_workers: int) -> int:
    """Communication bytes induced by satisfying one input event."""
    if not is_communication(dependency):
        return 0
    if dependency in BROADCAST_DEPENDENCIES:
        return num_workers * nbytes
    return nbytes


def output_cost(strategy: Strategy, nbytes: int, num_workers: int) -> int:
    """Communication bytes induced by the strategy's output event."""
    if strategy.shuffles_output:
        return num_workers * nbytes
    return 0


def naive_matmul_flops(m: int, k: int, n: int) -> int:
    """Flops of the classical dense block product: ``2 m k n``."""
    return 2 * m * k * n


def strassen_matmul_flops(m: int, k: int, n: int, crossover: int) -> int:
    """Flops of the Strassen kernel on an ``m x k @ k x n`` dense product.

    Mirrors the exact recursion :func:`repro.kernels.strassen.strassen_matmul`
    performs (asymptotically ``O(n^2.807)``), so the flops the cost model
    charges equal the flops the engine records.
    """
    from repro.kernels.strassen import recursion_base, strassen_flops

    return strassen_flops(m, k, n, recursion_base(crossover))

"""Matrix-dependency classification: the paper's Table 2.

A matrix dependency relates an output event ``Out(A, p_i, op_i)`` to a
later input event ``In(B, p_j, op_j)`` with ``B = A`` or ``B = A^T``.
Considering the two schemes and whether the access is transposed, the 18
combinations collapse into eight dependency types, named after the matrix
process that satisfies them:

===================  ====================================  =============
type                 condition (``A=B`` / ``A=B^T``)       communication
===================  ====================================  =============
PARTITION            ``A=B``,   ``Oppose(p_i, p_j)``       yes
TRANSPOSE_PARTITION  ``A=B^T``, ``EqualRC(p_i, p_j)``      yes
BROADCAST            ``A=B``,   ``Contain(p_j, p_i)``      yes
TRANSPOSE_BROADCAST  ``A=B^T``, ``Contain(p_j, p_i)``      yes
REFERENCE            ``A=B``,   ``EqualRC`` or ``EqualB``  no
TRANSPOSE            ``A=B^T``, ``Oppose`` or ``EqualB``   no
EXTRACT              ``A=B``,   ``Contain(p_i, p_j)``      no
EXTRACT_TRANSPOSE    ``A=B^T``, ``Contain(p_i, p_j)``      no
===================  ====================================  =============

Each type also lowers to a canonical chain of *extended operators*
(paper Section 4.2.1): at most one free local step (``transpose`` /
``extract``) followed by at most one communicating step (``partition`` /
``broadcast``).  :func:`lowering_chain` returns that chain; the planner
emits it verbatim into the execution plan.
"""

from __future__ import annotations

import enum

from repro.errors import PlanError
from repro.matrix.schemes import Scheme, contain, equal_b, equal_rc, oppose


class DependencyType(enum.Enum):
    """The eight matrix-dependency types of Table 2."""

    PARTITION = "partition"
    TRANSPOSE_PARTITION = "transpose-partition"
    BROADCAST = "broadcast"
    TRANSPOSE_BROADCAST = "transpose-broadcast"
    REFERENCE = "reference"
    TRANSPOSE = "transpose"
    EXTRACT = "extract"
    EXTRACT_TRANSPOSE = "extract-transpose"


#: Dependencies that repartition or replicate data across workers.
COMMUNICATION_DEPENDENCIES = frozenset(
    {
        DependencyType.PARTITION,
        DependencyType.TRANSPOSE_PARTITION,
        DependencyType.BROADCAST,
        DependencyType.TRANSPOSE_BROADCAST,
    }
)

#: Dependencies whose broadcast step replicates to every node (cost N x |A|).
BROADCAST_DEPENDENCIES = frozenset(
    {DependencyType.BROADCAST, DependencyType.TRANSPOSE_BROADCAST}
)


def classify(
    out_scheme: Scheme,
    in_scheme: Scheme,
    transposed: bool,
) -> DependencyType:
    """Classify the dependency from ``Out(A, out_scheme)`` to an input that
    reads ``A`` (``transposed=False``) or ``A^T`` (``transposed=True``)
    under ``in_scheme``.  Total over all 18 combinations."""
    if not transposed:
        if oppose(out_scheme, in_scheme):
            return DependencyType.PARTITION
        if contain(in_scheme, out_scheme):
            return DependencyType.BROADCAST
        if equal_rc(out_scheme, in_scheme) or equal_b(out_scheme, in_scheme):
            return DependencyType.REFERENCE
        if contain(out_scheme, in_scheme):
            return DependencyType.EXTRACT
    else:
        if equal_rc(out_scheme, in_scheme):
            return DependencyType.TRANSPOSE_PARTITION
        if contain(in_scheme, out_scheme):
            return DependencyType.TRANSPOSE_BROADCAST
        if oppose(out_scheme, in_scheme) or equal_b(out_scheme, in_scheme):
            return DependencyType.TRANSPOSE
        if contain(out_scheme, in_scheme):
            return DependencyType.EXTRACT_TRANSPOSE
    raise PlanError(  # pragma: no cover - the conditions above are total
        f"unclassifiable dependency: {out_scheme} -> {in_scheme}, transposed={transposed}"
    )


def is_communication(dependency: DependencyType) -> bool:
    """True when satisfying the dependency moves bytes between workers."""
    return dependency in COMMUNICATION_DEPENDENCIES


def lowering_chain(
    dependency: DependencyType,
    in_scheme: Scheme,
) -> tuple[str, ...]:
    """The extended-operator chain realising a dependency whose consumer
    requires ``in_scheme``.

    Returns a tuple of operator kinds from ``{"transpose", "extract",
    "partition", "broadcast"}`` in application order; REFERENCE lowers to
    the empty chain.
    """
    if dependency is DependencyType.REFERENCE:
        return ()
    if dependency is DependencyType.TRANSPOSE:
        return ("transpose",)
    if dependency is DependencyType.EXTRACT:
        return ("extract",)
    if dependency is DependencyType.EXTRACT_TRANSPOSE:
        # Extract the complementary 1-D scheme, then transpose into place.
        return ("extract", "transpose")
    if dependency is DependencyType.PARTITION:
        return ("partition",)
    if dependency is DependencyType.TRANSPOSE_PARTITION:
        # The free local transpose flips Row<->Column; the repartition then
        # moves the data into the required scheme.
        return ("transpose", "partition")
    if dependency is DependencyType.BROADCAST:
        return ("broadcast",)
    if dependency is DependencyType.TRANSPOSE_BROADCAST:
        return ("transpose", "broadcast")
    raise PlanError(f"unknown dependency {dependency}")  # pragma: no cover

"""Worst-case matrix size estimation (paper Section 5.1).

The dependency-oriented cost model needs ``|A|`` -- the size of every matrix
version in the program -- before anything runs.  Dimensions are inferred
exactly by the language layer; sparsity is propagated with the paper's
worst-case rule for a binary operator ``C = op(A, B)``::

    s_C = 1                    if op is (matrix) multiplication
    s_C = min(s_A + s_B, 1)    otherwise

(the paper prints ``Max(s_A + s_B, 1)``, an obvious typo -- a sparsity is
capped at 1, and the union bound of two non-zero patterns is the *minimum*
of the sum and 1).  Unary (scalar) operators preserve sparsity.  Generated
matrices (random/full) are dense.

The estimate is a guaranteed over-approximation: the true sparsity of every
intermediate is at most the estimated one (property-tested in the suite).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.blocks.ops import ZERO_PRESERVING_UNARY
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    MatrixProgram,
    Operand,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)


#: Estimation modes: the paper's worst case, and an average case assuming
#: independent uniformly-placed non-zeros (used by the misestimation
#: ablation; the paper explicitly chooses worst-case).
ESTIMATION_MODES = ("worst", "average")


class SizeEstimator:
    """Per-matrix sparsity and byte-size estimates (worst-case by default)."""

    def __init__(self, program: MatrixProgram, mode: str = "worst") -> None:
        if mode not in ESTIMATION_MODES:
            raise PlanError(f"unknown estimation mode {mode!r}")
        self.mode = mode
        self._dims = dict(program.dims)
        self._sparsity: dict[str, float] = {}
        for op in program.ops:
            if isinstance(op, LoadOp):
                self._sparsity[op.output] = op.sparsity
            elif isinstance(op, (RandomOp, FullOp)):
                self._sparsity[op.output] = 1.0
            elif isinstance(op, MatMulOp):
                if mode == "worst":
                    self._sparsity[op.output] = 1.0
                else:
                    # P(entry non-zero) = 1 - (1 - sA sB)^k for k inner terms
                    inner = program.dims_of(op.left)[1]
                    product = self.sparsity_of(op.left) * self.sparsity_of(op.right)
                    self._sparsity[op.output] = 1.0 - (1.0 - product) ** inner
            elif isinstance(op, CellwiseOp):
                left = self.sparsity_of(op.left)
                right = self.sparsity_of(op.right)
                if mode == "average" and op.op == "multiply":
                    self._sparsity[op.output] = left * right
                elif mode == "average" and op.op in ("add", "subtract"):
                    self._sparsity[op.output] = left + right - left * right
                else:
                    self._sparsity[op.output] = min(left + right, 1.0)
            elif isinstance(op, ScalarMatrixOp):
                base = self.sparsity_of(op.operand)
                if op.op in ("add", "subtract") and op.scalar != 0.0:
                    # A non-zero shift fills every implicit zero.
                    self._sparsity[op.output] = 1.0
                else:
                    self._sparsity[op.output] = base
            elif isinstance(op, UnaryMatrixOp):
                if op.func in ZERO_PRESERVING_UNARY:
                    self._sparsity[op.output] = self.sparsity_of(op.operand)
                else:
                    self._sparsity[op.output] = 1.0  # f(0) != 0 densifies
            elif isinstance(op, RowAggOp):
                # A row (column) is non-zero if any of its entries is:
                # union bound (worst) or independence (average).
                in_rows, in_cols = program.dims_of(op.operand)
                reduced = in_cols if op.kind == "rowsum" else in_rows
                base = self.sparsity_of(op.operand)
                if mode == "worst":
                    self._sparsity[op.output] = min(base * reduced, 1.0)
                else:
                    self._sparsity[op.output] = 1.0 - (1.0 - base) ** reduced
            elif isinstance(op, (AggregateOp, ScalarComputeOp)):
                continue  # scalar outputs have no matrix size
            else:  # pragma: no cover - all op kinds enumerated above
                raise PlanError(f"estimator: unknown operator {type(op).__name__}")

    # -- queries -------------------------------------------------------------

    def sparsity(self, name: str) -> float:
        """Estimated worst-case sparsity of a matrix version."""
        if name not in self._sparsity:
            raise PlanError(f"no sparsity estimate for {name!r}")
        return self._sparsity[name]

    def sparsity_of(self, operand: Operand) -> float:
        """Sparsity of an operand (transposing preserves sparsity)."""
        return self.sparsity(operand.name)

    def dims(self, name: str) -> tuple[int, int]:
        if name not in self._dims:
            raise PlanError(f"no dimensions recorded for {name!r}")
        return self._dims[name]

    def nbytes(self, name: str) -> int:
        """Estimated ``|A|`` in bytes: 8 bytes per estimated non-zero.

        This is the quantity the cost model compares and the heuristics
        threshold on; the constant factor is irrelevant to plan choice.
        """
        rows, cols = self.dims(name)
        return max(1, int(8 * rows * cols * self.sparsity(name)))

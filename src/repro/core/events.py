"""Input/output events of matrix operators (paper Section 3.1).

An *event* is the act of an operator reading or writing one matrix under a
partition scheme.  ``In(A, p, op)`` / ``Out(A, p, op)`` from the paper map
to :class:`InputEvent` / :class:`OutputEvent`; the possibly-transposed
access ``B = A^T`` is carried by the ``transposed`` flag on the event
rather than by a separate matrix name, matching how the language layer
marks operand references.
"""

from __future__ import annotations

import dataclasses

from repro.matrix.schemes import Scheme


@dataclasses.dataclass(frozen=True)
class InputEvent:
    """Operator ``op_index`` reads matrix ``name`` (transposed if set)
    required under ``scheme``."""

    name: str
    transposed: bool
    scheme: Scheme
    op_index: int


@dataclasses.dataclass(frozen=True)
class OutputEvent:
    """Operator ``op_index`` produces matrix ``name`` (transposed if set)
    laid out under ``scheme``."""

    name: str
    transposed: bool
    scheme: Scheme
    op_index: int


def precedes(producer: OutputEvent, consumer: InputEvent) -> bool:
    """The paper's ``Precede(op_i, op_j)``: the producer ran earlier."""
    return producer.op_index < consumer.op_index

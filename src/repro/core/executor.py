"""Compatibility shim: the executor now lives in :mod:`repro.runtime`.

The historical serial step loop was split into the runtime package --
stage graph, concurrent scheduler, operator registry, pluggable backend,
refcounted resources.  This module keeps the old import surface
(``repro.core.executor.PlanExecutor`` et al.) alive for existing callers.
"""

from __future__ import annotations

from repro.runtime.executor import (
    ExecutionResult,
    ExecutionState,
    PlanExecutor,
    StepTrace,
    evaluate_scalar,
)

__all__ = [
    "ExecutionResult",
    "ExecutionState",
    "PlanExecutor",
    "StepTrace",
    "evaluate_scalar",
]

"""Plan executor: runs a staged plan on the simulated cluster.

Steps are executed in plan order (which is topological by construction).
Every extended operator maps 1:1 onto a physical primitive of
:mod:`repro.matrix.primitives`; compute steps dispatch to the strategy the
planner chose.  The executor also

* picks the block size (the configured one, or the Equation-3 automatic
  choice based on the program's largest matrix),
* charges the simulated clock: per-step compute time is the slowest
  worker's flop delta, plus one scheduling-latency charge per stage,
* frees distributed matrices after their last use (liveness computed from
  the plan), keeping long iterative runs bounded in memory.
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np

from repro.blocks.memory import choose_block_size
from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    ScalarComputeStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError
from repro.lang.expr import (
    ScalarBinaryExpr,
    ScalarConst,
    ScalarExpr,
    ScalarRefExpr,
    ScalarUnaryExpr,
)
from repro.lang.program import FullOp, LoadOp, RandomOp
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.primitives import (
    broadcast_matrix,
    cellwise_op,
    col_sums,
    cpmm,
    extract,
    local_transpose,
    matrix_sq_sum,
    matrix_sum,
    repartition,
    rmm1,
    rmm2,
    row_sums,
    scalar_op_matrix,
    unary_op_matrix,
)
from repro.rdd.clock import TimeBreakdown
from repro.rdd.context import ClusterContext


@dataclasses.dataclass(frozen=True)
class StepTrace:
    """Per-step record collected when executing with ``trace=True``."""

    step: str
    stage: int
    comm_bytes: int
    flops: int
    wall_seconds: float


@dataclasses.dataclass
class ExecutionResult:
    """Everything a run produced and what it cost."""

    matrices: dict[str, np.ndarray]  # program outputs, by version name
    scalars: dict[str, float]  # requested driver scalars
    comm_bytes: int  # metered cross-worker traffic of this run
    time: TimeBreakdown  # simulated seconds (network/compute/overhead)
    num_stages: int
    peak_memory_bytes: int  # largest per-worker model-byte peak
    wall_seconds: float  # real elapsed time of the in-process run
    trace: list[StepTrace] | None = None  # per-step records (trace=True)

    @property
    def simulated_seconds(self) -> float:
        return self.time.total_seconds

    def comm_by_stage(self) -> dict[int, int]:
        """Measured bytes per stage (requires a traced run)."""
        if self.trace is None:
            raise ExecutionError("run with trace=True to get per-stage traffic")
        out: dict[int, int] = {}
        for record in self.trace:
            out[record.stage] = out.get(record.stage, 0) + record.comm_bytes
        return out


class PlanExecutor:
    """Executes DMac plans on a :class:`ClusterContext`."""

    def __init__(self, context: ClusterContext, block_size: int | None = None) -> None:
        self.context = context
        self.block_size = block_size if block_size is not None else context.config.block_size

    def execute(
        self,
        plan: Plan,
        inputs: dict[str, np.ndarray] | None = None,
        trace: bool = False,
    ) -> ExecutionResult:
        """Run ``plan``; ``inputs`` binds LoadOp names to driver arrays.
        With ``trace=True`` the result carries a per-step record of bytes,
        flops and wall time."""
        inputs = inputs or {}
        if plan.num_stages == 0:
            schedule_stages(plan)
        block_size = self._resolve_block_size(plan)
        last_use = _liveness(plan)
        env: dict[MatrixInstance, DistributedMatrix] = {}
        scalars: dict[str, float] = {}

        context = self.context
        bytes_before = context.ledger.snapshot()
        time_before = context.clock.elapsed
        wall_start = time.perf_counter()
        context.clock.advance_stage_overhead(plan.num_stages)

        step_traces: list[StepTrace] | None = [] if trace else None
        for index, step in enumerate(plan.steps):
            snapshot = context.flops_snapshot()
            step_bytes = context.ledger.snapshot()
            step_wall = time.perf_counter()
            with context.ledger.scope(f"stage-{step.stage}"):
                with context.ledger.scope(str(step)):
                    self._run_step(step, env, scalars, inputs, block_size)
            context.charge_compute_since(snapshot)
            if step_traces is not None:
                current = context.flops_snapshot()
                flops = sum(
                    (current[w][0] - snapshot[w][0]) + (current[w][1] - snapshot[w][1])
                    for w in current
                )
                step_traces.append(
                    StepTrace(
                        step=str(step),
                        stage=step.stage,
                        comm_bytes=context.ledger.snapshot() - step_bytes,
                        flops=flops,
                        wall_seconds=time.perf_counter() - step_wall,
                    )
                )
            for instance in step.inputs():
                if last_use.get(instance) == index:
                    env.pop(instance, None)

        matrices = {}
        for name, instance in plan.outputs.items():
            matrix = env.get(instance)
            if matrix is None:
                raise ExecutionError(f"output instance {instance} was freed or never built")
            array = matrix.to_numpy()
            matrices[name] = array.T if instance.transposed else array

        wall_seconds = time.perf_counter() - wall_start
        time_after = context.clock.elapsed
        return ExecutionResult(
            matrices=matrices,
            scalars={name: scalars[name] for name in plan.program.scalar_outputs},
            comm_bytes=context.ledger.snapshot() - bytes_before,
            time=TimeBreakdown(
                network_seconds=time_after.network_seconds - time_before.network_seconds,
                compute_seconds=time_after.compute_seconds - time_before.compute_seconds,
                overhead_seconds=time_after.overhead_seconds
                - time_before.overhead_seconds,
            ),
            num_stages=plan.num_stages,
            peak_memory_bytes=context.peak_memory_bytes(),
            wall_seconds=wall_seconds,
            trace=step_traces,
        )

    # -- step dispatch -----------------------------------------------------

    def _run_step(
        self,
        step: Step,
        env: dict[MatrixInstance, DistributedMatrix],
        scalars: dict[str, float],
        inputs: dict[str, np.ndarray],
        block_size: int,
    ) -> None:
        context = self.context
        if isinstance(step, SourceStep):
            env[step.output] = self._materialise_source(step, inputs, block_size)
        elif isinstance(step, ExtendedStep):
            source = _lookup(env, step.source)
            if step.kind == "partition":
                result = repartition(source, step.target.scheme)
            elif step.kind == "broadcast":
                result = broadcast_matrix(source)
            elif step.kind == "transpose":
                result = local_transpose(source)
            elif step.kind == "extract":
                result = extract(source, step.target.scheme)
            else:
                raise ExecutionError(f"unknown extended operator {step.kind!r}")
            if result.scheme is not step.target.scheme:  # pragma: no cover - guard
                raise ExecutionError(
                    f"{step.kind} produced {result.scheme}, plan expected {step.target}"
                )
            env[step.target] = result
        elif isinstance(step, MatMulStep):
            left, right = _lookup(env, step.left), _lookup(env, step.right)
            if step.strategy == "rmm1":
                result = rmm1(left, right)
            elif step.strategy == "rmm2":
                result = rmm2(left, right)
            elif step.strategy == "cpmm":
                result = cpmm(left, right, output_scheme=step.output.scheme)
            else:
                raise ExecutionError(f"unknown matmul strategy {step.strategy!r}")
            env[step.output] = result
        elif isinstance(step, CellwiseStep):
            left, right = _lookup(env, step.left), _lookup(env, step.right)
            env[step.output] = cellwise_op(step.op.op, left, right)
        elif isinstance(step, ScalarMatrixStep):
            source = _lookup(env, step.source)
            scalar = step.op.scalar
            value = scalars[scalar] if isinstance(scalar, str) else float(scalar)
            env[step.output] = scalar_op_matrix(step.op.op, source, value)
        elif isinstance(step, UnaryStep):
            env[step.output] = unary_op_matrix(step.op.func, _lookup(env, step.source))
        elif isinstance(step, RowAggStep):
            source = _lookup(env, step.source)
            aggregate = row_sums if step.op.kind == "rowsum" else col_sums
            result = aggregate(source, output_scheme=step.output.scheme) \
                if step.communicates else aggregate(source)
            if result.scheme is not step.output.scheme:  # pragma: no cover - guard
                raise ExecutionError(
                    f"{step.op.kind} produced {result.scheme}, plan expected {step.output}"
                )
            env[step.output] = result
        elif isinstance(step, AggregateStep):
            source = _lookup(env, step.source)
            if step.op.kind == "sum":
                scalars[step.op.output] = matrix_sum(source)
            elif step.op.kind == "sqsum":
                scalars[step.op.output] = matrix_sq_sum(source)
            elif step.op.kind == "value":
                scalars[step.op.output] = source.value()
            else:
                raise ExecutionError(f"unknown aggregation {step.op.kind!r}")
        elif isinstance(step, ScalarComputeStep):
            scalars[step.op.output] = evaluate_scalar(step.op.expr, scalars)
        else:  # pragma: no cover - all step kinds enumerated
            raise ExecutionError(f"unknown plan step {type(step).__name__}")

    def _materialise_source(
        self,
        step: SourceStep,
        inputs: dict[str, np.ndarray],
        block_size: int,
    ) -> DistributedMatrix:
        op = step.op
        scheme = step.output.scheme
        if isinstance(op, LoadOp):
            if op.output not in inputs:
                raise ExecutionError(f"no input array bound for load {op.output!r}")
            array = np.asarray(inputs[op.output], dtype=np.float64)
            if array.shape != (op.rows, op.cols):
                raise ExecutionError(
                    f"input {op.output!r} has shape {array.shape}, "
                    f"program declared {(op.rows, op.cols)}"
                )
            return DistributedMatrix.from_numpy(
                self.context, array, block_size, scheme
            )
        if isinstance(op, RandomOp):
            return DistributedMatrix.random(
                self.context, op.rows, op.cols, block_size, scheme, seed=op.seed
            )
        if isinstance(op, FullOp):
            array = np.full((op.rows, op.cols), op.value, dtype=np.float64)
            return DistributedMatrix.from_numpy(
                self.context, array, block_size, scheme, storage="dense"
            )
        raise ExecutionError(f"unknown source operator {type(op).__name__}")

    def _resolve_block_size(self, plan: Plan) -> int:
        if self.block_size is not None:
            return self.block_size
        rows, cols = max(
            plan.program.dims.values(), key=lambda shape: shape[0] * shape[1]
        )
        config = self.context.config
        return choose_block_size(
            rows, cols, config.num_workers, config.threads_per_worker
        )


def _lookup(
    env: dict[MatrixInstance, DistributedMatrix], instance: MatrixInstance
) -> DistributedMatrix:
    matrix = env.get(instance)
    if matrix is None:
        raise ExecutionError(f"plan step consumes {instance} but it is not materialised")
    return matrix


def _liveness(plan: Plan) -> dict[MatrixInstance, int]:
    """Last step index at which each instance is read.  Output instances are
    pinned (never freed)."""
    last_use: dict[MatrixInstance, int] = {}
    for index, step in enumerate(plan.steps):
        for instance in step.inputs():
            last_use[instance] = index
    for instance in plan.outputs.values():
        last_use[instance] = len(plan.steps)
    return last_use


def evaluate_scalar(expr: ScalarExpr, scalars: dict[str, float]) -> float:
    """Evaluate a driver-side scalar expression against computed scalars."""
    if isinstance(expr, ScalarConst):
        return expr.value
    if isinstance(expr, ScalarRefExpr):
        if expr.name not in scalars:
            raise ExecutionError(f"scalar {expr.name!r} referenced before computation")
        return scalars[expr.name]
    if isinstance(expr, ScalarBinaryExpr):
        left = evaluate_scalar(expr.left, scalars)
        right = evaluate_scalar(expr.right, scalars)
        if expr.op == "add":
            return left + right
        if expr.op == "subtract":
            return left - right
        if expr.op == "multiply":
            return left * right
        if right == 0:
            raise ExecutionError("scalar division by zero at run time")
        return left / right
    if isinstance(expr, ScalarUnaryExpr):
        child = evaluate_scalar(expr.child, scalars)
        if expr.op == "negate":
            return -child
        if child < 0:
            raise ExecutionError(f"sqrt of negative value {child}")
        return math.sqrt(child)
    raise ExecutionError(f"unknown scalar expression {type(expr).__name__}")

"""Exhaustive (optimal) plan search, for validating the greedy planner.

Algorithm 1 is greedy: it fixes each operator's strategy by local argmin and
repairs with two heuristics.  This module searches the *full* decision tree
-- every strategy, every flexible output binding, and every way of paying
for an input event (including speculative broadcasts, the move Pull-Up
Broadcast approximates) -- and returns the provably minimal total
communication under the paper's cost model (Section 4.1).

The state is the set of materialised matrix instances, kept closed under
the free derivations (transpose between complementary 1-D schemes, extract
from a replica): free chains never hurt, so closing over them removes
irrelevant branching.  Exponential in program length; intended for plans of
roughly a dozen operators (tests, the greedy-gap ablation).

Also exposes :func:`paper_cost_of_plan`, which re-prices an already
generated plan under the same model so greedy and optimal are comparable.
"""

from __future__ import annotations

import functools

from repro.core.estimator import SizeEstimator
from repro.core.plan import (
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
)
from repro.core.strategies import candidate_strategies
from repro.errors import PlanError
from repro.lang.program import (
    AggregateOp,
    FullOp,
    LoadOp,
    MatrixProgram,
    Operand,
    RandomOp,
    ScalarComputeOp,
)
from repro.matrix.schemes import Scheme

#: Guard against accidentally running the exponential search on huge programs.
MAX_OPERATORS = 24

State = frozenset  # of MatrixInstance


def free_closure(state: State) -> State:
    """Close a state under the zero-cost derivations.

    * a 1-D instance yields its transpose in the complementary scheme,
    * a Broadcast instance yields both 1-D extracts, their transposes, and
      the transposed replica.
    """
    closed = set(state)
    frontier = list(state)
    while frontier:
        instance = frontier.pop()
        derived = []
        if instance.scheme is Scheme.BROADCAST:
            derived.append(
                MatrixInstance(instance.name, not instance.transposed, Scheme.BROADCAST)
            )
            for scheme in (Scheme.ROW, Scheme.COL):
                derived.append(MatrixInstance(instance.name, instance.transposed, scheme))
        else:
            derived.append(
                MatrixInstance(
                    instance.name, not instance.transposed, instance.scheme.opposite
                )
            )
        for new in derived:
            if new not in closed:
                closed.add(new)
                frontier.append(new)
    return frozenset(closed)


def optimal_cost(program: MatrixProgram, num_workers: int) -> int:
    """Minimum total communication (paper model bytes) over all plans."""
    ops = program.ops
    if len(ops) > MAX_OPERATORS:
        raise PlanError(
            f"exhaustive search limited to {MAX_OPERATORS} operators, "
            f"got {len(ops)}"
        )
    estimator = SizeEstimator(program)

    @functools.lru_cache(maxsize=None)
    def search(index: int, state: State) -> int:
        if index == len(ops):
            return 0
        op = ops[index]
        if isinstance(op, (LoadOp, RandomOp, FullOp)):
            best = None
            for scheme in (Scheme.ROW, Scheme.COL):
                instance = MatrixInstance(op.output, False, scheme)
                cost = search(index + 1, free_closure(state | {instance}))
                best = cost if best is None else min(best, cost)
            assert best is not None
            return best
        if isinstance(op, ScalarComputeOp):
            return search(index + 1, state)
        if isinstance(op, AggregateOp):
            # any scheme works; some instance of the operand always exists
            return search(index + 1, state)

        nbytes_out = estimator.nbytes(op.output)
        best = None
        for strategy in candidate_strategies(op):
            input_options = [
                _satisfaction_options(state, operand, required, estimator, num_workers)
                for operand, required in zip(op.matrix_inputs(), strategy.input_schemes)
            ]
            for combo_cost, combo_added in _combine(input_options):
                for out_scheme in strategy.output_schemes:
                    out_instance = MatrixInstance(op.output, False, out_scheme)
                    output_bytes = num_workers * nbytes_out if strategy.shuffles_output else 0
                    next_state = free_closure(
                        state | combo_added | {out_instance}
                    )
                    total = (
                        combo_cost
                        + output_bytes
                        + search(index + 1, next_state)
                    )
                    if best is None or total < best:
                        best = total
        if best is None:  # pragma: no cover - every op has strategies
            raise PlanError(f"no strategy for {op}")
        return best

    return search(0, frozenset())


def _satisfaction_options(
    state: State,
    operand: Operand,
    required: Scheme,
    estimator: SizeEstimator,
    num_workers: int,
) -> list[tuple[int, frozenset]]:
    """Ways to make ``operand`` available under ``required``:
    ``(cost, instances added)`` alternatives."""
    target = MatrixInstance(operand.name, operand.transposed, required)
    if target in state:
        return [(0, frozenset())]
    if not any(inst.name == operand.name for inst in state):
        raise PlanError(f"operand {operand} used before production")
    nbytes = estimator.nbytes(operand.name)
    options: list[tuple[int, frozenset]] = []
    if required.is_one_dimensional:
        # (a) repartition into the required 1-D scheme
        options.append((nbytes, frozenset({target})))
        # (b) speculatively broadcast instead (the Pull-Up Broadcast move):
        #     pay N x |A| now, gain the replica for every later event
        replica = MatrixInstance(operand.name, operand.transposed, Scheme.BROADCAST)
        options.append((num_workers * nbytes, frozenset({replica})))
    else:
        options.append(
            (num_workers * nbytes, frozenset({target}))
        )
    return options


def _combine(per_input: list[list[tuple[int, frozenset]]]):
    """Cartesian product of per-input options, summing costs and unioning
    the added instances."""
    combos: list[tuple[int, frozenset]] = [(0, frozenset())]
    for options in per_input:
        combos = [
            (cost + option_cost, added | option_added)
            for cost, added in combos
            for option_cost, option_added in options
        ]
    return combos


def paper_cost_of_plan(plan: Plan, num_workers: int) -> int:
    """Re-price a generated plan under the paper's cost model, so greedy
    plans are comparable with :func:`optimal_cost`.

    partition: ``|A|``; broadcast: ``N x |A|``; CPMM output: ``N x |C|``;
    everything else free.
    """
    estimator = SizeEstimator(plan.program)
    total = 0
    for step in plan.steps:
        if isinstance(step, ExtendedStep):
            if step.kind == "partition":
                total += estimator.nbytes(step.source.name)
            elif step.kind == "broadcast":
                total += num_workers * estimator.nbytes(step.source.name)
        elif isinstance(step, MatMulStep) and step.strategy == "cpmm":
            total += num_workers * estimator.nbytes(step.output.name)
        elif isinstance(step, RowAggStep) and step.communicates:
            total += num_workers * estimator.nbytes(step.output.name)
    return total

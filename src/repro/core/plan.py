"""Execution-plan representation: matrix instances and plan steps.

A plan is a DAG like the paper's Figure 3: nodes are *matrix instances*
(a logical matrix, possibly transposed, laid out under a scheme -- e.g.
``W1^T(b)``) and edges are either original compute operators or the five
extended operators (``partition``, ``broadcast``, ``transpose``,
``reference``, ``extract``) that realise dependencies.

We store the plan as a topologically-ordered step list; the stage scheduler
(:mod:`repro.core.stages`) later annotates each step with its stage number,
whose boundaries sit exactly on the communicating edges.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    MatrixProgram,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.matrix.schemes import Scheme

#: Extended operator kinds that move bytes between workers.
COMMUNICATING_KINDS = frozenset({"partition", "broadcast"})


@dataclasses.dataclass(frozen=True)
class MatrixInstance:
    """A concrete distributed materialisation of a logical matrix."""

    name: str  # program version name, e.g. "W@2"
    transposed: bool  # this instance holds the transpose of `name`
    scheme: Scheme

    def __str__(self) -> str:
        suffix = "^T" if self.transposed else ""
        return f"{self.name}{suffix}({self.scheme})"

    def with_scheme(self, scheme: Scheme) -> "MatrixInstance":
        return dataclasses.replace(self, scheme=scheme)


@dataclasses.dataclass
class Step:
    """Base plan step.  ``stage`` is assigned by the stage scheduler.

    Every step kind answers the same four structural questions --
    :meth:`inputs`, :meth:`scalar_inputs`, :meth:`output_instance` and
    :meth:`scalar_output` -- so the stage scheduler, the stage graph and
    the operator registry can traverse plans without per-kind switches.
    """

    stage: int = dataclasses.field(default=0, init=False)

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return ()

    def scalar_inputs(self) -> tuple[str, ...]:
        """Driver scalars this step reads (by name)."""
        op = getattr(self, "op", None)
        return op.scalar_inputs() if op is not None else ()

    def output_instance(self) -> MatrixInstance | None:
        """The matrix instance this step produces, if any."""
        return None

    def scalar_output(self) -> str | None:
        """The driver scalar this step produces, if any."""
        return None

    @property
    def communicates(self) -> bool:
        return False


@dataclasses.dataclass
class SourceStep(Step):
    """Materialise a load / random / constant matrix."""

    op: Union[LoadOp, RandomOp, FullOp]
    output: MatrixInstance

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    def __str__(self) -> str:
        kind = type(self.op).__name__.replace("Op", "").lower()
        return f"{self.output} <- {kind}"


@dataclasses.dataclass
class ExtendedStep(Step):
    """One of the extended operators realising a dependency."""

    kind: str  # partition | broadcast | transpose | extract
    source: MatrixInstance
    target: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.source,)

    def output_instance(self) -> MatrixInstance | None:
        return self.target

    @property
    def communicates(self) -> bool:
        return self.kind in COMMUNICATING_KINDS

    def __str__(self) -> str:
        return f"{self.target} <- {self.kind}({self.source})"


@dataclasses.dataclass
class MatMulStep(Step):
    """A matrix multiplication under a chosen strategy."""

    op: MatMulOp
    strategy: str  # rmm1 | rmm2 | cpmm
    left: MatrixInstance
    right: MatrixInstance
    output: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.left, self.right)

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    @property
    def communicates(self) -> bool:
        return self.strategy == "cpmm"  # the aggregation shuffle

    def __str__(self) -> str:
        return f"{self.output} <- {self.strategy}({self.left}, {self.right})"


@dataclasses.dataclass
class CellwiseStep(Step):
    op: CellwiseOp
    left: MatrixInstance
    right: MatrixInstance
    output: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.left, self.right)

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    def __str__(self) -> str:
        return f"{self.output} <- {self.op.op}({self.left}, {self.right})"


@dataclasses.dataclass
class FusedCellwiseStep(Step):
    """A chain of cellwise steps collapsed into one composed block kernel.

    Produced only by the optimizer's fusion pass (:mod:`repro.planopt.fuse`),
    never by the planner.  ``chain`` holds the original
    :class:`CellwiseStep` objects in dependency order; every chain output
    except the last is a fusion-internal temporary that is no longer
    materialised as a distributed matrix -- the local engine composes the
    whole chain per block (:mod:`repro.kernels.fused`).  The chain tuple is
    treated as immutable: optimizer passes run before fusion, so nothing
    renames instances inside it.
    """

    chain: tuple[CellwiseStep, ...]
    output: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        produced = {inner.output for inner in self.chain}
        seen: dict[MatrixInstance, None] = {}
        for inner in self.chain:
            for operand in (inner.left, inner.right):
                if operand not in produced:
                    seen.setdefault(operand, None)
        return tuple(seen)

    def scalar_inputs(self) -> tuple[str, ...]:
        names: dict[str, None] = {}
        for inner in self.chain:
            for name in inner.scalar_inputs():
                names.setdefault(name, None)
        return tuple(names)

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    @property
    def ops(self) -> tuple[str, ...]:
        """The fused cellwise op names, in application order."""
        return tuple(inner.op.op for inner in self.chain)

    def __str__(self) -> str:
        body = ";".join(
            f"{inner.op.op}({inner.left},{inner.right})->{inner.output.name}"
            for inner in self.chain
        )
        return f"{self.output} <- fused[{body}]"


@dataclasses.dataclass
class ScalarMatrixStep(Step):
    op: ScalarMatrixOp
    source: MatrixInstance
    output: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.source,)

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    def __str__(self) -> str:
        return f"{self.output} <- {self.op.op}({self.source}, {self.op.scalar})"


@dataclasses.dataclass
class UnaryStep(Step):
    """Element-wise unary function (communication-free, scheme-preserving)."""

    op: UnaryMatrixOp
    source: MatrixInstance
    output: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.source,)

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    def __str__(self) -> str:
        return f"{self.output} <- {self.op.func}({self.source})"


@dataclasses.dataclass
class RowAggStep(Step):
    """Row/column sums under a chosen strategy."""

    op: RowAggOp
    strategy: str  # rowsum-aligned | rowsum-b | rowsum-opposed | colsum-*
    source: MatrixInstance
    output: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.source,)

    def output_instance(self) -> MatrixInstance | None:
        return self.output

    @property
    def communicates(self) -> bool:
        return self.strategy.endswith("-opposed")  # the partial-sum shuffle

    def __str__(self) -> str:
        return f"{self.output} <- {self.op.kind}({self.source})"


@dataclasses.dataclass
class AggregateStep(Step):
    op: AggregateOp
    source: MatrixInstance

    def inputs(self) -> tuple[MatrixInstance, ...]:
        return (self.source,)

    def scalar_output(self) -> str | None:
        return self.op.output

    def __str__(self) -> str:
        return f"{self.op.output} <- {self.op.kind}({self.source})"


@dataclasses.dataclass
class ScalarComputeStep(Step):
    op: ScalarComputeOp

    def scalar_output(self) -> str | None:
        return self.op.output

    def __str__(self) -> str:
        return f"{self.op.output} <- scalar-compute"


@dataclasses.dataclass
class Plan:
    """A complete execution plan for a matrix program."""

    program: MatrixProgram
    steps: list[Step]
    outputs: dict[str, MatrixInstance]  # program output name -> readable instance
    predicted_bytes: int  # communication the plan expects to incur
    num_stages: int = 0  # filled by the stage scheduler
    #: Instances the optimizer marked loop-invariant: the runtime keeps them
    #: pinned in the BlockCache until their last consumer has run.
    cache_pins: tuple[MatrixInstance, ...] = ()
    #: Audit trail of optimizer rewrites (``repro plan --show-rewrites``).
    rewrites: tuple = ()
    #: Translation-validation certificates issued by :mod:`repro.verify`:
    #: one per applied optimizer pass plus one end-to-end record.
    certificates: tuple = ()

    def communicating_steps(self) -> list[Step]:
        return [step for step in self.steps if step.communicates]

    def structural_hash(self) -> str:
        """Stable digest of the plan's structure (steps, outputs, pins,
        symbolic output values).  Two plans with equal hashes compute the
        same outputs by the same steps under the same layouts; see
        :func:`repro.planopt.structural.plan_structural_hash`."""
        from repro.planopt.structural import plan_structural_hash

        return plan_structural_hash(self)

    def describe(self) -> str:
        """Stage-annotated plan listing (the textual analogue of Figure 3)."""
        lines = []
        current_stage = None
        for step in self.steps:
            if step.stage != current_stage:
                current_stage = step.stage
                lines.append(f"-- stage {current_stage} --")
            marker = " [comm]" if step.communicates else ""
            lines.append(f"  {step}{marker}")
        return "\n".join(lines)

"""The DMac plan generator: Algorithm 1 with both heuristics.

Operators are visited in program order.  For each one, the strategy with
minimum communication under the dependency-oriented cost model is chosen
(Equation 1); each of its input events is then *satisfied* by locating the
cheapest existing instance of the operand's logical matrix and emitting the
extended-operator chain that realises the dependency (Table 2 lowering).
Two heuristics fire when an input event still costs communication:

* **Re-assignment** (Heuristic 2): if the cheapest producer's output scheme
  is still flexible -- CPMM output ``r|c``, or a source that can be laid out
  either way -- and nothing has consumed it yet, rebind that scheme to the
  one this event wants.
* **Pull-Up Broadcast** (Heuristic 1): if this event needs a Broadcast of a
  matrix an *earlier* event already paid a repartition for, the earlier
  ``partition`` step is retroactively converted into ``broadcast`` +
  ``extract`` -- the replica is created once, up front, and both events are
  then satisfied from it.

Every satisfied chain's intermediate instances are registered, so a replica
or transpose created for one operator is free for all later ones -- this is
what keeps ``W`` partitioned once per GNMF iteration and ``V`` partitioned
once per program (paper Section 6.5).
"""

from __future__ import annotations

import dataclasses

from repro.core.cost import dependency_cost, output_cost
from repro.core.dependency import classify
from repro.core.estimator import SizeEstimator
from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    ScalarComputeStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)
from repro.core.strategies import Strategy, candidate_strategies
from repro.errors import PlanError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    MatrixProgram,
    Operand,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.matrix.schemes import Scheme

_SCHEME_PREFERENCE = (Scheme.ROW, Scheme.COL, Scheme.BROADCAST)


@dataclasses.dataclass
class _InstanceInfo:
    """Planner-side bookkeeping for one materialised matrix instance."""

    producer: Step | None
    flexible: tuple[Scheme, ...] = ()  # alternative schemes still open
    consumers: int = 0


@dataclasses.dataclass
class _InputRecord:
    """One processed input event (the paper's InputSet entry)."""

    name: str
    transposed: bool
    scheme: Scheme
    cost: int
    partition_step: ExtendedStep | None
    converted: bool = False


class DMacPlanner:
    """Generates a communication-efficient plan for a matrix program."""

    def __init__(
        self,
        program: MatrixProgram,
        num_workers: int,
        pull_up_broadcast: bool = True,
        re_assignment: bool = True,
        estimation_mode: str = "worst",
    ) -> None:
        if num_workers < 1:
            raise PlanError(f"num_workers must be >= 1, got {num_workers}")
        self.program = program
        self.num_workers = num_workers
        self.pull_up_broadcast = pull_up_broadcast
        self.re_assignment = re_assignment
        self.estimator = SizeEstimator(program, mode=estimation_mode)
        self._steps: list[Step] = []
        self._table: dict[str, dict[MatrixInstance, _InstanceInfo]] = {}
        self._input_set: list[_InputRecord] = []
        self._predicted_bytes = 0

    # -- public API ---------------------------------------------------------

    def plan(self) -> Plan:
        """Run Algorithm 1 over the whole program.

        Lowering is dispatched through the operator registry: each lang
        operator's :class:`~repro.runtime.registry.OperatorSpec` names the
        planner method (``plan_hook``) that lowers it, so this loop needs
        no per-kind switch and new operators register in one place.
        """
        from repro.runtime.registry import spec_for_op

        for op in self.program.ops:
            spec = spec_for_op(op)
            if spec is None or not spec.plan_hook:
                raise PlanError(f"planner: unknown operator {type(op).__name__}")
            getattr(self, spec.plan_hook)(op)
        return Plan(
            program=self.program,
            steps=self._steps,
            outputs={name: self._readable_instance(name) for name in self.program.outputs},
            predicted_bytes=self._predicted_bytes,
        )

    # -- per-operator planning ---------------------------------------------------

    def _plan_source(self, op: LoadOp | RandomOp | FullOp) -> None:
        instance = MatrixInstance(op.output, False, Scheme.ROW)
        step = SourceStep(op, instance)
        self._steps.append(step)
        self._register(instance, step, flexible=(Scheme.COL,))

    def _plan_aggregate(self, op: AggregateOp) -> None:
        instance = self._satisfy_any_scheme(op.operand)
        self._steps.append(AggregateStep(op, instance))

    def _plan_scalar_compute(self, op: ScalarComputeOp) -> None:
        self._steps.append(ScalarComputeStep(op))

    def _plan_matmul(self, op: MatMulOp) -> None:
        strategy = self._choose_strategy(op)
        left = self._satisfy(op.left, strategy.input_schemes[0])
        right = self._satisfy(op.right, strategy.input_schemes[1])
        output = MatrixInstance(op.output, False, strategy.primary_output)
        step = MatMulStep(op, strategy.name, left, right, output)
        self._steps.append(step)
        flexible = strategy.output_schemes[1:]
        self._register(output, step, flexible=flexible)
        if strategy.shuffles_output:
            self._predicted_bytes += (self.num_workers - 1) * self.estimator.nbytes(
                op.output
            )

    def _plan_cellwise(self, op: CellwiseOp) -> None:
        strategy = self._choose_strategy(op)
        left = self._satisfy(op.left, strategy.input_schemes[0])
        right = self._satisfy(op.right, strategy.input_schemes[1])
        output = MatrixInstance(op.output, False, strategy.primary_output)
        step = CellwiseStep(op, left, right, output)
        self._steps.append(step)
        self._register(output, step)

    def _plan_scalar_matrix(self, op: ScalarMatrixOp) -> None:
        strategy = self._choose_strategy(op)
        source = self._satisfy(op.operand, strategy.input_schemes[0])
        output = MatrixInstance(op.output, False, strategy.primary_output)
        step = ScalarMatrixStep(op, source, output)
        self._steps.append(step)
        self._register(output, step)

    def _plan_unary(self, op: UnaryMatrixOp) -> None:
        strategy = self._choose_strategy(op)
        source = self._satisfy(op.operand, strategy.input_schemes[0])
        output = MatrixInstance(op.output, False, strategy.primary_output)
        step = UnaryStep(op, source, output)
        self._steps.append(step)
        self._register(output, step)

    def _plan_row_agg(self, op: RowAggOp) -> None:
        strategy = self._choose_strategy(op)
        source = self._satisfy(op.operand, strategy.input_schemes[0])
        output = MatrixInstance(op.output, False, strategy.primary_output)
        step = RowAggStep(op, strategy.name, source, output)
        self._steps.append(step)
        self._register(output, step, flexible=strategy.output_schemes[1:])
        if strategy.shuffles_output:
            self._predicted_bytes += (self.num_workers - 1) * self.estimator.nbytes(
                op.output
            )

    # -- strategy choice (Equation 1) ------------------------------------------------

    def _choose_strategy(self, op) -> Strategy:
        candidates = candidate_strategies(op)
        best: Strategy | None = None
        best_cost = None
        for strategy in candidates:
            cost = output_cost(
                strategy, self.estimator.nbytes(op.output), self.num_workers
            )
            for operand, scheme in zip(op.matrix_inputs(), strategy.input_schemes):
                cost += self._cheapest_cost(operand, scheme)
            if best_cost is None or cost < best_cost:
                best, best_cost = strategy, cost
        assert best is not None
        return best

    def _cheapest_cost(self, operand: Operand, required: Scheme) -> int:
        """Minimum communication to make ``operand`` available in
        ``required``, over all existing instances (and, when allowed, over
        the still-flexible schemes a producer could be re-assigned to)."""
        __, __, cost = self._best_instance(operand, required)
        return cost

    def _best_instance(
        self, operand: Operand, required: Scheme
    ) -> tuple[MatrixInstance, _InstanceInfo, int]:
        instances = self._table.get(operand.name)
        if not instances:
            raise PlanError(f"operand {operand} is used before being produced")
        nbytes = self.estimator.nbytes(operand.name)
        ranked = []
        for instance, info in instances.items():
            cost = self._instance_cost(instance, info, operand, required, nbytes)
            ranked.append((cost, str(instance), instance, info))
        ranked.sort(key=lambda item: (item[0], item[1]))
        cost, __, instance, info = ranked[0]
        return instance, info, cost

    def _instance_cost(
        self,
        instance: MatrixInstance,
        info: _InstanceInfo,
        operand: Operand,
        required: Scheme,
        nbytes: int,
    ) -> int:
        transposed_access = instance.transposed != operand.transposed
        cost = dependency_cost(
            classify(instance.scheme, required, transposed_access),
            nbytes,
            self.num_workers,
        )
        if self.re_assignment and info.flexible and info.consumers == 0:
            for scheme in info.flexible:
                alternative = dependency_cost(
                    classify(scheme, required, transposed_access),
                    nbytes,
                    self.num_workers,
                )
                cost = min(cost, alternative)
        return cost

    # -- input-event satisfaction + heuristics -----------------------------------

    def _satisfy(self, operand: Operand, required: Scheme) -> MatrixInstance:
        """Make ``operand`` available under ``required``; returns the final
        instance the compute step will read."""
        instance, info, cost = self._best_instance(operand, required)
        if self.re_assignment and info.flexible and info.consumers == 0:
            # The selected instance may owe its low cost to a scheme it has
            # not been bound to yet; bind it now so the emitted chain matches
            # the cost the strategy choice was based on.
            instance, info = self._try_reassign(operand, required, instance, info)
            cost = self._instance_cost(
                instance, info, operand, required, self.estimator.nbytes(operand.name)
            )
        if cost > 0 and required is Scheme.BROADCAST and self.pull_up_broadcast:
            if self._try_pull_up(operand.name):
                instance, info, cost = self._best_instance(operand, required)
        return self._emit_chain(operand, required, instance, info, cost)

    def _try_reassign(
        self,
        operand: Operand,
        required: Scheme,
        instance: MatrixInstance,
        info: _InstanceInfo,
    ) -> tuple[MatrixInstance, _InstanceInfo]:
        """Heuristic 2: rebind a still-flexible producer output scheme."""
        if not info.flexible or info.consumers > 0:
            return instance, info
        nbytes = self.estimator.nbytes(operand.name)
        transposed_access = instance.transposed != operand.transposed
        options = (instance.scheme,) + info.flexible
        best_scheme = min(
            enumerate(options),
            key=lambda item: (
                dependency_cost(
                    classify(item[1], required, transposed_access),
                    nbytes,
                    self.num_workers,
                ),
                item[0],  # keep the current binding on ties
            ),
        )[1]
        if best_scheme is instance.scheme:
            return instance, info
        new_instance = instance.with_scheme(best_scheme)
        producer = info.producer
        if isinstance(producer, (SourceStep, MatMulStep, RowAggStep)):
            producer.output = new_instance
        new_info = _InstanceInfo(producer=producer, flexible=(), consumers=0)
        del self._table[instance.name][instance]
        self._table[instance.name][new_instance] = new_info
        return new_instance, new_info

    def _try_pull_up(self, name: str) -> bool:
        """Heuristic 1: convert an earlier paid repartition of ``name`` into
        broadcast + extract so the replica serves both events."""
        for record in reversed(self._input_set):
            if (
                record.name == name
                and record.cost > 0
                and record.scheme.is_one_dimensional
                and record.partition_step is not None
                and not record.converted
            ):
                return self._apply_pull_up(record)
        return False

    def _apply_pull_up(self, record: _InputRecord) -> bool:
        partition_step = record.partition_step
        assert partition_step is not None
        replica = MatrixInstance(
            partition_step.source.name, partition_step.source.transposed, Scheme.BROADCAST
        )
        if replica in self._table.get(replica.name, {}):
            return False  # a replica already exists; nothing to pull up
        broadcast_step = ExtendedStep("broadcast", partition_step.source, replica)
        extract_step = ExtendedStep("extract", replica, partition_step.target)
        index = self._steps.index(partition_step)
        self._steps[index] = broadcast_step
        self._steps.insert(index + 1, extract_step)
        self._register(replica, broadcast_step)
        target_info = self._table[partition_step.target.name][partition_step.target]
        target_info.producer = extract_step
        record.converted = True
        nbytes = self.estimator.nbytes(replica.name)
        # The repartition becomes a replication: swap the predicted charge.
        self._predicted_bytes += (self.num_workers - 1) * nbytes - nbytes
        return True

    def _emit_chain(
        self,
        operand: Operand,
        required: Scheme,
        instance: MatrixInstance,
        info: _InstanceInfo,
        cost: int,
    ) -> MatrixInstance:
        """Lower the dependency from ``instance`` to the required layout,
        materialising (and registering) each intermediate instance."""
        info.consumers += 1
        name, target_transposed = operand.name, operand.transposed
        partition_step: ExtendedStep | None = None
        current = instance
        for kind, target in _lowering_targets(
            current, name, target_transposed, required
        ):
            existing = self._table.get(name, {}).get(target)
            if existing is not None:
                existing.consumers += 1
                current = target
                continue
            step = ExtendedStep(kind, current, target)
            self._steps.append(step)
            self._register(target, step)
            if kind == "partition":
                partition_step = step
                self._predicted_bytes += self.estimator.nbytes(name)
            elif kind == "broadcast":
                self._predicted_bytes += (self.num_workers - 1) * self.estimator.nbytes(
                    name
                )
            current = target
        self._input_set.append(
            _InputRecord(name, target_transposed, required, cost, partition_step)
        )
        return current

    def _satisfy_any_scheme(self, operand: Operand) -> MatrixInstance:
        """For aggregations: any scheme works, so take the cheapest."""
        best_required = min(
            _SCHEME_PREFERENCE,
            key=lambda scheme: (self._cheapest_cost(operand, scheme), scheme.value),
        )
        return self._satisfy(operand, best_required)

    # -- bookkeeping ------------------------------------------------------------

    def _register(
        self,
        instance: MatrixInstance,
        producer: Step,
        flexible: tuple[Scheme, ...] = (),
    ) -> None:
        by_name = self._table.setdefault(instance.name, {})
        if instance in by_name:
            raise PlanError(f"instance {instance} registered twice")
        by_name[instance] = _InstanceInfo(producer=producer, flexible=tuple(flexible))

    def _readable_instance(self, name: str) -> MatrixInstance:
        instances = self._table.get(name)
        if not instances:
            raise PlanError(f"program output {name!r} was never materialised")
        ranked = sorted(
            instances,
            key=lambda inst: (inst.transposed, _SCHEME_PREFERENCE.index(inst.scheme)),
        )
        return ranked[0]


def _lowering_targets(
    instance: MatrixInstance,
    name: str,
    target_transposed: bool,
    required: Scheme,
) -> list[tuple[str, MatrixInstance]]:
    """The concrete extended-operator chain from ``instance`` to the
    instance ``(name, target_transposed, required)`` (Table 2 lowering)."""
    transposed_access = instance.transposed != target_transposed
    final = MatrixInstance(name, target_transposed, required)
    if not transposed_access:
        if instance.scheme is required:
            return []
        if instance.scheme is Scheme.BROADCAST:
            return [("extract", final)]
        if required is Scheme.BROADCAST:
            return [("broadcast", final)]
        return [("partition", final)]
    # Transposed access: a free local transpose flips Row<->Column (and
    # keeps Broadcast); any residual scheme mismatch is handled after it.
    middle = MatrixInstance(name, target_transposed, instance.scheme.opposite)
    if instance.scheme is Scheme.BROADCAST:
        if required is Scheme.BROADCAST:
            return [("transpose", final)]
        # Extract-Transpose: pull the complementary 1-D slice, then flip.
        extracted = MatrixInstance(name, instance.transposed, required.opposite)
        return [("extract", extracted), ("transpose", final)]
    if middle.scheme is required:
        return [("transpose", final)]
    if required is Scheme.BROADCAST:
        return [("transpose", middle), ("broadcast", final)]
    return [("transpose", middle), ("partition", final)]

"""Stage scheduling: splitting a plan into communication-free stages.

The paper (Section 5.2) finds stage boundaries by traversing the plan along
its matrix dependencies and cutting wherever a communicating dependency
(``partition`` or ``broadcast`` operator -- and, in effect, CPMM's
aggregation shuffle) is crossed.  We implement the equivalent forward
formulation: every matrix instance is labelled with the stage in which it
becomes available; a communicating step consumes its input in stage ``s``
and makes its output available in stage ``s + 1``, while every
communication-free step stays inside its inputs' stage.  Within a stage no
bytes move, so each stage "can be perfectly dispatched to the nodes in the
cluster and executed independently".

Driver scalars (aggregations and scalar arithmetic) do not cut stages: the
handful of bytes they move travel with stage scheduling messages.

The traversal is generic over the step accessors (``inputs``,
``scalar_inputs``, ``output_instance``, ``scalar_output``); unknown step
kinds are rejected against the operator registry
(:mod:`repro.runtime.registry`) rather than an enumeration here.
"""

from __future__ import annotations

from repro.core.plan import MatrixInstance, Plan
from repro.errors import PlanError
from repro.runtime.registry import spec_for


def schedule_stages(plan: Plan) -> Plan:
    """Annotate every step with its stage number and set ``plan.num_stages``.

    Idempotent; returns the same plan object for chaining.
    """
    node_stage: dict[MatrixInstance, int] = {}
    scalar_stage: dict[str, int] = {}
    max_stage = 1
    for step in plan.steps:
        spec_for(step)  # PlanError on unregistered step kinds
        base = 1
        for instance in step.inputs():
            base = max(base, _input_stage(node_stage, instance))
        for name in step.scalar_inputs():
            base = max(base, scalar_stage.get(name, 1))
        step.stage = base
        output = step.output_instance()
        if output is not None:
            node_stage[output] = base + 1 if step.communicates else base
        scalar = step.scalar_output()
        if scalar is not None:
            scalar_stage[scalar] = base
        max_stage = max(max_stage, base)
    plan.num_stages = max_stage
    return plan


def _input_stage(node_stage: dict[MatrixInstance, int], instance: MatrixInstance) -> int:
    if instance not in node_stage:
        raise PlanError(f"step consumes {instance} before it is produced")
    return node_stage[instance]


def validate_stage_invariant(plan: Plan) -> None:
    """Check the defining property of the schedule: a communicating step's
    output is only consumed in a strictly later stage, and every
    communication-free step runs in the stage its inputs live in.  Raises
    :class:`PlanError` on violation (used by tests and debug tooling)."""
    available_at: dict[MatrixInstance, int] = {}
    for step in plan.steps:
        for instance in step.inputs():
            if available_at[instance] > step.stage:
                raise PlanError(
                    f"step {step} runs in stage {step.stage} but input {instance} "
                    f"is only available from stage {available_at[instance]}"
                )
        output = step.output_instance()
        if output is not None:
            available_at[output] = step.stage + (1 if step.communicates else 0)

"""Candidate execution strategies per operator (paper Sections 3.1 and 4.1).

An execution strategy fixes the partition scheme each input operand must
arrive in and the scheme(s) the output can be produced in.  Matrix
multiplication has the three strategies of Figure 2:

* **RMM1**: ``A(b) @ B(c) -> AB(c)`` -- replicate the left operand,
* **RMM2**: ``A(r) @ B(b) -> AB(r)`` -- replicate the right operand,
* **CPMM**: ``A(c) @ B(r) -> AB(r|c)`` -- cross products plus a shuffled
  aggregation; the only strategy whose *output* event carries a cost, and
  the canonical producer of a multi-scheme output (Re-assignment target).

Cell-wise operators require scheme-aligned operands (``(r,r)``, ``(c,c)``
or ``(b,b)``); scalar operators and aggregations accept any single scheme.
Sources (load/random/full) have no inputs and a flexible Row-or-Column
output: the data can be laid out either way at creation for free, and the
Re-assignment heuristic exploits exactly that.
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlanError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    OpNode,
    RandomOp,
    RowAggOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.matrix.schemes import Scheme


@dataclasses.dataclass(frozen=True)
class Strategy:
    """One way to execute an operator.

    Attributes:
        name: strategy identifier (``rmm1``/``rmm2``/``cpmm``/``cell-r``...).
        input_schemes: required scheme per matrix operand, in operand order.
        output_schemes: schemes the output can be produced in.  More than
            one entry means the output is *flexible* -- the Re-assignment
            heuristic may later rebind it (paper Section 4.2.2).
        shuffles_output: True only for CPMM, whose aggregation shuffles the
            full result (output-event cost ``N x |C|``, Section 4.1).
    """

    name: str
    input_schemes: tuple[Scheme, ...]
    output_schemes: tuple[Scheme, ...]
    shuffles_output: bool = False

    @property
    def primary_output(self) -> Scheme:
        return self.output_schemes[0]


RMM1 = Strategy("rmm1", (Scheme.BROADCAST, Scheme.COL), (Scheme.COL,))
RMM2 = Strategy("rmm2", (Scheme.ROW, Scheme.BROADCAST), (Scheme.ROW,))
CPMM = Strategy(
    "cpmm", (Scheme.COL, Scheme.ROW), (Scheme.ROW, Scheme.COL), shuffles_output=True
)

MATMUL_STRATEGIES = (RMM1, RMM2, CPMM)

CELLWISE_STRATEGIES = (
    Strategy("cell-r", (Scheme.ROW, Scheme.ROW), (Scheme.ROW,)),
    Strategy("cell-c", (Scheme.COL, Scheme.COL), (Scheme.COL,)),
    Strategy("cell-b", (Scheme.BROADCAST, Scheme.BROADCAST), (Scheme.BROADCAST,)),
)

SCALAR_STRATEGIES = (
    Strategy("scalar-r", (Scheme.ROW,), (Scheme.ROW,)),
    Strategy("scalar-c", (Scheme.COL,), (Scheme.COL,)),
    Strategy("scalar-b", (Scheme.BROADCAST,), (Scheme.BROADCAST,)),
)

AGGREGATE_STRATEGIES = (
    Strategy("agg-r", (Scheme.ROW,), ()),
    Strategy("agg-c", (Scheme.COL,), ()),
    Strategy("agg-b", (Scheme.BROADCAST,), ()),
)

#: Sources can be laid out Row or Column at creation, for free.
SOURCE_STRATEGY = Strategy("source", (), (Scheme.ROW, Scheme.COL))

#: Row/column aggregation: free when the reduced axis is worker-local
#: (Row input for row sums, Column for column sums, or a replica); a
#: scheme opposed to the reduced axis leaves per-worker partials that must
#: be shuffled and combined, like CPMM's output.
ROWSUM_STRATEGIES = (
    Strategy("rowsum-aligned", (Scheme.ROW,), (Scheme.ROW,)),
    Strategy("rowsum-b", (Scheme.BROADCAST,), (Scheme.BROADCAST,)),
    Strategy(
        "rowsum-opposed", (Scheme.COL,), (Scheme.ROW, Scheme.COL), shuffles_output=True
    ),
)
COLSUM_STRATEGIES = (
    Strategy("colsum-aligned", (Scheme.COL,), (Scheme.COL,)),
    Strategy("colsum-b", (Scheme.BROADCAST,), (Scheme.BROADCAST,)),
    Strategy(
        "colsum-opposed", (Scheme.ROW,), (Scheme.COL, Scheme.ROW), shuffles_output=True
    ),
)


@dataclasses.dataclass(frozen=True)
class LocalMatmulStrategy:
    """How a worker computes one dense block product locally.

    Distinct from :class:`Strategy`: the plan-level matmul strategies
    (RMM1/RMM2/CPMM) fix *where* partial products run and how bytes move;
    the local strategy fixes *how* each worker multiplies two dense blocks
    once they are co-located.  ``flops`` is the modelled cost of this
    product, and ``temp_bytes`` the extra model bytes of temporaries the
    kernel holds beyond its operands and result (zero for the naive
    kernel, which writes straight through BLAS).
    """

    name: str  # "naive" | "strassen"
    flops: int
    temp_bytes: int


def choose_local_matmul(
    m: int,
    k: int,
    n: int,
    *,
    strassen: bool = False,
    crossover: int = 128,
) -> LocalMatmulStrategy:
    """Pick the local kernel for a dense ``m x k @ k x n`` block product.

    Naive unless Strassen is enabled, the product is at or above the
    dense-size ``crossover`` in every dimension, and the Strassen
    recursion's priced flop count actually undercuts ``2 m k n`` (near the
    crossover the 18 half-size additions can eat the saved product).
    """
    from repro.core.cost import naive_matmul_flops, strassen_matmul_flops

    naive = LocalMatmulStrategy("naive", naive_matmul_flops(m, k, n), 0)
    if not strassen or min(m, k, n) < crossover:
        return naive
    priced = strassen_matmul_flops(m, k, n, crossover)
    if priced >= naive.flops:
        return naive
    from repro.kernels.strassen import strassen_temp_bytes

    return LocalMatmulStrategy("strassen", priced, strassen_temp_bytes(m, k, n))


def candidate_strategies(op: OpNode) -> tuple[Strategy, ...]:
    """The candidate strategy set ``S_i`` for an operator (Section 4.1)."""
    if isinstance(op, MatMulOp):
        return MATMUL_STRATEGIES
    if isinstance(op, CellwiseOp):
        return CELLWISE_STRATEGIES
    if isinstance(op, (ScalarMatrixOp, UnaryMatrixOp)):
        return SCALAR_STRATEGIES
    if isinstance(op, AggregateOp):
        return AGGREGATE_STRATEGIES
    if isinstance(op, RowAggOp):
        return ROWSUM_STRATEGIES if op.kind == "rowsum" else COLSUM_STRATEGIES
    if isinstance(op, (LoadOp, RandomOp, FullOp)):
        return (SOURCE_STRATEGY,)
    raise PlanError(f"no strategies for operator {type(op).__name__}")

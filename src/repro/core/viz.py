"""Plan visualisation: Graphviz DOT export of the Figure-3-style DAG.

Nodes are matrix instances (ellipses, like the paper's figure), edges are
the operators; communicating edges are drawn bold/red and stages become
clusters, so ``dot -Tsvg plan.dot`` reproduces the paper's plan diagrams
for any program.

The per-step-kind drawing rules (edge labels) come from the operator
registry (:mod:`repro.runtime.registry`), so the visualiser no longer
keeps its own isinstance switch over the step kinds: any step the
registry knows can be drawn.

Pass lint ``diagnostics`` (a :class:`repro.lint.LintReport` or any iterable
of :class:`repro.lint.Diagnostic`) to turn the diagram into a lint report:
instances that carry findings are filled (salmon for errors, khaki for
warnings) and their labels list the rule ids.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.plan import MatrixInstance, Plan
from repro.core.stages import schedule_stages
from repro.runtime.registry import spec_for


def plan_to_dot(
    plan: Plan,
    title: str = "DMac execution plan",
    diagnostics: Iterable | None = None,
) -> str:
    """Render a plan as a Graphviz DOT document (stages as clusters).

    With ``diagnostics``, nodes named by a finding's subject are coloured
    by its severity and annotated with the rule id(s).
    """
    if plan.num_stages == 0:
        schedule_stages(plan)
    findings = _findings_by_subject(diagnostics)

    node_ids: dict[MatrixInstance, str] = {}
    node_stage: dict[MatrixInstance, int] = {}
    edges: list[str] = []
    scalar_nodes: list[tuple[str, int]] = []

    def node(instance: MatrixInstance, stage: int) -> str:
        if instance not in node_ids:
            node_ids[instance] = f"n{len(node_ids)}"
            node_stage[instance] = stage
        return node_ids[instance]

    for step in plan.steps:
        spec = spec_for(step)
        label = spec.edge_label(step)
        output = step.output_instance()
        scalar = step.scalar_output()
        style = _edge_style(step.communicates)
        sources = [node(instance, step.stage) for instance in step.inputs()]
        if output is not None:
            out_stage = step.stage + (1 if step.communicates else 0)
            target = node(output, out_stage)
            for source in sources:
                edges.append(f'{source} -> {target} [label="{label}"{style}]')
        elif scalar is not None and sources:
            # A matrix-to-scalar reduction: draw the scalar as a box.
            scalar_id = f"s{len(scalar_nodes)}"
            scalar_nodes.append((f'{scalar_id} [label="{scalar}" shape=box]', step.stage))
            for source in sources:
                edges.append(f'{source} -> {scalar_id} [label="{label}"{style}]')
        # else: driver-only arithmetic (scalar-compute) draws nothing.

    by_stage: dict[int, list[str]] = defaultdict(list)
    for instance, ident in node_ids.items():
        by_stage[node_stage[instance]].append(
            _node_declaration(ident, instance, findings.get(str(instance)))
        )
    for declaration, stage in scalar_nodes:
        by_stage[stage].append(declaration)

    lines = [
        "digraph plan {",
        f'  label="{title}";',
        "  rankdir=TB;",
        "  node [fontname=Helvetica];",
    ]
    for stage in sorted(by_stage):
        lines.append(f"  subgraph cluster_stage_{stage} {{")
        lines.append(f'    label="stage {stage}"; style=dashed;')
        for declaration in by_stage[stage]:
            lines.append(f"    {declaration};")
        lines.append("  }")
    for edge in edges:
        lines.append(f"  {edge};")
    lines.append("}")
    return "\n".join(lines)


def _edge_style(communicates: bool) -> str:
    return ' color=red penwidth=2' if communicates else ""


def _findings_by_subject(diagnostics: Iterable | None) -> dict[str, list]:
    """Group lint findings by their subject instance's string form."""
    grouped: dict[str, list] = {}
    for diagnostic in diagnostics or ():
        if diagnostic.subject is not None:
            grouped.setdefault(diagnostic.subject, []).append(diagnostic)
    return grouped


def _node_declaration(ident: str, instance, findings: list | None) -> str:
    """One DOT node; findings colour it and stack rule ids in the label."""
    if not findings:
        return f'{ident} [label="{instance}" shape=ellipse]'
    rules = sorted({d.rule for d in findings})
    severities = {d.severity.value for d in findings}
    color = "lightsalmon" if "error" in severities else "khaki"
    label = f"{instance}\\n{', '.join(rules)}"
    return (
        f'{ident} [label="{label}" shape=ellipse '
        f'style=filled fillcolor={color}]'
    )

"""Dataset generators: synthetic sparse matrices, graph surrogates,
Netflix-like ratings (see DESIGN.md, Substitutions)."""

from repro.datasets.graphs import (
    PAPER_GRAPHS,
    GraphSpec,
    graph_like,
    row_normalize,
)
from repro.datasets.netflix import (
    NETFLIX_MOVIES,
    NETFLIX_SPARSITY,
    NETFLIX_USERS,
    netflix_like,
)
from repro.datasets.synthetic import dense_random, scaled_rows_series, sparse_random

__all__ = [
    "GraphSpec",
    "NETFLIX_MOVIES",
    "NETFLIX_SPARSITY",
    "NETFLIX_USERS",
    "PAPER_GRAPHS",
    "dense_random",
    "graph_like",
    "netflix_like",
    "row_normalize",
    "scaled_rows_series",
    "sparse_random",
]

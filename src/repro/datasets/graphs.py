"""Scaled surrogates for the paper's four real-world graphs (Table 3).

The originals (soc-pokec, cit-Patents, LiveJournal, Wikipedia) are not
bundled; what the experiments actually exercise is each graph's *shape
statistics* -- node count, average degree, and a heavy-tailed degree
distribution -- which drive block sparsity, memory, and communication.
:func:`graph_like` generates a random adjacency matrix with the original
node/edge **ratio** at a configurable scale, with out-degrees drawn from a
Zipf-like tail (real graphs' degree skew is what makes the paper's
block-size estimate deviate slightly from Equation 3; see Section 6.3).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class GraphSpec:
    """Shape statistics of one of the paper's graphs (Table 3)."""

    name: str
    nodes: int
    edges: int

    @property
    def average_degree(self) -> float:
        return self.edges / self.nodes


#: The paper's Table 3, verbatim.
PAPER_GRAPHS = {
    "soc-pokec": GraphSpec("soc-pokec", 1_632_803, 30_622_564),
    "cit-Patents": GraphSpec("cit-Patents", 3_774_768, 16_518_978),
    "LiveJournal": GraphSpec("LiveJournal", 4_847_571, 68_993_773),
    "Wikipedia": GraphSpec("Wikipedia", 25_942_254, 601_038_301),
}


def graph_like(
    name: str,
    scale: float = 1e-3,
    seed: int = 0,
    zipf_exponent: float = 2.1,
) -> np.ndarray:
    """A random adjacency matrix with ``name``'s node/edge ratio.

    Args:
        name: one of the Table 3 graph names.
        scale: node-count scale factor relative to the real graph.
        seed: RNG seed.
        zipf_exponent: tail exponent of the out-degree distribution.

    Returns a dense numpy array (entries in {0, 1}); split it into blocks
    with ``storage="sparse"`` to exercise the CSC machinery.
    """
    if name not in PAPER_GRAPHS:
        raise ReproError(
            f"unknown graph {name!r}; choose from {sorted(PAPER_GRAPHS)}"
        )
    spec = PAPER_GRAPHS[name]
    nodes = max(4, int(spec.nodes * scale))
    edges = max(nodes, int(round(nodes * spec.average_degree)))
    rng = np.random.default_rng(seed)

    # Heavy-tailed out-degrees, capped at the node count and rescaled to hit
    # the target edge total.
    degrees = rng.zipf(zipf_exponent, size=nodes).astype(np.float64)
    degrees = np.minimum(degrees, nodes - 1)
    degrees *= edges / degrees.sum()
    degrees = np.maximum(1, np.round(degrees)).astype(np.int64)

    adjacency = np.zeros((nodes, nodes), dtype=np.float64)
    for source in range(nodes):
        out_degree = min(int(degrees[source]), nodes - 1)
        targets = rng.choice(nodes, size=out_degree, replace=False)
        adjacency[source, targets] = 1.0
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def row_normalize(adjacency: np.ndarray) -> np.ndarray:
    """Row-normalise an adjacency matrix (the PageRank ``link`` matrix;
    dangling nodes keep an all-zero row)."""
    out = adjacency.astype(np.float64, copy=True)
    sums = out.sum(axis=1, keepdims=True)
    nonzero = sums[:, 0] > 0
    out[nonzero] /= sums[nonzero]
    return out

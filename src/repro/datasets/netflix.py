"""Netflix-like ratings matrix (the paper's GNMF / CF / SVD dataset).

The Netflix prize data -- 480,189 users x 17,770 movies, ~100M ratings in
{1..5}, i.e. sparsity ~0.012 -- is proprietary; the substitution generates
a ratings matrix with the same aspect ratio and sparsity at a configurable
scale.  Planner decisions (and therefore every communication result) depend
only on dimensions and sparsity, which are preserved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: Netflix prize dimensions.
NETFLIX_USERS = 480_189
NETFLIX_MOVIES = 17_770
NETFLIX_SPARSITY = 0.0117  # ~100.5M ratings / (480189 * 17770)


def netflix_like(
    scale: float = 1e-2,
    sparsity: float = NETFLIX_SPARSITY,
    seed: int = 0,
    ensure_coverage: bool = True,
) -> np.ndarray:
    """A users x movies ratings matrix with Netflix's shape statistics.

    Ratings are integers in {1..5}; zero means "not rated".  With
    ``ensure_coverage`` every row and column gets at least one rating --
    a property the real dataset has (every user rated and every movie was
    rated) and one GNMF's multiplicative updates rely on: an all-zero row
    or column drives a factor row to 0/0.
    """
    if not 0 < scale <= 1:
        raise ReproError(f"scale must lie in (0, 1], got {scale}")
    rows = max(8, int(NETFLIX_USERS * scale))
    cols = max(8, int(NETFLIX_MOVIES * scale))
    rng = np.random.default_rng(seed)
    out = np.zeros((rows, cols), dtype=np.float64)
    nnz = int(round(rows * cols * sparsity))
    if nnz:
        flat = rng.choice(rows * cols, size=nnz, replace=False)
        out.flat[flat] = rng.integers(1, 6, size=nnz).astype(np.float64)
    if ensure_coverage:
        for row in np.flatnonzero(out.sum(axis=1) == 0):
            out[row, rng.integers(cols)] = float(rng.integers(1, 6))
        for col in np.flatnonzero(out.sum(axis=0) == 0):
            out[rng.integers(rows), col] = float(rng.integers(1, 6))
    return out

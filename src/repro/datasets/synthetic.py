"""Synthetic sparse matrix generator (paper Sections 6.1 and 6.5).

The paper's scalability experiments use "a random data generator which can
produce a sparse matrix V with d rows and w columns in s sparsity", fixing
the number of columns and scaling the rows so the non-zero count grows
linearly ("This matrix generating process is the same as in [SystemML]").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def sparse_random(
    rows: int,
    cols: int,
    sparsity: float,
    seed: int = 0,
    value_offset: float = 0.1,
    ensure_coverage: bool = False,
) -> np.ndarray:
    """A dense numpy array holding a random sparse matrix.

    Non-zero positions are uniform; values are uniform in
    ``[value_offset, 1 + value_offset)`` so they are strictly positive
    (GNMF's multiplicative updates require non-negative data and the
    positive offset keeps denominators away from zero).  With
    ``ensure_coverage`` every row and column receives at least one
    non-zero, which GNMF needs to avoid 0/0 factor rows.
    """
    if rows < 1 or cols < 1:
        raise ReproError(f"matrix dimensions must be >= 1, got {rows}x{cols}")
    if not 0.0 <= sparsity <= 1.0:
        raise ReproError(f"sparsity must lie in [0, 1], got {sparsity}")
    rng = np.random.default_rng(seed)
    out = np.zeros((rows, cols), dtype=np.float64)
    nnz = int(round(rows * cols * sparsity))
    if nnz:
        flat = rng.choice(rows * cols, size=nnz, replace=False)
        out.flat[flat] = rng.random(nnz) + value_offset
    if ensure_coverage and sparsity > 0:
        for row in np.flatnonzero(out.sum(axis=1) == 0):
            out[row, rng.integers(cols)] = rng.random() + value_offset
        for col in np.flatnonzero(out.sum(axis=0) == 0):
            out[rng.integers(rows), col] = rng.random() + value_offset
    return out


def dense_random(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    """A dense uniform(0, 1) matrix (the paper's MM-Dense input V2)."""
    return sparse_random(rows, cols, 1.0, seed)


def scaled_rows_series(
    base_rows: int,
    cols: int,
    sparsity: float,
    scale_factors: tuple[float, ...],
    seed: int = 0,
) -> list[tuple[int, np.ndarray]]:
    """The Figure 10(a,b) series: fixed column count, growing row count,
    so the number of non-zeros varies linearly.  Returns
    ``[(nnz, matrix), ...]``."""
    series = []
    for index, factor in enumerate(scale_factors):
        rows = max(1, int(base_rows * factor))
        matrix = sparse_random(rows, cols, sparsity, seed=seed + index)
        series.append((int(np.count_nonzero(matrix)), matrix))
    return series

"""repro.elastic: an elastic worker pool for the simulated cluster.

Stateless workers pull block work from the static *slot* topology and may
join or leave between (and during) stages, driven by a seeded
deterministic membership timeline (the ``--elastic`` grammar).  See
``docs/elastic.md`` for the membership grammar, the slot/member split,
the elasticity policies and the determinism contract.
"""

from repro.elastic.backend import ElasticBackend
from repro.elastic.context import ElasticClusterContext
from repro.elastic.policies import (
    CostCappedPolicy,
    ElasticityPolicy,
    FixedPolicy,
    LoadTrackingPolicy,
    plan_stage_flop_weights,
    plan_stage_weights,
    timeline_spec,
)
from repro.elastic.pool import ElasticPool, Transition
from repro.elastic.spec import EVENT_KINDS, ElasticEvent, parse_elastic_spec
from repro.errors import ElasticSpecError

__all__ = [
    "EVENT_KINDS",
    "CostCappedPolicy",
    "ElasticBackend",
    "ElasticClusterContext",
    "ElasticEvent",
    "ElasticPool",
    "ElasticityPolicy",
    "FixedPolicy",
    "LoadTrackingPolicy",
    "Transition",
    "parse_elastic_spec",
    "plan_stage_flop_weights",
    "plan_stage_weights",
    "ElasticSpecError",
    "timeline_spec",
]

"""The elastic execution backend.

:class:`ElasticBackend` runs plans on an
:class:`~repro.elastic.context.ElasticClusterContext` and applies the
pool's membership timeline as stages execute:

* before a stage-graph node runs, every timeline event due at or before
  its (cumulative) stage is applied;
* a **leave** loses the departed member's in-memory blocks: live
  partitioned instances with blocks on its slots are invalidated, and the
  first consumer recomputes them through lineage recovery (broadcast
  replicas survive -- every member holds a full copy);
* a **join** rendezvous-moves the joiner's fair share of slots: live
  blocks on the moved slots are shipped to the joiner, metered as
  ``rebalance`` traffic, and each joiner additionally fetches a replica
  of every live broadcast matrix.

Transition application is idempotent under stage retries: invalidation
scans the *current* live set (an instance lost by a failed attempt is
simply absent the second time), and the pool's cursor only advances once
the side effects have completed.

All of this is driven by the executor's ``begin_node`` hook; the kernels,
the primitives and the ledger are exactly the static backend's.
"""

from __future__ import annotations

from repro.elastic.context import ElasticClusterContext
from repro.elastic.pool import ElasticPool, Transition
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.schemes import Scheme
from repro.rdd.sizeof import model_sizeof
from repro.runtime.backend import SimulatedBackend
from repro.runtime.graph import StageNode
from repro.runtime.resources import ResourceManager
from repro.runtime.scheduler import SchedulerReport


class ElasticBackend(SimulatedBackend):
    """SimulatedBackend over an elastic pool of join/leave-able members."""

    context: ElasticClusterContext

    def __init__(self, context: ElasticClusterContext) -> None:
        super().__init__(context)
        #: Cumulative rebalance traffic this backend charged (model bytes).
        self.rebalance_bytes = 0

    @property
    def pool(self) -> ElasticPool:
        return self.context.pool

    # -- block cache accounting ---------------------------------------------

    def cached_bytes(self, matrix: DistributedMatrix) -> dict[int, int]:
        """Resident bytes aggregated onto the slots' *current owner members*
        (a member owning several slots is charged for all of them)."""
        out: dict[int, int] = {}
        for slot in range(self.pool.slots):
            nbytes = sum(
                model_sizeof(block)
                for block in matrix.worker_grid(slot).values()
            )
            if nbytes:
                member = self.pool.member_for_slot(slot)
                out[member] = out.get(member, 0) + nbytes
        return out

    # -- membership transitions ----------------------------------------------

    def begin_node(self, node: StageNode, resources: ResourceManager) -> None:
        """Apply every timeline event due before this node's stage.

        Called by the executor at the start of each stage-graph node (the
        elastic scheduler dispatches serially, so stages see transitions in
        a deterministic order).  Safe to call again on a retried node: each
        transition commits only after its side effects succeeded.
        """
        while True:
            transition = self.pool.next_transition(node.stage)
            if transition is None:
                return
            if transition.event.kind == "leave":
                self._apply_leave(transition, resources)
            else:
                self._apply_join(transition, resources)
            self.pool.commit(transition)

    def _apply_leave(
        self, transition: Transition, resources: ResourceManager
    ) -> None:
        """The departed member's in-memory blocks are gone: invalidate live
        partitioned instances with blocks on its slots (lineage recovery
        rebuilds them on first use).  Broadcast matrices survive -- every
        remaining member holds a full replica."""
        lost_slots = tuple(
            sorted(
                slot
                for slot, owner in transition.moved_slots.items()
                if owner == transition.departed
            )
        )
        for instance, matrix in resources.live_items():
            if matrix.scheme is Scheme.BROADCAST:
                continue
            if any(matrix.worker_grid(slot) for slot in lost_slots):
                resources.invalidate(instance)
                if hasattr(resources, "blocks_lost"):
                    resources.blocks_lost += 1

    def _apply_join(
        self, transition: Transition, resources: ResourceManager
    ) -> None:
        """Ship live blocks on the moved slots to their new owner and give
        each joiner a replica of every live broadcast matrix; all of it is
        metered as ``rebalance`` traffic (and subject to injected transfer
        faults like any other transfer)."""
        new_owner = self.pool.assignment_for(transition.members_after)
        moved = sorted(transition.moved_slots)
        links: dict[tuple[int, int], int] = {}
        moved_bytes = 0
        replica_bytes = 0
        for __, matrix in resources.live_items():
            if matrix.scheme is Scheme.BROADCAST:
                replica_bytes += matrix.model_nbytes() * len(transition.joined)
                continue
            for slot in moved:
                nbytes = sum(
                    model_sizeof(block)
                    for block in matrix.worker_grid(slot).values()
                )
                if nbytes:
                    link = (transition.moved_slots[slot], new_owner[slot])
                    links[link] = links.get(link, 0) + nbytes
                    moved_bytes += nbytes
        if moved_bytes:
            self.context.transfer("rebalance", moved_bytes, links)
            self.rebalance_bytes += moved_bytes
        if replica_bytes:
            self.context.transfer("rebalance", replica_bytes)
            self.rebalance_bytes += replica_bytes

    # -- reporting -----------------------------------------------------------

    def elastic_summary(
        self,
        report: SchedulerReport,
        *,
        events_from: int = 0,
        rebalance_bytes_before: int = 0,
    ) -> dict[str, object]:
        """What elasticity did to one run (deterministic, simulation-only).

        ``worker_seconds`` integrates each node's simulated duration over
        the members live at its (cumulative) stage -- the "cluster cost"
        axis the elasticity benchmarks trade against throughput;
        ``slot_seconds`` is the same integral billed at the static slot
        count, i.e. what a fixed peak-size cluster would have cost.
        """
        pool = self.pool
        worker_seconds = 0.0
        slot_seconds = 0.0
        for timing in report.timings:
            live = len(pool.members_at(pool.stage_offset + timing.stage))
            worker_seconds += timing.duration_seconds * live
            slot_seconds += timing.duration_seconds * pool.slots
        return {
            "slots": pool.slots,
            "seed": pool.seed,
            "initial_members": pool.initial,
            "final_members": len(pool.members),
            "events": list(pool.applied_log[events_from:]),
            "worker_seconds": worker_seconds,
            "slot_seconds": slot_seconds,
            "rebalance_bytes": self.rebalance_bytes - rebalance_bytes_before,
        }

"""An elastic :class:`~repro.rdd.context.ClusterContext`.

The physical primitives address workers positionally -- partition ``p``
lives on ``context.engines[p % K]`` -- so this context keeps the *slot*
topology static (``num_workers`` is the pool's slot count, the peak
membership of the timeline) and resolves slots to live *members* at
engine-lookup time.  Everything the ledger records is therefore identical
to a static ``slots``-worker cluster; only the simulated compute time
changes, because a member owning several slots accumulates all their
flops on one engine and becomes the slowest worker of the phase.

Accounting methods that enumerate workers (flop snapshots, peak memory)
are overridden to run over *member* engines: the inherited versions walk
the slot view and would count a member once per slot it owns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.config import ClusterConfig
from repro.elastic.pool import ElasticPool
from repro.errors import ClusterError
from repro.localexec.engine import LocalEngine
from repro.rdd.context import ClusterContext

if TYPE_CHECKING:
    from repro.elastic.backend import ElasticBackend


class _SlotEngines:
    """Sequence view mapping slot index -> the owning member's engine.

    The primitives index this exactly like the static engine list; the
    indirection through the pool's current assignment is what makes a
    membership change take effect without moving any partition.
    """

    def __init__(self, context: "ElasticClusterContext") -> None:
        self._context = context

    def __getitem__(self, slot: int) -> LocalEngine:
        return self._context.engine_for_slot(slot)

    def __len__(self) -> int:
        return self._context.pool.slots

    def __iter__(self) -> Iterator[LocalEngine]:
        return (self[slot] for slot in range(len(self)))


class ElasticClusterContext(ClusterContext):
    """Cluster context whose workers may join and leave between stages."""

    def __init__(self, config: ClusterConfig, pool: ElasticPool) -> None:
        if config.num_workers != pool.slots:
            raise ClusterError(
                f"elastic context config carries {config.num_workers} workers "
                f"but the pool has {pool.slots} slots; build the config with "
                f"num_workers == pool.slots"
            )
        # Engines are created for every member the timeline will *ever*
        # admit (statically known), so flop attribution built once at run
        # start stays valid across joins, and a departed member's counters
        # survive for the final books.
        super().__init__(config)
        self.pool = pool
        self._member_engines: dict[int, LocalEngine] = {
            member: LocalEngine(
                threads=config.threads_per_worker,
                inplace=config.inplace,
                memory_limit_bytes=config.memory_limit_bytes,
                batched_matmul=config.batched_matmul,
                strassen=config.strassen,
                strassen_min_size=config.strassen_min_size,
            )
            for member in pool.members_ever
        }
        self.engines = _SlotEngines(self)  # type: ignore[assignment]

    # -- topology ------------------------------------------------------------

    def workers(self) -> tuple[int, ...]:
        """Every member id the timeline ever admits.

        Accounting keyed off this set (flop sources, cache charges) uses
        stable member ids; a departed member keeps its engine -- and its
        books -- so charges and discharges always find the same tracker.
        """
        return self.pool.members_ever

    def engine_for_worker(self, member: int) -> LocalEngine:
        engine = self._member_engines.get(member)
        if engine is None:
            raise ClusterError(f"unknown elastic member id {member}")
        return engine

    def engine_for_slot(self, slot: int) -> LocalEngine:
        if not 0 <= slot < self.pool.slots:
            raise ClusterError(
                f"slot {slot} out of range for {self.pool.slots}-slot pool"
            )
        return self._member_engines[self.pool.member_for_slot(slot)]

    def engine_for_partition(self, partition_index: int) -> LocalEngine:
        return self.engine_for_slot(self.worker_for_partition(partition_index))

    # -- clock integration ---------------------------------------------------

    def flops_snapshot(self) -> dict[int, tuple[int, int]]:
        """Per-*member* flop counters (the slot view would double-count a
        member once per slot it owns)."""
        return {
            member: (engine.stats.dense_flops, engine.stats.sparse_flops)
            for member, engine in self._member_engines.items()
        }

    # -- reporting -----------------------------------------------------------

    def peak_memory_bytes(self) -> int:
        return max(
            engine.tracker.peak_bytes for engine in self._member_engines.values()
        )

    def peak_memory_by_worker(self) -> list[int]:
        return [
            self._member_engines[member].tracker.peak_bytes
            for member in self.pool.members_ever
        ]

    # -- execution backend ---------------------------------------------------

    def make_backend(self) -> "ElasticBackend":
        from repro.elastic.backend import ElasticBackend

        return ElasticBackend(self)

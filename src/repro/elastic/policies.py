"""Elasticity policies: turning a plan's stage profile into a timeline.

A policy decides how many members the pool should have at every stage,
given the per-stage *weights* of the plan (how much work each stage
carries), and emits the join/leave events that step membership toward
those targets.  Three policies span the trade-off the elasticity
benchmarks sweep:

``FixedPolicy``
    Never scales: the determinism baseline, and the worker-seconds
    ceiling when sized at the peak.
``LoadTrackingPolicy``
    Sizes each stage proportionally to its share of the heaviest stage's
    weight, up to ``max_members`` -- throughput-greedy.
``CostCappedPolicy``
    Load tracking under a *worker-stage budget*: extra members go to the
    heaviest stages first and allocation stops when the budget is spent,
    trading a little throughput for a hard cost cap.

Policies are pure: the same weights always produce the same timeline, so
policy-driven elastic runs inherit the pool's determinism contract.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, Sequence

from repro.core.plan import Plan
from repro.elastic.spec import ElasticEvent
from repro.errors import ElasticSpecError


def plan_stage_weights(plan: Plan) -> list[float]:
    """Per-stage work weights of a staged plan: the number of steps in
    each stage (index 0 .. num_stages - 1; stages are 1-indexed in plans
    that start at stage 1 -- the weight list is indexed by ``stage``
    directly, so unused leading entries are simply zero)."""
    if not plan.steps:
        return []
    top = max(step.stage for step in plan.steps)
    weights = [0.0] * (top + 1)
    for step in plan.steps:
        weights[step.stage] += 1.0
    return weights


def plan_stage_flop_weights(plan: Plan, estimation_mode: str = "worst") -> list[float]:
    """Per-stage *flop* weights of a staged plan.

    :func:`plan_stage_weights` counts steps, which treats a scalar update
    and a dense multiplication as equal load; this variant prices each
    step with the admission cost model's conventions (``2 m k n`` scaled
    by left-operand sparsity for multiplications, one flop per cell for
    everything element-wise) so policies scale membership toward the
    stages that actually burn compute.
    """
    from repro.core.estimator import SizeEstimator
    from repro.core.plan import (
        AggregateStep,
        CellwiseStep,
        FusedCellwiseStep,
        MatMulStep,
        RowAggStep,
        ScalarMatrixStep,
        UnaryStep,
    )

    if not plan.steps:
        return []
    program = plan.program
    estimator = SizeEstimator(program, estimation_mode)

    def cellwise_flops(step: CellwiseStep) -> float:
        rows, cols = program.dims_of(step.op.left)
        return float(rows * cols)

    def step_flops(step: object) -> float:
        if isinstance(step, MatMulStep):
            m, k = program.dims_of(step.op.left)
            __, n = program.dims_of(step.op.right)
            density = min(1.0, estimator.sparsity_of(step.op.left))
            return 2.0 * m * k * n * density
        if isinstance(step, FusedCellwiseStep):
            return sum(cellwise_flops(inner) for inner in step.chain)
        if isinstance(step, CellwiseStep):
            return cellwise_flops(step)
        if isinstance(step, (ScalarMatrixStep, UnaryStep, RowAggStep, AggregateStep)):
            rows, cols = program.dims_of(step.op.operand)
            return float(rows * cols)
        return 0.0  # sources, transfers, scalar computes: negligible

    top = max(step.stage for step in plan.steps)
    weights = [0.0] * (top + 1)
    for step in plan.steps:
        weights[step.stage] += step_flops(step)
    return weights


def timeline_spec(events: Sequence[ElasticEvent]) -> str:
    """Render events back to ``--elastic`` grammar (parse round-trips)."""
    return "; ".join(event.describe() for event in events)


def _events_for_profile(profile: Sequence[int], initial: int) -> tuple[ElasticEvent, ...]:
    """Join/leave events stepping membership through ``profile`` (the
    target member count at each stage), starting from ``initial``."""
    events: list[ElasticEvent] = []
    current = initial
    for stage, target in enumerate(profile):
        if target < 1:
            raise ElasticSpecError(
                f"membership profile targets {target} members at stage {stage}"
            )
        if target > current:
            events.append(
                ElasticEvent(kind="join", stage=stage, count=target - current)
            )
        else:
            # One event per departure: each removes the youngest member.
            events.extend(
                ElasticEvent(kind="leave", stage=stage)
                for __ in range(current - target)
            )
        current = target
    return tuple(events)


class ElasticityPolicy(Protocol):
    """How a policy is consulted: stage weights in, timeline out."""

    @property
    def name(self) -> str: ...

    def timeline(
        self, weights: Sequence[float], initial: int
    ) -> tuple[ElasticEvent, ...]: ...


@dataclasses.dataclass(frozen=True)
class FixedPolicy:
    """Never scale: membership stays at ``initial`` for the whole run."""

    name: str = "fixed"

    def timeline(
        self, weights: Sequence[float], initial: int
    ) -> tuple[ElasticEvent, ...]:
        return ()


@dataclasses.dataclass(frozen=True)
class LoadTrackingPolicy:
    """Track the load: stage target = its share of the peak stage weight,
    scaled to ``max_members`` (never below one member)."""

    max_members: int
    name: str = "load-tracking"

    def timeline(
        self, weights: Sequence[float], initial: int
    ) -> tuple[ElasticEvent, ...]:
        if self.max_members < 1:
            raise ElasticSpecError(
                f"max_members must be >= 1, got {self.max_members}"
            )
        peak = max(weights, default=0.0)
        if peak <= 0:
            return ()
        profile = [
            max(1, round(self.max_members * weight / peak)) for weight in weights
        ]
        return _events_for_profile(profile, initial)


@dataclasses.dataclass(frozen=True)
class CostCappedPolicy:
    """Load tracking under a worker-stage budget.

    Every stage starts at one member (``sum(len(weights))`` worker-stages
    of baseline cost); the remaining budget buys extra members one at a
    time, always for the stage with the largest per-member weight, until
    the budget is spent or every stage is at ``max_members``.
    """

    max_members: int
    budget_worker_stages: float
    name: str = "cost-capped"

    def timeline(
        self, weights: Sequence[float], initial: int
    ) -> tuple[ElasticEvent, ...]:
        if self.max_members < 1:
            raise ElasticSpecError(
                f"max_members must be >= 1, got {self.max_members}"
            )
        if not weights:
            return ()
        profile = [1] * len(weights)
        spent = float(len(weights))
        while spent + 1.0 <= self.budget_worker_stages:
            # The stage whose next member removes the most per-member load;
            # lowest stage wins ties, so allocation is deterministic.
            stage = max(
                range(len(weights)),
                key=lambda s: (
                    weights[s] / profile[s] if profile[s] < self.max_members else -1.0,
                    -s,
                ),
            )
            if profile[stage] >= self.max_members:
                break
            profile[stage] += 1
            spent += 1.0
        return _events_for_profile(profile, initial)

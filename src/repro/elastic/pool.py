"""The elastic worker pool: slots, members, and the membership timeline.

The static cluster's primitives address workers *positionally*: partition
``p`` lives on worker ``p % K``, engines sit in a list, accounting loops
run ``for w in range(K)``.  An elastic pool keeps that arithmetic intact by
splitting the worker id space in two:

* **slots** -- the logical worker positions the primitives see.  The slot
  count is *static* for a whole run: it is the peak membership the
  timeline ever reaches, so a partition's slot never moves and every byte
  the communication ledger records is independent of churn.
* **members** -- the physical workers that come and go.  Each slot is
  owned by exactly one live member, chosen by rendezvous (highest-random-
  weight) hashing, so a join steals only its fair share of slots and a
  leave scatters only the departed member's slots over the survivors.

Membership at any stage is a pure function of the (seeded) timeline, which
is what makes same-seed elastic runs byte-identical: the simulated clock
sees more or fewer members sharing the slots' flops, but the plan, the
partitioning and the shuffles never change.

The pool is consumed through a monotone cursor: the executor calls
:meth:`ElasticPool.next_transition` / :meth:`ElasticPool.commit` as stages
execute, applying each event's side effects (block loss on leave,
rebalance traffic on join) exactly once even across stage retries.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.elastic.spec import ElasticEvent, parse_elastic_spec
from repro.errors import ElasticSpecError


@dataclasses.dataclass(frozen=True)
class Transition:
    """One membership event, resolved against the pool state it fires in.

    ``moved_slots`` maps every slot whose owner changes to its *previous*
    owner -- on a leave these are the departed member's slots (their
    blocks are lost), on a join they are the slots the joiner takes over
    (their live blocks are shipped as rebalance traffic).
    """

    event: ElasticEvent
    joined: tuple[int, ...]  # member ids entering the pool
    departed: int | None  # member id leaving the pool
    members_before: tuple[int, ...]
    members_after: tuple[int, ...]
    moved_slots: dict[int, int]  # slot -> previous owner member

    def describe(self) -> str:
        who = (
            f"+{list(self.joined)}" if self.joined else f"-{self.departed}"
        )
        return (
            f"{self.event.describe()} {who}: "
            f"{len(self.members_before)} -> {len(self.members_after)} members, "
            f"{len(self.moved_slots)} slots moved"
        )


class ElasticPool:
    """Seeded deterministic membership over a static slot topology."""

    def __init__(
        self,
        events: str | tuple[ElasticEvent, ...],
        initial: int,
        seed: int = 0,
    ) -> None:
        if isinstance(events, str):
            events = parse_elastic_spec(events)
        if initial < 1:
            raise ElasticSpecError(
                f"elastic pool needs at least one initial member, got {initial}"
            )
        self.events = events
        self.initial = initial
        self.seed = seed
        # Validate the whole timeline up front and record the peak
        # membership: the peak is the slot count, fixed for the run.
        members = list(range(initial))
        next_id = initial
        ever = list(members)
        peak = len(members)
        for event in events:
            members, next_id, changed = self._step(members, next_id, event)
            ever.extend(changed)
            peak = max(peak, len(members))
        #: Logical worker positions; partition ``p`` lives on slot ``p % slots``.
        self.slots = peak
        #: Every member id the timeline ever admits (initial + joiners).
        self.members_ever = tuple(ever)
        # -- mutable cursor state (one run / one staged sequence) -----------
        self._members: list[int] = list(range(initial))
        self._next_id = initial
        self._applied = 0
        self._assignment = self.assignment_for(tuple(self._members))
        #: Cumulative stage offset across executed segments of a staged
        #: program -- event stages index the cumulative count.
        self.stage_offset = 0
        #: Human-readable log of committed transitions (reporting only).
        self.applied_log: list[str] = []

    # -- pure timeline queries ----------------------------------------------

    def members_at(self, stage: int) -> tuple[int, ...]:
        """The live member ids once every event at ``stage`` or earlier has
        fired -- a pure function of the timeline, independent of the cursor."""
        members = list(range(self.initial))
        next_id = self.initial
        for event in self.events:
            if event.stage > stage:
                break
            members, next_id, __ = self._step(members, next_id, event)
        return tuple(members)

    def assignment_for(self, members: tuple[int, ...]) -> dict[int, int]:
        """Slot -> owning member under bounded-load rendezvous hashing.

        Each slot ranks every live member by a seeded hash and takes the
        best-ranked one still under the load cap ``ceil(slots/|members|)``.
        The cap keeps the assignment perfectly balanced -- at full
        membership every member owns exactly one slot, so a churn-free
        elastic run costs the same simulated compute as the static cluster
        -- while the hash ranking keeps moves small when membership
        changes.  A pure function of ``(seed, slots, members)``.
        """
        cap = -(-self.slots // len(members))  # ceil division
        load = {member: 0 for member in members}
        assignment: dict[int, int] = {}
        for slot in range(self.slots):
            ranked = sorted(
                members, key=lambda m: (self._rank(slot, m), m), reverse=True
            )
            for member in ranked:
                if load[member] < cap:
                    assignment[slot] = member
                    load[member] += 1
                    break
        return assignment

    def _rank(self, slot: int, member: int) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}|{slot}|{member}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def _step(
        self, members: list[int], next_id: int, event: ElasticEvent
    ) -> tuple[list[int], int, list[int]]:
        """Apply one event to a membership list; returns the new list, the
        next fresh id, and the ids that joined (empty for a leave)."""
        if event.kind == "join":
            joined = list(range(next_id, next_id + event.count))
            return members + joined, next_id + event.count, joined
        # leave: the named member, or the youngest (highest id) by default.
        if event.worker is not None:
            if event.worker not in members:
                raise ElasticSpecError(
                    f"elastic event {event.describe()!r}: member {event.worker} "
                    f"is not live at stage {event.stage} (live: {members})"
                )
            target = event.worker
        else:
            target = max(members)
        if len(members) == 1:
            raise ElasticSpecError(
                f"elastic event {event.describe()!r} would empty the pool"
            )
        return [m for m in members if m != target], next_id, []

    # -- the execution cursor ------------------------------------------------

    @property
    def members(self) -> tuple[int, ...]:
        """The live members at the cursor's current position."""
        return tuple(self._members)

    def member_for_slot(self, slot: int) -> int:
        """The member currently owning ``slot``."""
        return self._assignment[slot]

    def slots_of(self, member: int) -> tuple[int, ...]:
        """The slots currently owned by ``member`` (empty if departed)."""
        return tuple(
            slot for slot in range(self.slots)
            if self._assignment[slot] == member
        )

    def next_transition(self, stage: int) -> Transition | None:
        """The next unapplied event firing at or before *cumulative* stage
        ``stage_offset + stage``, resolved against the current membership --
        or ``None``.  Does not mutate the pool: the caller performs the
        transition's side effects (which may fail and be retried) and only
        then calls :meth:`commit`.
        """
        if self._applied >= len(self.events):
            return None
        event = self.events[self._applied]
        if event.stage > self.stage_offset + stage:
            return None
        before = tuple(self._members)
        after_list, __, joined = self._step(
            list(self._members), self._next_id, event
        )
        after = tuple(after_list)
        new_assignment = self.assignment_for(after)
        moved = {
            slot: owner
            for slot, owner in self._assignment.items()
            if new_assignment[slot] != owner
        }
        departed = None
        if event.kind == "leave":
            (departed,) = set(before) - set(after)
        return Transition(
            event=event,
            joined=tuple(joined),
            departed=departed,
            members_before=before,
            members_after=after,
            moved_slots=moved,
        )

    def commit(self, transition: Transition) -> None:
        """Advance the cursor past ``transition`` (its side effects are done)."""
        self._members = list(transition.members_after)
        self._next_id = max(
            self._next_id,
            max(transition.joined, default=self._next_id - 1) + 1,
        )
        self._assignment = self.assignment_for(transition.members_after)
        self._applied += 1
        self.applied_log.append(transition.describe())

    def finish_segment(self, num_stages: int) -> None:
        """Advance the cumulative stage offset after one plan/segment ran."""
        self.stage_offset += num_stages

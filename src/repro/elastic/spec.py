"""The ``--elastic`` membership-timeline grammar.

A timeline is a list of clauses separated by ``;`` (or ``,``); each clause
is an event kind, ``@`` and the stage it fires before, optionally followed
by ``:key=value`` options::

    join@3                       # one worker joins before stage 3
    join@3:count=2               # two workers join before stage 3
    leave@5                      # the youngest member leaves before stage 5
    leave@5:worker=1             # member 1 leaves before stage 5
    join@2; leave@6:worker=0     # a full timeline

Kinds and their options:

``join``
    ``count`` new stateless workers (default 1) enter the pool and take
    over their rendezvous share of the logical slots; live blocks on the
    moved slots are shipped to the joiner (metered as ``rebalance``
    traffic).
``leave``
    One member departs -- ``worker=<id>`` names it, the default is the
    youngest (highest-id) live member.  Its in-memory blocks are lost;
    instances with blocks on its slots are invalidated and recomputed
    through lineage on first use.

Stages are the plan's stage numbers (``repro stages <app>`` lists them);
for staged convergence programs they index the *cumulative* stage count
across segments.  Events at a stage past the plan's end simply never fire.
The timeline is static: membership at any stage is a pure function of this
spec, which is what keeps same-seed elastic runs byte-identical.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import ElasticSpecError

EVENT_KINDS = ("join", "leave")

_KEYS_BY_KIND: dict[str, frozenset[str]] = {
    "join": frozenset({"count"}),
    "leave": frozenset({"worker"}),
}

_CLAUSE_RE = re.compile(r"^(?P<kind>[a-z]+)\s*@\s*(?P<stage>-?\d+)(?P<options>(?::[^:]+)*)$")


@dataclasses.dataclass(frozen=True)
class ElasticEvent:
    """One parsed membership event."""

    kind: str  # "join" | "leave"
    stage: int  # fires before the first node of this (cumulative) stage
    count: int = 1  # join only: how many workers enter
    worker: int | None = None  # leave only: which member departs

    def describe(self) -> str:
        parts = [f"{self.kind}@{self.stage}"]
        if self.kind == "join" and self.count != 1:
            parts.append(f"count={self.count}")
        if self.kind == "leave" and self.worker is not None:
            parts.append(f"worker={self.worker}")
        return ":".join(parts)


def parse_elastic_spec(spec: str) -> tuple[ElasticEvent, ...]:
    """Parse an ``--elastic`` string into events, ordered by stage
    (:class:`ElasticSpecError` on malformed input).

    An empty string is a valid timeline with no events: the pool then
    behaves like the static cluster, which is the determinism baseline the
    tests compare against.
    """
    events: list[ElasticEvent] = []
    for raw in re.split(r"[;,]", spec):
        raw = raw.strip()
        if not raw:
            continue
        events.append(_parse_clause(raw))
    # Stable sort by stage: events at the same stage apply in spec order.
    events.sort(key=lambda event: event.stage)
    return tuple(events)


def _parse_clause(raw: str) -> ElasticEvent:
    match = _CLAUSE_RE.match(raw)
    if match is None:
        raise ElasticSpecError(
            f"malformed elastic clause {raw!r} (expected kind@stage[:key=value...], "
            f"e.g. 'join@3' or 'leave@5:worker=1')"
        )
    kind = match.group("kind")
    if kind not in EVENT_KINDS:
        raise ElasticSpecError(
            f"unknown elastic event kind {kind!r} "
            f"(expected one of {', '.join(EVENT_KINDS)})"
        )
    stage = int(match.group("stage"))
    if stage < 0:
        raise ElasticSpecError(f"stage must be >= 0, got {stage} in {raw!r}")
    values: dict[str, int] = {}
    for item in filter(None, match.group("options").split(":")):
        key, sep, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key or not value:
            raise ElasticSpecError(f"malformed option {item!r} in clause {raw!r}")
        if key not in _KEYS_BY_KIND[kind]:
            raise ElasticSpecError(
                f"option {key!r} is not valid for elastic event {kind!r}"
            )
        if key in values:
            raise ElasticSpecError(f"duplicate option {key!r} in clause {raw!r}")
        try:
            values[key] = int(value)
        except ValueError:
            raise ElasticSpecError(
                f"{key} must be an integer, got {value!r} in {raw!r}"
            ) from None
    count = values.get("count", 1)
    if count < 1:
        raise ElasticSpecError(f"count must be >= 1, got {count} in {raw!r}")
    worker = values.get("worker")
    if worker is not None and worker < 0:
        raise ElasticSpecError(f"worker must be >= 0, got {worker} in {raw!r}")
    return ElasticEvent(kind=kind, stage=stage, count=count, worker=worker)

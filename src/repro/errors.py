"""Exception hierarchy for the repro (DMac) library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """Operands have incompatible dimensions for the requested operation."""


class BlockError(ReproError):
    """A block-level kernel was given malformed or mismatched blocks."""


class SchemeError(ReproError):
    """A partition-scheme constraint was violated or an unknown scheme used."""


class PlanError(ReproError):
    """The planner could not produce a valid execution plan."""


class LintError(PlanError):
    """Static analysis found error-severity findings in a plan
    (raised by sessions configured with ``lint="error"``)."""


class VerificationError(PlanError):
    """The :mod:`repro.verify` dataflow framework rejected a plan
    (hazards, unsound facts, or a failed certification obligation)."""


class TranslationValidationError(VerificationError):
    """An optimizer rewrite could not be certified equivalence-preserving.

    Raised by :func:`repro.planopt.optimize_plan` *before* the rewritten
    plan can execute; carries the pass name and the failed obligations.
    """

    def __init__(
        self,
        message: str,
        *,
        pass_name: str | None = None,
        obligations: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.pass_name = pass_name
        self.obligations = obligations


class ExecutionError(ReproError):
    """A plan failed during distributed execution."""


class TraceReconciliationError(ExecutionError):
    """A traced run's summed bytes/seconds disagree with the metering
    layer's own books (CommunicationLedger / SimulatedClock)."""


class ProgramError(ReproError):
    """A matrix program is malformed (unknown variable, bad operator, ...)."""


class ClusterError(ReproError):
    """The simulated cluster was misused (bad worker id, closed context, ...)."""


class MemoryLimitExceeded(ExecutionError):
    """A worker exceeded its configured memory budget during local execution."""


class StageExecutionError(ExecutionError):
    """A stage-graph node failed during scheduled execution.

    Wraps the first failure the stage scheduler observed with its context:
    the failing node id, the stage number, the step kinds the node carries,
    and how many attempts were made before giving up.  The original
    exception is chained as ``__cause__`` (also available as ``cause``).
    """

    def __init__(
        self,
        message: str,
        *,
        node: int | None = None,
        stage: int | None = None,
        step_kinds: tuple[str, ...] = (),
        attempts: int = 1,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.stage = stage
        self.step_kinds = step_kinds
        self.attempts = attempts
        self.cause = cause


class ServiceError(ReproError):
    """The :mod:`repro.serve` service layer was misused (unknown tenant,
    malformed batch script, daemon protocol violation, ...)."""


class AdmissionError(ServiceError):
    """Base class for typed job rejections by the admission controller.

    Every subclass carries ``tenant`` and ``reason`` (a stable machine
    token, also used in service reports) so clients can branch on the
    rejection kind without parsing messages.
    """

    reason = "rejected"

    def __init__(self, message: str, *, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


class JobTooLargeError(AdmissionError):
    """Predicted bytes or flops exceed the service's per-job ceiling."""

    reason = "job-too-large"


class TenantQuotaExceededError(AdmissionError):
    """The job's predicted peak memory exceeds the tenant's quota."""

    reason = "memory-quota"


class QueueFullError(AdmissionError):
    """The tenant's (or the service's) queue backlog is at capacity."""

    reason = "queue-full"


class BacklogExceededError(AdmissionError):
    """Admitting the job would push the queue's *predicted runtime*
    backlog past the service cap (a time bound, not a job-count bound)."""

    reason = "backlog"


class FaultSpecError(ReproError):
    """A ``--faults`` specification string could not be parsed."""


class ElasticSpecError(ReproError):
    """An ``--elastic`` membership-timeline string could not be parsed, or
    the timeline is invalid (e.g. it would empty the worker pool)."""


class FaultInjected(ExecutionError):
    """Base class for failures injected by :mod:`repro.faults`.

    ``retryable`` marks transient faults the stage scheduler may retry with
    backoff; permanent faults (a lost block that cannot be recovered) are
    re-raised immediately.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        worker: int | None = None,
        stage: int | None = None,
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.stage = stage


class WorkerCrashed(FaultInjected):
    """An injected worker crash killed the stage attempt (retryable)."""

    retryable = True


class TransferFault(FaultInjected):
    """An injected transient failure aborted a cross-worker transfer
    (retryable: the scheduler re-runs the stage after backoff)."""

    retryable = True


class ShuffleBlockLost(FaultInjected):
    """A consumed instance's blocks are gone and could not be recovered."""

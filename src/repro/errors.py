"""Exception hierarchy for the repro (DMac) library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """Operands have incompatible dimensions for the requested operation."""


class BlockError(ReproError):
    """A block-level kernel was given malformed or mismatched blocks."""


class SchemeError(ReproError):
    """A partition-scheme constraint was violated or an unknown scheme used."""


class PlanError(ReproError):
    """The planner could not produce a valid execution plan."""


class LintError(PlanError):
    """Static analysis found error-severity findings in a plan
    (raised by sessions configured with ``lint="error"``)."""


class ExecutionError(ReproError):
    """A plan failed during distributed execution."""


class ProgramError(ReproError):
    """A matrix program is malformed (unknown variable, bad operator, ...)."""


class ClusterError(ReproError):
    """The simulated cluster was misused (bad worker id, closed context, ...)."""


class MemoryLimitExceeded(ExecutionError):
    """A worker exceeded its configured memory budget during local execution."""

"""Deterministic fault injection, lineage recovery, straggler mitigation.

The paper's DMac prototype runs on Spark and silently inherits RDD lineage
fault tolerance; this package gives the in-process substrate the same
properties, *measurably*: a seeded :class:`ChaosEngine` injects worker
crashes, lost blocks, transient transfer failures and straggler slowdowns
at named points, the runtime recovers (retry with capped backoff, lineage
recomputation, periodic checkpoints, speculative re-execution), and every
recovery cost is charged to the simulated clock and the communication
ledger so "what does a failure cost?" is a reproducible number.

Entry points: ``repro chaos <app> --seed S --faults SPEC`` on the command
line, or ``session.run(program, chaos=ChaosEngine(seed, spec))`` in code.
"""

from repro.faults.chaos import ChaosEngine
from repro.faults.lineage import LineageTracker
from repro.faults.recovery import CheckpointStore, RecoveringResources
from repro.faults.report import (
    RecoveryLog,
    build_chaos_report,
    format_chaos_report,
    summarise_recovery,
)
from repro.faults.spec import FAULT_KINDS, FaultClause, parse_fault_spec

__all__ = [
    "FAULT_KINDS",
    "ChaosEngine",
    "CheckpointStore",
    "FaultClause",
    "LineageTracker",
    "RecoveringResources",
    "RecoveryLog",
    "build_chaos_report",
    "format_chaos_report",
    "parse_fault_spec",
    "summarise_recovery",
]

"""The ChaosEngine: seeded, deterministic fault injection.

Every potential fault site is a *named point* -- a string built from the
clause index and stable coordinates of the site (stage-graph node, attempt
number, transfer ordinal within the node, instance name).  Whether a clause
fires at a point is decided by hashing ``seed | point`` (BLAKE2b) against
the clause's probability, so the decision depends only on the seed and the
plan structure -- never on wall-clock time, host thread scheduling or the
order in which concurrent stages happen to run.  Fire budgets (``times``)
are likewise tracked *per point family* (per stage island, per instance),
not globally, so no budget is consumed in host-thread order.

The engine is installed on the backend for the duration of one execution
(:meth:`repro.runtime.backend.Backend.install_chaos`); with none installed
every hook site is a ``None``-check and the run is bit-identical to a
build without this module.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import threading
from typing import Callable, Iterator

from repro.errors import TransferFault, WorkerCrashed
from repro.faults.spec import FaultClause, parse_fault_spec
from repro.trace.emit import active_tracer, current_stage


class _StageScope:
    """Where the current thread is executing (one stage-graph node attempt)."""

    __slots__ = ("node", "stage", "attempt", "transfer_ordinal")

    def __init__(self, node: int, stage: int, attempt: int) -> None:
        self.node = node
        self.stage = stage
        self.attempt = attempt
        self.transfer_ordinal = 0  # transfers seen so far in this attempt


#: The scope of the stage currently executing on this thread (if any).
_SCOPE: contextvars.ContextVar[_StageScope | None] = contextvars.ContextVar(
    "repro_chaos_scope", default=None
)

_MAX_HASH = float(2**64)


class ChaosEngine:
    """Injects the faults of a parsed spec at deterministic points.

    Thread-safe: hooks are called from concurrent scheduler threads; all
    mutable state (fire budgets, attempt counters, the injected-event list)
    is lock-protected, and every *decision* is a pure function of the seed
    and the point name, so concurrency cannot change what fires.
    """

    def __init__(self, seed: int, faults: str | tuple[FaultClause, ...]) -> None:
        self.seed = int(seed)
        self.clauses: tuple[FaultClause, ...] = (
            parse_fault_spec(faults) if isinstance(faults, str) else tuple(faults)
        )
        self._lock = threading.Lock()
        self._fires: dict[tuple, int] = {}  # (clause index, point family) -> count
        self._node_attempts: dict[int, int] = {}
        self._driver_ordinal = 0
        self.injected: list[dict] = []
        self._sink: Callable[[dict], None] | None = None

    def attach_sink(self, sink: Callable[[dict], None] | None) -> None:
        """Also forward injected-fault events to ``sink`` (a RecoveryLog)."""
        self._sink = sink

    # -- scope ----------------------------------------------------------------

    @contextlib.contextmanager
    def stage_scope(self, node) -> Iterator[None]:
        """Mark this thread as running one attempt of a stage-graph node."""
        with self._lock:
            attempt = self._node_attempts.get(node.index, 0) + 1
            self._node_attempts[node.index] = attempt
        token = _SCOPE.set(_StageScope(node.index, node.stage, attempt))
        try:
            yield
        finally:
            _SCOPE.reset(token)

    # -- hooks (called by the runtime and the rdd layer) -----------------------

    def on_stage_start(self) -> None:
        """Fault point at stage-attempt launch: injected worker crashes."""
        scope = _SCOPE.get()
        if scope is None:  # pragma: no cover - crash faults only fire in stages
            return
        for index, clause in enumerate(self.clauses):
            if clause.kind != "crash" or not clause.matches_stage(scope.stage):
                continue
            family = (index, "node", scope.node)
            point = f"crash/{index}/node={scope.node}/attempt={scope.attempt}"
            if not self._fire(clause, family, point):
                continue
            worker = clause.worker if clause.worker is not None else 0
            self._record(
                {
                    "event": "inject",
                    "fault": "crash",
                    "clause": index,
                    "node": scope.node,
                    "stage": scope.stage,
                    "attempt": scope.attempt,
                    "worker": worker,
                }
            )
            raise WorkerCrashed(
                f"injected crash of worker {worker} in stage {scope.stage} "
                f"(node {scope.node}, attempt {scope.attempt})",
                worker=worker,
                stage=scope.stage,
            )

    def slowdown_factor(self) -> float:
        """Combined straggler slowdown for the current stage attempt (1.0 =
        healthy; matching clauses multiply)."""
        scope = _SCOPE.get()
        if scope is None:  # pragma: no cover - stragglers only fire in stages
            return 1.0
        factor = 1.0
        for index, clause in enumerate(self.clauses):
            if clause.kind != "straggler" or not clause.matches_stage(scope.stage):
                continue
            family = (index, "node", scope.node)
            point = f"straggler/{index}/node={scope.node}/attempt={scope.attempt}"
            if not self._fire(clause, family, point):
                continue
            factor *= clause.factor
            self._record(
                {
                    "event": "inject",
                    "fault": "straggler",
                    "clause": index,
                    "node": scope.node,
                    "stage": scope.stage,
                    "attempt": scope.attempt,
                    "factor": clause.factor,
                }
            )
        return factor

    def on_transfer(self, kind: str, nbytes: int) -> None:
        """Fault point before a metered cross-worker transfer."""
        scope = _SCOPE.get()
        if scope is not None:
            scope.transfer_ordinal += 1
            ordinal = scope.transfer_ordinal
            where = f"node={scope.node}/attempt={scope.attempt}"
            family_site: object = scope.node
            stage: int | None = scope.stage
        else:
            with self._lock:
                self._driver_ordinal += 1
                ordinal = self._driver_ordinal
            where = "driver"
            family_site = "driver"
            stage = None
        for index, clause in enumerate(self.clauses):
            if clause.kind != "flaky":
                continue
            if clause.at is not None and clause.at != kind:
                continue
            if stage is not None and not clause.matches_stage(stage):
                continue
            if stage is None and clause.stage is not None:
                continue
            family = (index, "site", family_site)
            point = f"flaky/{index}/{where}/ord={ordinal}"
            if not self._fire(clause, family, point):
                continue
            self._record(
                {
                    "event": "inject",
                    "fault": "flaky",
                    "clause": index,
                    "at": kind,
                    "where": where,
                    "ordinal": ordinal,
                    "nbytes": nbytes,
                }
            )
            raise TransferFault(
                f"injected transient {kind} failure at {where} "
                f"(transfer #{ordinal}, {nbytes} bytes)",
                stage=stage,
            )

    def on_shuffle_start(self, **info) -> None:
        """Fault point at the shuffle service's entry, before data moves."""
        self.on_transfer("shuffle", 0)

    def on_publish(self, instance) -> bool:
        """Fault point when an instance is published: ``True`` means its
        blocks are lost and the caller must invalidate it."""
        scope = _SCOPE.get()
        stage = scope.stage if scope is not None else None
        name = instance.name
        for index, clause in enumerate(self.clauses):
            if clause.kind != "lostblock" or clause.instance != name:
                continue
            if stage is not None and not clause.matches_stage(stage):
                continue
            family = (index, "instance", name)
            point = f"lostblock/{index}/instance={name}"
            if not self._fire(clause, family, point):
                continue
            self._record(
                {
                    "event": "inject",
                    "fault": "lostblock",
                    "clause": index,
                    "instance": str(instance),
                    "stage": stage,
                }
            )
            return True
        return False

    # -- internals -------------------------------------------------------------

    def _fire(self, clause: FaultClause, family: tuple, point: str) -> bool:
        """Budget check + deterministic roll; consumes budget when firing."""
        with self._lock:
            if clause.times > 0 and self._fires.get(family, 0) >= clause.times:
                return False
            if self._roll(point) >= clause.probability:
                return False
            self._fires[family] = self._fires.get(family, 0) + 1
            return True

    def _roll(self, point: str) -> float:
        """Uniform [0, 1) value, a pure function of (seed, point)."""
        digest = hashlib.blake2b(
            f"{self.seed}|{point}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _MAX_HASH

    def _record(self, event: dict) -> None:
        with self._lock:
            self.injected.append(event)
            sink = self._sink
        if sink is not None:
            sink(event)
        tracer = active_tracer()
        if tracer is not None:
            stage = (
                (event["node"], event["stage"])
                if "node" in event and "stage" in event
                else current_stage()
            )
            attrs = {
                k: v
                for k, v in event.items()
                if k not in ("event", "fault", "node", "stage")
            }
            tracer.event("fault", event.get("fault", "unknown"), stage=stage, **attrs)

"""Lineage tracking: per-instance provenance for recomputation.

DMac-on-Spark inherits this for free -- every RDD carries its lineage, and
a lost partition is recomputed from its narrow/wide ancestry.  Our plans
already *are* the lineage: each :class:`~repro.core.plan.MatrixInstance`
is in SSA form with a unique first producer, so provenance is derivable
statically.  :class:`LineageTracker` resolves, for a lost instance, the
minimal upstream **recovery cone**: the producing step, plus (recursively)
the producers of any of its inputs that are no longer materialised, bottoming
out at instances that are still live, checkpointed, or rebuilt from driver
inputs (source steps have no matrix inputs).
"""

from __future__ import annotations

from typing import Callable

from repro.core.plan import MatrixInstance, Plan
from repro.errors import ShuffleBlockLost


class LineageTracker:
    """Static provenance of every instance of one plan."""

    def __init__(self, plan: Plan) -> None:
        self.plan = plan
        self._producer: dict[MatrixInstance, int] = {}
        for index, step in enumerate(plan.steps):
            output = step.output_instance()
            if output is not None:
                self._producer.setdefault(output, index)

    def producing_step(self, instance: MatrixInstance) -> int | None:
        """Plan index of the step that first produces ``instance``."""
        return self._producer.get(instance)

    def recovery_cone(
        self,
        instance: MatrixInstance,
        available: Callable[[MatrixInstance], bool],
    ) -> list[int]:
        """Plan-step indices to re-run (ascending = valid execution order)
        to rebuild ``instance``, given which instances are still
        ``available`` (live or checkpointed).

        Raises :class:`~repro.errors.ShuffleBlockLost` if the cone hits an
        instance with no producer (a hand-built plan consuming externals).
        """
        needed: set[int] = set()
        seen: set[MatrixInstance] = {instance}
        stack: list[MatrixInstance] = [instance]
        while stack:
            lost = stack.pop()
            producer = self._producer.get(lost)
            if producer is None:
                raise ShuffleBlockLost(
                    f"cannot recover {lost}: no producing step in the plan"
                )
            if producer in needed:
                continue
            needed.add(producer)
            for upstream in self.plan.steps[producer].inputs():
                if upstream in seen or available(upstream):
                    continue
                seen.add(upstream)
                stack.append(upstream)
        return sorted(needed)

"""Lineage-based recovery and periodic checkpointing.

:class:`RecoveringResources` wraps the runtime's
:class:`~repro.runtime.resources.ResourceManager` for chaos runs: publishes
pass through the ChaosEngine's lost-block fault point (and the checkpoint
store), and a consumer that finds its input gone triggers recomputation of
the minimal lineage cone (:mod:`repro.faults.lineage`).  The recompute runs
the *same* metered kernels as the original execution, on the consuming
stage's thread, so its flops and bytes are charged to that stage's meter
-- recovery overhead lands in the simulated clock and the communication
ledger (under a ``recovery/...`` scope) like any other work.

Recovered intermediates live in a scratch map and are dropped when
recovery finishes; only the lost instance itself is restored into the
resource manager, keeping the publish/release books intact (``releases +
losts - restores == publishes``).

:class:`CheckpointStore` persists loop-carried SSA instances (``X@v``)
every *k* iterations, charging simulated disk time, so a recovery cone
replays from the last checkpoint instead of iteration 0.
"""

from __future__ import annotations

import threading

from repro.core.plan import MatrixInstance, Plan
from repro.errors import ExecutionError, ShuffleBlockLost
from repro.faults.lineage import LineageTracker
from repro.matrix.distributed import DistributedMatrix
from repro.rdd.sizeof import model_sizeof
from repro.runtime.metering import active_meter
from repro.trace.emit import active_tracer, current_stage


def _ssa_version(name: str) -> int | None:
    """The version of a loop-carried SSA name (``rank@3`` -> 3), or ``None``
    for plain (non-loop-carried) names."""
    __, sep, version = name.rpartition("@")
    if not sep:
        return None
    try:
        return int(version)
    except ValueError:
        return None


def _matrix_bytes(matrix: DistributedMatrix) -> int:
    return sum(model_sizeof(block) for block in matrix.driver_grid().values())


class CheckpointStore:
    """Keeps every k-th SSA version of loop-carried instances."""

    def __init__(self, every: int, clock, log=None) -> None:
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.every = every
        self._clock = clock
        self._log = log
        self._lock = threading.Lock()
        self._store: dict[MatrixInstance, tuple[DistributedMatrix, int]] = {}
        self.count = 0
        self.bytes_written = 0

    def maybe_checkpoint(self, instance: MatrixInstance, matrix) -> None:
        """Persist ``instance`` if it is a loop-carried version on the
        checkpoint cadence; charges simulated disk-write time."""
        version = _ssa_version(instance.name)
        if version is None or version % self.every != 0:
            return
        with self._lock:
            if instance in self._store:
                return
        nbytes = _matrix_bytes(matrix)
        self._clock.advance_disk(nbytes)
        with self._lock:
            self._store[instance] = (matrix, nbytes)
            self.count += 1
            self.bytes_written += nbytes
        if self._log is not None:
            self._log.record(
                {"event": "checkpoint", "instance": str(instance), "bytes": nbytes}
            )

    def has(self, instance: MatrixInstance) -> bool:
        with self._lock:
            return instance in self._store

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        """Read a checkpoint back (charges simulated disk-read time)."""
        with self._lock:
            matrix, nbytes = self._store[instance]
        self._clock.advance_disk(nbytes)
        return matrix


class _ScratchResources:
    """Resource view the recovery cone's kernels run against: reads fall
    back scratch -> checkpoint -> live manager; writes stay in scratch."""

    def __init__(self, scratch, checkpoints, manager) -> None:
        self._scratch = scratch
        self._checkpoints = checkpoints
        self._manager = manager

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        matrix = self._scratch.get(instance)
        if matrix is not None:
            return matrix
        if self._checkpoints is not None and self._checkpoints.has(instance):
            return self._checkpoints.get(instance)
        return self._manager.get(instance)

    def publish(self, instance: MatrixInstance, matrix) -> None:
        self._scratch[instance] = matrix

    def consume(self, step) -> None:
        pass  # scratch lifetimes end with the recovery, not per step


class _RecoveryState:
    """Execution-state facade for re-running cone steps: same backend,
    inputs and scalars as the real run, but scratch-backed resources."""

    def __init__(self, base, resources: _ScratchResources) -> None:
        self.backend = base.backend
        self.inputs = base.inputs
        self.block_size = base.block_size
        self.resources = resources
        self._base = base

    def get_scalar(self, name: str) -> float:
        return self._base.get_scalar(name)

    def set_scalar(self, name: str, value: float) -> None:
        pass  # driver scalars were already computed by the real run

    def scalars_snapshot(self) -> dict[str, float]:
        return self._base.scalars_snapshot()

    def record_trace(self, plan_index, trace) -> None:
        pass


class RecoveringResources:
    """ResourceManager facade adding lost-block injection and recovery."""

    def __init__(
        self,
        manager,
        chaos,
        plan: Plan,
        backend,
        checkpoints: CheckpointStore | None = None,
        log=None,
    ) -> None:
        self._manager = manager
        self._chaos = chaos
        self._plan = plan
        self._backend = backend
        self._checkpoints = checkpoints
        self._log = log
        self._lineage = LineageTracker(plan)
        self._recovery_lock = threading.RLock()
        self._state = None  # bound by the executor before the run starts
        self.blocks_lost = 0
        self.blocks_recovered = 0
        self.bytes_recomputed = 0
        self.steps_recomputed = 0

    # The executor builds the ExecutionState *around* this object; it binds
    # itself here so recovery can re-run kernels with the run's inputs and
    # scalars.  (Lazily resolved on first use via the manager's state if
    # never bound -- but the executor always binds.)
    def bind_state(self, state) -> None:
        self._state = state
        # The wrapped manager refills spilled cache entries itself; it needs
        # the same execution state.
        self._manager.bind_state(state)

    # -- kernel-facing API ----------------------------------------------------

    def publish(self, instance: MatrixInstance, matrix) -> None:
        self._manager.publish(instance, matrix)
        if self._checkpoints is not None:
            self._checkpoints.maybe_checkpoint(instance, matrix)
        if self._chaos.on_publish(instance):
            self._manager.invalidate(instance)
            with self._recovery_lock:
                self.blocks_lost += 1

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        try:
            return self._manager.get(instance)
        except ExecutionError:
            pass
        with self._recovery_lock:
            # Another consumer may have finished recovering it meanwhile.
            try:
                return self._manager.get(instance)
            except ExecutionError:
                if not self._manager.is_lost(instance):
                    raise
                return self._recover(instance)

    # Everything else (consume, release_output, close, live_instances,
    # events, is_lost, ...) is the manager's own behaviour.
    def __getattr__(self, name: str):
        return getattr(self._manager, name)

    # -- recovery -------------------------------------------------------------

    def _recover(self, instance: MatrixInstance) -> DistributedMatrix:
        """Recompute a lost instance's minimal lineage cone.  Runs under the
        consuming stage's meter, so flops/bytes/disk are charged there."""
        if self._state is None:  # pragma: no cover - executor always binds
            raise ShuffleBlockLost(
                f"lost instance {instance} and no execution state to recover with"
            )
        checkpoints = self._checkpoints

        def available(inst: MatrixInstance) -> bool:
            if checkpoints is not None and checkpoints.has(inst):
                return True
            try:
                self._manager.get(inst)
            except ExecutionError:
                return False
            return True

        cone = self._lineage.recovery_cone(instance, available)
        from repro.runtime.registry import spec_for

        scratch: dict[MatrixInstance, DistributedMatrix] = {}
        rstate = _RecoveryState(
            self._state, _ScratchResources(scratch, checkpoints, self._manager)
        )
        ledger = self._backend.ledger
        meter = active_meter()
        bytes_before = (
            meter.network_bytes if meter is not None else ledger.snapshot()
        )
        with ledger.scope("recovery"):
            for index in cone:
                step = self._plan.steps[index]
                with ledger.scope(str(step)):
                    spec_for(step).kernel(step, rstate)
        bytes_after = (
            meter.network_bytes if meter is not None else ledger.snapshot()
        )
        matrix = scratch.get(instance)
        if matrix is None:
            raise ShuffleBlockLost(
                f"recovery cone for {instance} did not rebuild it "
                f"(steps {cone})"
            )
        self._manager.restore(instance, matrix)
        self.blocks_recovered += 1
        self.bytes_recomputed += bytes_after - bytes_before
        self.steps_recomputed += len(cone)
        if self._log is not None:
            self._log.record(
                {
                    "event": "recovered",
                    "instance": str(instance),
                    "steps": len(cone),
                    "bytes": bytes_after - bytes_before,
                }
            )
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "recovery",
                "cone",
                stage=current_stage(),
                instance=str(instance),
                steps=len(cone),
                bytes=bytes_after - bytes_before,
            )
        return matrix

"""Chaos-run reporting: the event log and the clean-vs-faulted report.

Events are emitted from concurrent scheduler threads, so their arrival
order is host-scheduling noise.  Everything surfaced to a report is
canonically sorted (by the JSON encoding of the event), which is what lets
two chaos runs with the same seed produce *byte-identical* ``--format
json`` reports -- the determinism gate CI enforces.
"""

from __future__ import annotations

import json
import threading


class RecoveryLog:
    """Thread-safe collector of fault/recovery events of one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def record(self, event: dict) -> None:
        with self._lock:
            self._events.append(dict(event))

    def events(self) -> list[dict]:
        """All events, canonically sorted (thread-order independent)."""
        with self._lock:
            events = list(self._events)
        return sorted(events, key=lambda e: json.dumps(e, sort_keys=True))

    def count(self, event_kind: str) -> int:
        with self._lock:
            return sum(1 for e in self._events if e.get("event") == event_kind)


def summarise_recovery(log, chaos, resources, checkpoints=None) -> dict:
    """The ``ExecutionResult.recovery`` summary of one chaos run."""
    return {
        "events": log.events(),
        "injected": len(chaos.injected),
        "retries": log.count("retry"),
        "speculations": log.count("speculation"),
        "blocks_lost": getattr(resources, "blocks_lost", 0),
        "blocks_recovered": getattr(resources, "blocks_recovered", 0),
        "steps_recomputed": getattr(resources, "steps_recomputed", 0),
        "bytes_recomputed": getattr(resources, "bytes_recomputed", 0),
        "checkpoints": checkpoints.count if checkpoints is not None else 0,
        "checkpoint_bytes": checkpoints.bytes_written if checkpoints is not None else 0,
    }


def build_chaos_report(
    app: str,
    seed: int,
    faults: str,
    clean,
    faulted,
    results_match: bool,
) -> dict:
    """Clean-vs-faulted comparison (JSON-ready, no wall-clock values --
    every field is a deterministic function of seed, spec and plan)."""
    recovery = faulted.recovery or {}
    clean_seconds = clean.simulated_seconds
    faulted_seconds = faulted.simulated_seconds
    return {
        "app": app,
        "seed": seed,
        "faults": faults,
        "clean": {
            "simulated_seconds": clean_seconds,
            "comm_bytes": clean.comm_bytes,
            "num_stages": clean.num_stages,
        },
        "faulted": {
            "simulated_seconds": faulted_seconds,
            "comm_bytes": faulted.comm_bytes,
            "num_stages": faulted.num_stages,
        },
        "overhead": {
            "extra_seconds": faulted_seconds - clean_seconds,
            "extra_comm_bytes": faulted.comm_bytes - clean.comm_bytes,
            "slowdown": (faulted_seconds / clean_seconds)
            if clean_seconds > 0
            else 1.0,
        },
        "recovery": recovery,
        "results_match": results_match,
    }


def format_chaos_report(report: dict) -> str:
    """Human-readable rendering of :func:`build_chaos_report`'s output."""
    clean = report["clean"]
    faulted = report["faulted"]
    overhead = report["overhead"]
    recovery = report["recovery"]
    lines = [
        f"chaos report: {report['app']} "
        f"(seed {report['seed']}, faults {report['faults']!r})",
        f"  clean run:   {clean['simulated_seconds']:.3f} simulated s, "
        f"{clean['comm_bytes']:,} bytes moved",
        f"  faulted run: {faulted['simulated_seconds']:.3f} simulated s, "
        f"{faulted['comm_bytes']:,} bytes moved",
        f"  overhead:    +{overhead['extra_seconds']:.3f} s "
        f"({overhead['slowdown']:.2f}x), "
        f"+{overhead['extra_comm_bytes']:,} bytes",
        f"  injected {recovery.get('injected', 0)} fault(s): "
        f"{recovery.get('retries', 0)} retried, "
        f"{recovery.get('blocks_lost', 0)} block(s) lost, "
        f"{recovery.get('blocks_recovered', 0)} recovered "
        f"({recovery.get('steps_recomputed', 0)} step(s), "
        f"{recovery.get('bytes_recomputed', 0):,} bytes recomputed)",
    ]
    if recovery.get("speculations", 0):
        lines.append(f"  speculative copies won: {recovery['speculations']}")
    if recovery.get("checkpoints", 0):
        lines.append(
            f"  checkpoints: {recovery['checkpoints']} "
            f"({recovery['checkpoint_bytes']:,} bytes)"
        )
    lines.append(
        "  results match clean run"
        if report["results_match"]
        else "  RESULTS DIVERGE from clean run"
    )
    for event in recovery.get("events", []):
        lines.append(f"  event: {json.dumps(event, sort_keys=True)}")
    return "\n".join(lines)

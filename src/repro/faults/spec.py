"""The ``--faults`` specification grammar.

A specification is a ``;``-separated list of clauses; each clause is a
fault kind followed by ``key=value`` options::

    crash:stage=2                      # stage 2's islands crash once each
    lostblock:instance=rank,iteration=3  # lose rank@3 when it is published
    flaky:at=shuffle,p=0.5             # every shuffle rolls a 50% fault
    straggler:stage=1,factor=6         # stage 1 runs 6x slower (once)

Kinds and their options:

``crash``
    Kills a stage attempt with :class:`~repro.errors.WorkerCrashed`
    (retryable).  Options: ``stage``, ``worker`` (reported in the error),
    ``p``, ``times``.
``lostblock``
    Invalidates a published instance's blocks; the first consumer triggers
    lineage recovery.  Options: ``instance`` (name, or SSA ``name@v``),
    ``iteration`` (sugar: ``instance=rank,iteration=3`` targets ``rank@3``),
    ``stage``, ``p``, ``times``.
``flaky``
    Raises :class:`~repro.errors.TransferFault` (retryable) from a
    cross-worker transfer.  Options: ``at`` (transfer kind: ``shuffle``,
    ``broadcast`` or ``rebalance``; default any), ``stage``, ``p``,
    ``times``.
``straggler``
    Slows a whole stage island by ``factor`` (mitigated by speculative
    re-execution when enabled).  Options: ``stage``, ``factor`` (default 4),
    ``p``, ``times``.

``p`` is the per-point fire probability (default 1.0); ``times`` caps how
often a clause fires *per point* -- per stage island for ``crash`` /
``straggler`` / ``flaky``, per instance for ``lostblock`` (default 1,
``0`` = unlimited).  Per-point accounting is what keeps two runs with the
same seed byte-identical even when stages execute concurrently: no
clause's budget is consumed in host-thread order.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FaultSpecError

FAULT_KINDS = ("crash", "lostblock", "flaky", "straggler")

_COMMON_KEYS = {"stage", "worker", "p", "times"}
_KEYS_BY_KIND = {
    "crash": _COMMON_KEYS,
    "lostblock": _COMMON_KEYS | {"instance", "iteration"},
    "flaky": _COMMON_KEYS | {"at"},
    "straggler": _COMMON_KEYS | {"factor"},
}
_TRANSFER_POINTS = ("shuffle", "broadcast", "rebalance")


@dataclasses.dataclass(frozen=True)
class FaultClause:
    """One parsed fault-injection clause."""

    kind: str
    stage: int | None = None
    worker: int | None = None
    instance: str | None = None
    probability: float = 1.0
    factor: float = 4.0
    times: int = 1
    at: str | None = None

    def matches_stage(self, stage: int) -> bool:
        return self.stage is None or self.stage == stage

    def describe(self) -> str:
        parts = [self.kind]
        for key, value in (
            ("stage", self.stage),
            ("worker", self.worker),
            ("instance", self.instance),
            ("at", self.at),
        ):
            if value is not None:
                parts.append(f"{key}={value}")
        if self.probability < 1.0:
            parts.append(f"p={self.probability}")
        return ":".join([parts[0], ",".join(parts[1:])]) if parts[1:] else parts[0]


def parse_fault_spec(spec: str) -> tuple[FaultClause, ...]:
    """Parse a ``--faults`` string into clauses (:class:`FaultSpecError`
    on malformed input)."""
    clauses: list[FaultClause] = []
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        clauses.append(_parse_clause(raw))
    if not clauses:
        raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
    return tuple(clauses)


def _parse_clause(raw: str) -> FaultClause:
    kind, __, options = raw.partition(":")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} (expected one of {', '.join(FAULT_KINDS)})"
        )
    values: dict[str, str] = {}
    if options.strip():
        for item in options.split(","):
            key, sep, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise FaultSpecError(f"malformed option {item!r} in clause {raw!r}")
            if key not in _KEYS_BY_KIND[kind]:
                raise FaultSpecError(
                    f"option {key!r} is not valid for fault kind {kind!r}"
                )
            if key in values:
                raise FaultSpecError(f"duplicate option {key!r} in clause {raw!r}")
            values[key] = value

    stage = _parse_int(values, "stage", raw, minimum=0)
    worker = _parse_int(values, "worker", raw, minimum=0)
    times = _parse_int(values, "times", raw, minimum=0)
    probability = _parse_float(values, "p", raw)
    factor = _parse_float(values, "factor", raw)
    iteration = _parse_int(values, "iteration", raw, minimum=1)
    instance = values.get("instance")
    at = values.get("at")

    if probability is not None and not 0.0 <= probability <= 1.0:
        raise FaultSpecError(f"p must be in [0, 1], got {probability} in {raw!r}")
    if factor is not None and factor <= 1.0:
        raise FaultSpecError(f"factor must be > 1, got {factor} in {raw!r}")
    if at is not None and at not in _TRANSFER_POINTS:
        raise FaultSpecError(
            f"at must be one of {', '.join(_TRANSFER_POINTS)}, got {at!r}"
        )
    if kind == "lostblock":
        if instance is None:
            raise FaultSpecError(f"lostblock clause {raw!r} needs instance=NAME")
        if iteration is not None:
            if "@" in instance:
                raise FaultSpecError(
                    f"clause {raw!r}: give either instance=name@v or iteration=, "
                    f"not both"
                )
            if iteration > 1:
                instance = f"{instance}@{iteration}"
    elif iteration is not None:
        raise FaultSpecError(f"iteration= only applies to lostblock, in {raw!r}")

    kwargs: dict = {"kind": kind}
    if stage is not None:
        kwargs["stage"] = stage
    if worker is not None:
        kwargs["worker"] = worker
    if instance is not None:
        kwargs["instance"] = instance
    if probability is not None:
        kwargs["probability"] = probability
    if factor is not None:
        kwargs["factor"] = factor
    if times is not None:
        kwargs["times"] = times
    if at is not None:
        kwargs["at"] = at
    return FaultClause(**kwargs)


def _parse_int(
    values: dict[str, str], key: str, raw: str, *, minimum: int
) -> int | None:
    if key not in values:
        return None
    try:
        parsed = int(values[key])
    except ValueError:
        raise FaultSpecError(
            f"{key} must be an integer, got {values[key]!r} in {raw!r}"
        ) from None
    if parsed < minimum:
        raise FaultSpecError(f"{key} must be >= {minimum}, got {parsed} in {raw!r}")
    return parsed


def _parse_float(values: dict[str, str], key: str, raw: str) -> float | None:
    if key not in values:
        return None
    try:
        return float(values[key])
    except ValueError:
        raise FaultSpecError(
            f"{key} must be a number, got {values[key]!r} in {raw!r}"
        ) from None

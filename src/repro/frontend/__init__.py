"""Python ``ast`` compiler frontend: typed functions -> plan IR.

One pipeline from user code to execution: a ``@matrix_program`` function
over :class:`Matrix`/:class:`Scalar` handles is lowered -- never executed
-- into the same :class:`~repro.lang.program.MatrixProgram` IR the rest of
the stack (planner, optimizer, verifier, executor, tracer) already
consumes.  Data-dependent ``while`` convergence loops compile to a
:class:`StagedProgram`, which the session runs segment by segment,
extending the plan dynamically until the condition scalar flips.
"""

from repro.frontend.errors import FrontendError
from repro.frontend.program import CompiledProgram, FrontendProgram, matrix_program
from repro.frontend.staged import (
    CarriedVar,
    ConditionSpec,
    StagedOutput,
    StagedProgram,
)
from repro.frontend.types import Matrix, MatrixInput, Scalar, matrix_input

__all__ = [
    "CarriedVar",
    "CompiledProgram",
    "ConditionSpec",
    "FrontendError",
    "FrontendProgram",
    "Matrix",
    "MatrixInput",
    "Scalar",
    "StagedOutput",
    "StagedProgram",
    "matrix_input",
    "matrix_program",
]

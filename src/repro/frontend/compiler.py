"""The ``ast``-walking compiler: typed Python functions -> plan IR.

This is the numpywren-style frontend the ROADMAP calls for: a decorated,
annotated Python function is parsed with :mod:`ast` and *lowered* -- never
executed -- into the same :class:`~repro.lang.program.MatrixProgram` IR
the hand-built ``ProgramBuilder`` applications produce, via the very same
builder.  The compiler is a small abstract interpreter over four value
kinds:

* ``MatrixRefExpr`` -- a named distributed matrix version (builder-owned);
* ``ScalarRefExpr`` -- a named runtime driver scalar;
* ``int`` / ``float`` / ``bool`` -- compile-time constants (parameters,
  loop counters, folded arithmetic).

Statements translate one-to-one onto builder calls: ``X = <matrix expr>``
becomes ``builder.assign``, ``s = <scalar expr>`` becomes
``builder.scalar``, ``X = random(...)`` becomes ``builder.random`` and so
on -- which is what makes frontend-compiled programs *byte-identical* to
the legacy hand-built ones (same version names, same temp numbering, same
operator order).  ``for i in range(...)`` unrolls, ``if`` on compile-time
values selects a branch during lowering, and every diagnostic carries the
absolute source line of the offending statement.

``while`` loops are handled one level up (:mod:`repro.frontend.program`),
which runs this statement compiler once for the prologue and once for the
loop body to produce a :class:`~repro.frontend.staged.StagedProgram`.
"""

from __future__ import annotations

import ast
import dataclasses
import math
from typing import Callable, TypeVar, Union

from repro.errors import ProgramError
from repro.frontend.errors import FrontendError
from repro.lang.expr import (
    MatrixExpr,
    MatrixRefExpr,
    ScalarExpr,
    ScalarRefExpr,
    TransposeExpr,
)
from repro.lang.program import ProgramBuilder

#: Everything an expression can evaluate to during lowering.
Value = Union[MatrixExpr, ScalarExpr, int, float, bool]

_T = TypeVar("_T")

#: Matrix source functions: only legal as the entire right-hand side of an
#: assignment, because they need the target name for the builder.
SOURCE_FUNCS = ("load", "random", "full", "zeros", "ones")

#: Zero-argument matrix methods usable in method form (``X.sigmoid()``).
MATRIX_METHODS = (
    "sum", "sq_sum", "norm2", "value", "row_sums", "col_sums",
    "exp", "log", "sqrt", "abs", "sign", "sigmoid", "reciprocal",
)

#: Element-wise unary functions usable in call form (``sigmoid(X)``).
UNARY_FUNCS = ("exp", "log", "sign", "sigmoid", "reciprocal")

#: Variable names the staged compiler reserves for condition scalars.
RESERVED_PREFIX = "_while"

_BIN_OPS: dict[type[ast.operator], str] = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.MatMult: "@",
}

_STATIC_ONLY_BIN_OPS: dict[type[ast.operator], Callable[[float, float], float]] = {
    ast.Pow: lambda a, b: a**b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
}


@dataclasses.dataclass(frozen=True)
class SourceMap:
    """Maps relative ast line numbers back to absolute source lines."""

    function: str
    filename: str | None
    offset: int  # absolute line of snippet line 1, minus one

    def line(self, node: ast.AST) -> int | None:
        lineno = getattr(node, "lineno", None)
        return None if lineno is None else lineno + self.offset

    def error(self, node: ast.AST | None, message: str) -> FrontendError:
        return FrontendError(
            message,
            function=self.function,
            filename=self.filename,
            line=None if node is None else self.line(node),
        )


def names_loaded(node: ast.AST) -> list[str]:
    """Names read (Load context) anywhere under ``node``, in source order."""
    out: list[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            if child.id not in out:
                out.append(child.id)
    return out


def names_stored(node: ast.AST) -> list[str]:
    """Names assigned (Store context) anywhere under ``node``."""
    out: list[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            if child.id not in out:
                out.append(child.id)
    return out


def upward_exposed_reads(stmts: list[ast.stmt]) -> list[str]:
    """Names a statement block reads before (possibly) assigning them.

    Straight-line statements are tracked exactly; ``for``/``if`` subtrees
    are handled conservatively (all their reads count, their writes only
    take effect afterwards), which can only over-approximate the carry
    set, never miss a needed input.
    """
    exposed: list[str] = []
    assigned: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
            for name in names_loaded(stmt.value):
                if name not in assigned and name not in exposed:
                    exposed.append(name)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
        else:
            for name in names_loaded(stmt):
                if name not in assigned and name not in exposed:
                    exposed.append(name)
            assigned.update(names_stored(stmt))
    return exposed


class StatementCompiler:
    """Lowers one straight-line region of the function onto one builder."""

    def __init__(
        self,
        builder: ProgramBuilder,
        env: dict[str, Value],
        src: SourceMap,
        *,
        forbid_outputs: bool = False,
        outer_scalars: frozenset[str] = frozenset(),
    ) -> None:
        self.builder = builder
        self.env = env
        self.src = src
        self.forbid_outputs = forbid_outputs
        #: Runtime scalars of an enclosing (prologue) region: naming one
        #: inside a loop body gets a dedicated diagnostic.
        self.outer_scalars = outer_scalars

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._exec_ann_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            raise self.src.error(
                stmt,
                "augmented assignment is not supported; write `x = x + ...`",
            )
        elif isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.While):
            raise self.src.error(
                stmt,
                "while loops are only supported at the top level of a "
                "matrix program (one convergence loop per program)",
            )
        elif isinstance(stmt, ast.Return):
            raise self.src.error(
                stmt,
                "return is not supported; declare results with output(...) "
                "or output_scalar(...)",
            )
        elif isinstance(stmt, ast.Pass):
            return
        else:
            raise self.src.error(
                stmt,
                f"unsupported syntax: {type(stmt).__name__} statements "
                "cannot be lowered to a matrix program",
            )

    def _bind_target(self, stmt: ast.stmt, target: ast.expr) -> str:
        if not isinstance(target, ast.Name):
            raise self.src.error(
                stmt,
                "only simple `name = ...` assignments are supported "
                "(no tuples, subscripts or attributes)",
            )
        name = target.id
        if name.startswith(RESERVED_PREFIX):
            raise self.src.error(
                stmt,
                f"names starting with {RESERVED_PREFIX!r} are reserved "
                "for compiled while-conditions",
            )
        return name

    def _exec_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self.src.error(
                stmt, "chained assignment (`a = b = ...`) is not supported"
            )
        self._assign(stmt, stmt.targets[0], stmt.value)

    def _exec_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is None:
            raise self.src.error(
                stmt, "annotation-only statements are not supported"
            )
        self._assign(stmt, stmt.target, stmt.value)

    def _assign(self, stmt: ast.stmt, target: ast.expr, rhs: ast.expr) -> None:
        name = self._bind_target(stmt, target)
        # Matrix sources need the target name, so they are recognised as a
        # statement form rather than an expression.
        if isinstance(rhs, ast.Call) and isinstance(rhs.func, ast.Name) \
                and rhs.func.id in SOURCE_FUNCS and rhs.func.id not in self.env:
            self.env[name] = self._call_source(name, rhs)
            return
        if isinstance(rhs, ast.Name):
            # Pure alias: no operator is emitted, exactly like binding a
            # builder handle to a second Python variable.
            self.env[name] = self._lookup(rhs)
            return
        value = self.eval(rhs)
        if isinstance(value, (bool, int, float)):
            self.env[name] = value
        elif isinstance(value, MatrixExpr):
            self.env[name] = self._guard(stmt, lambda: self.builder.assign(name, value))
        elif isinstance(value, ScalarExpr):
            self.env[name] = self._guard(stmt, lambda: self.builder.scalar(name, value))
        else:  # pragma: no cover - eval returns only the kinds above
            raise self.src.error(stmt, f"cannot assign value of type {type(value).__name__}")

    def _exec_expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return  # docstring
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in ("output", "output_scalar"):
                self._exec_output(value)
                return
        raise self.src.error(
            stmt,
            "expression statements have no effect in a matrix program "
            "(only output(...) / output_scalar(...) calls are allowed)",
        )

    def _exec_output(self, call: ast.Call) -> None:
        assert isinstance(call.func, ast.Name)
        kind = call.func.id
        if self.forbid_outputs:
            raise self.src.error(
                call,
                f"{kind}() inside a while body is not supported; declare "
                "outputs after the loop",
            )
        if len(call.args) != 1 or call.keywords or not isinstance(call.args[0], ast.Name):
            raise self.src.error(call, f"{kind}() takes exactly one variable name")
        value = self._lookup(call.args[0])
        if kind == "output":
            if not isinstance(value, MatrixRefExpr):
                raise self.src.error(
                    call, f"output() needs a matrix, {call.args[0].id!r} is not one"
                )
            self.builder.output(value)
        else:
            if not isinstance(value, ScalarRefExpr):
                raise self.src.error(
                    call,
                    f"output_scalar() needs a computed runtime scalar, "
                    f"{call.args[0].id!r} is not one",
                )
            self.builder.scalar_output(value)

    def _exec_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self.src.error(stmt, "for/else is not supported")
        if not isinstance(stmt.target, ast.Name):
            raise self.src.error(stmt, "the loop variable must be a single name")
        call = stmt.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
        ):
            raise self.src.error(
                stmt,
                "for loops must iterate over range(...) with compile-time "
                "bounds (loops are unrolled during compilation)",
            )
        bounds = [self._static_int(arg, "range() bound") for arg in call.args]
        if call.keywords or not 1 <= len(bounds) <= 3:
            raise self.src.error(stmt, "range() takes 1 to 3 positional integers")
        loop_var = stmt.target.id
        for iteration in range(*bounds):
            self.env[loop_var] = iteration
            self.exec_block(stmt.body)

    def _exec_if(self, stmt: ast.If) -> None:
        if self.eval_static_bool(stmt.test):
            self.exec_block(stmt.body)
        else:
            self.exec_block(stmt.orelse)

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or isinstance(node.value, (int, float)):
                return node.value
            raise self.src.error(
                node, f"unsupported literal {node.value!r} (numbers only)"
            )
        if isinstance(node, ast.Name):
            return self._lookup(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Compare):
            raise self.src.error(
                node,
                "comparisons are only valid as if/while conditions, not as values",
            )
        raise self.src.error(
            node,
            f"unsupported syntax: {type(node).__name__} expressions cannot "
            "be lowered to a matrix program",
        )

    def _lookup(self, node: ast.Name) -> Value:
        name = node.id
        if name in self.env:
            return self.env[name]
        if name in self.outer_scalars:
            raise self.src.error(
                node,
                f"scalar {name!r} is computed before the while loop and "
                "cannot be read inside it (loop-carried scalars are not "
                "supported; recompute it in the body)",
            )
        raise self.src.error(node, f"unknown variable {name!r}")

    def _eval_binop(self, node: ast.BinOp) -> Value:
        static_op = _STATIC_ONLY_BIN_OPS.get(type(node.op))
        symbol = _BIN_OPS.get(type(node.op))
        if symbol is None and static_op is None:
            raise self.src.error(
                node, f"unsupported operator {type(node.op).__name__}"
            )
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(left, (bool, int, float)) and isinstance(right, (bool, int, float)):
            try:
                if static_op is not None:
                    return static_op(left, right)
                return self._fold_numbers(symbol or "", left, right)
            except ZeroDivisionError:
                raise self.src.error(node, "division by zero constant") from None
        if static_op is not None:
            raise self.src.error(
                node,
                f"{type(node.op).__name__} is only supported between "
                "compile-time numbers",
            )
        return self._combine(node, symbol or "", left, right)

    @staticmethod
    def _fold_numbers(symbol: str, left: float, right: float) -> float:
        if symbol == "+":
            return left + right
        if symbol == "-":
            return left - right
        if symbol == "*":
            return left * right
        if symbol == "/":
            return left / right
        raise ProgramError(f"@ requires matrix operands, got numbers")

    def _combine(self, node: ast.BinOp, symbol: str, left: Value, right: Value) -> Value:
        if symbol == "@":
            if not (isinstance(left, MatrixExpr) and isinstance(right, MatrixExpr)):
                raise self.src.error(node, "@ requires matrix operands on both sides")
            return self._guard(node, lambda: left @ right)

        def apply() -> Value:
            if symbol == "+":
                result = left + right  # type: ignore[operator]
            elif symbol == "-":
                result = left - right  # type: ignore[operator]
            elif symbol == "*":
                result = left * right  # type: ignore[operator]
            else:
                result = left / right  # type: ignore[operator]
            if result is NotImplemented:
                raise ProgramError(
                    f"cannot apply {symbol!r} to {type(left).__name__} "
                    f"and {type(right).__name__}"
                )
            return result  # type: ignore[return-value]

        return self._guard(node, apply)

    def _eval_unary(self, node: ast.UnaryOp) -> Value:
        if isinstance(node.op, ast.USub):
            value = self.eval(node.operand)
            if isinstance(value, (bool, int, float)):
                return -value
            return self._guard(node, lambda: -value)  # type: ignore[operator, arg-type]
        if isinstance(node.op, ast.UAdd):
            return self.eval(node.operand)
        raise self.src.error(
            node, f"unsupported unary operator {type(node.op).__name__}"
        )

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        value = self.eval(node.value)
        attr = node.attr
        if isinstance(value, MatrixExpr):
            if attr == "T":
                return value.T
            if attr in ("rows", "cols", "shape"):
                shape = self._shape_of(node, value)
                if attr == "rows":
                    return shape[0]
                if attr == "cols":
                    return shape[1]
                raise self.src.error(
                    node, "use .rows / .cols (`.shape` is not a scalar)"
                )
            raise self.src.error(
                node,
                f"unknown matrix attribute {attr!r} (did you mean a method "
                f"call like .{attr}()?)" if attr in MATRIX_METHODS
                else f"unknown matrix attribute {attr!r}",
            )
        raise self.src.error(
            node, f"{type(value).__name__} values have no attribute {attr!r}"
        )

    def _shape_of(self, node: ast.AST, value: MatrixExpr) -> tuple[int, int]:
        if isinstance(value, MatrixRefExpr):
            ref_name = value.name
            return self._guard(node, lambda: self.builder.shape_of(ref_name))
        if isinstance(value, TransposeExpr) and isinstance(value.child, MatrixRefExpr):
            inner_name = value.child.name
            shape = self._guard(node, lambda: self.builder.shape_of(inner_name))
            return (shape[1], shape[0])
        raise self.src.error(
            node,
            ".rows/.cols are only available on named matrices, not on "
            "compound expressions; assign the expression to a variable first",
        )

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Value:
        func = node.func
        if isinstance(func, ast.Attribute):
            return self._eval_method(node, func)
        if not isinstance(func, ast.Name):
            raise self.src.error(node, "only simple function calls are supported")
        name = func.id
        if name in self.env:
            raise self.src.error(
                node, f"{name!r} is a program variable, not a function"
            )
        if name in SOURCE_FUNCS:
            raise self.src.error(
                node,
                f"{name}() creates a named matrix and is only allowed as "
                "the whole right-hand side of an assignment "
                f"(`X = {name}(...)`)",
            )
        if name in ("output", "output_scalar"):
            raise self.src.error(
                node, f"{name}() is a statement, not an expression"
            )
        args = [self.eval(arg) for arg in node.args]
        if node.keywords:
            raise self.src.error(node, f"{name}() takes no keyword arguments")
        return self._call_builtin(node, name, args)

    def _eval_method(self, node: ast.Call, func: ast.Attribute) -> Value:
        base = self.eval(func.value)
        attr = func.attr
        if node.args or node.keywords:
            raise self.src.error(node, f".{attr}() takes no arguments")
        if isinstance(base, MatrixExpr) and attr in MATRIX_METHODS:
            method: Callable[[], Value] = getattr(base, attr)
            return self._guard(node, method)
        if isinstance(base, ScalarExpr) and attr == "sqrt":
            return self._guard(node, base.sqrt)
        raise self.src.error(
            node, f"unknown method .{attr}() on {type(base).__name__}"
        )

    def _one_matrix(self, node: ast.Call, name: str, args: list[Value]) -> MatrixExpr:
        if len(args) != 1 or not isinstance(args[0], MatrixExpr):
            raise self.src.error(node, f"{name}() takes exactly one matrix argument")
        return args[0]

    def _call_builtin(self, node: ast.Call, name: str, args: list[Value]) -> Value:
        if name == "sum":
            return self._one_matrix(node, name, args).sum()
        if name == "sqsum":
            return self._one_matrix(node, name, args).sq_sum()
        if name == "norm2":
            return self._one_matrix(node, name, args).norm2()
        if name == "value":
            return self._one_matrix(node, name, args).value()
        if name == "row_sums":
            return self._one_matrix(node, name, args).row_sums()
        if name == "col_sums":
            return self._one_matrix(node, name, args).col_sums()
        if name == "t":
            return self._one_matrix(node, name, args).T
        if name in UNARY_FUNCS:
            return self._guard(
                node, getattr(self._one_matrix(node, name, args), name)
            )
        if name == "sqrt":
            if len(args) == 1 and isinstance(args[0], MatrixExpr):
                return args[0].sqrt()
            if len(args) == 1 and isinstance(args[0], ScalarExpr):
                return args[0].sqrt()
            if len(args) == 1 and isinstance(args[0], (int, float)):
                return math.sqrt(args[0])
            raise self.src.error(node, "sqrt() takes one matrix, scalar or number")
        if name == "abs":
            if len(args) == 1 and isinstance(args[0], MatrixExpr):
                return args[0].abs()
            if len(args) == 1 and isinstance(args[0], (int, float)):
                return abs(args[0])
            raise self.src.error(node, "abs() takes one matrix or number")
        raise self.src.error(node, f"unknown function {name!r}")

    def _call_source(self, target: str, node: ast.Call) -> MatrixRefExpr:
        assert isinstance(node.func, ast.Name)
        name = node.func.id
        args = [self.eval(arg) for arg in node.args]
        kwargs: dict[str, Value] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                raise self.src.error(node, f"{name}() does not accept **kwargs")
            kwargs[keyword.arg] = self.eval(keyword.value)
        if len(args) < 2:
            raise self.src.error(
                node, f"{name}(rows, cols, ...) needs two dimension arguments"
            )
        rows = self._as_int(node, args[0], f"{name}() rows")
        cols = self._as_int(node, args[1], f"{name}() cols")
        shape = (rows, cols)

        def number(value: Value, what: str) -> float:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            raise self.src.error(node, f"{name}() {what} must be a compile-time number")

        if name == "load":
            sparsity = number(kwargs.pop("sparsity", 1.0), "sparsity")
            self._check_source_arity(node, name, args, 2, kwargs)
            return self._guard(
                node, lambda: self.builder.load(target, shape, sparsity=sparsity)
            )
        if name == "random":
            seed = self._as_int(node, kwargs.pop("seed", 0), f"{name}() seed")
            self._check_source_arity(node, name, args, 2, kwargs)
            return self._guard(
                node, lambda: self.builder.random(target, shape, seed=seed)
            )
        if name == "full":
            if len(args) > 2:
                fill = number(args[2], "value")
            else:
                fill = number(kwargs.pop("value", 0.0), "value")
            self._check_source_arity(node, name, args, 3, kwargs)
            return self._guard(
                node, lambda: self.builder.full(target, shape, fill)
            )
        # zeros / ones: sugar over full.
        fill = 0.0 if name == "zeros" else 1.0
        self._check_source_arity(node, name, args, 2, kwargs)
        return self._guard(node, lambda: self.builder.full(target, shape, fill))

    def _check_source_arity(
        self,
        node: ast.Call,
        name: str,
        args: list[Value],
        max_args: int,
        leftover_kwargs: dict[str, Value],
    ) -> None:
        if len(args) > max_args or leftover_kwargs:
            extras = ", ".join(sorted(leftover_kwargs))
            raise self.src.error(
                node,
                f"unexpected arguments to {name}()"
                + (f": {extras}" if extras else ""),
            )

    # -- compile-time conditions ---------------------------------------------

    def eval_static_bool(self, node: ast.expr) -> bool:
        """An ``if`` condition: must be decidable during compilation."""
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.src.error(node, "chained comparisons are not supported")
            left = self._static_number(node.left, "if condition")
            right = self._static_number(node.comparators[0], "if condition")
            op = node.ops[0]
            if isinstance(op, ast.Lt):
                return left < right
            if isinstance(op, ast.LtE):
                return left <= right
            if isinstance(op, ast.Gt):
                return left > right
            if isinstance(op, ast.GtE):
                return left >= right
            if isinstance(op, ast.Eq):
                return left == right
            if isinstance(op, ast.NotEq):
                return left != right
            raise self.src.error(node, f"unsupported comparison {type(op).__name__}")
        if isinstance(node, ast.BoolOp):
            values = [self.eval_static_bool(child) for child in node.values]
            return all(values) if isinstance(node.op, ast.And) else any(values)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return not self.eval_static_bool(node.operand)
        value = self.eval(node)
        if isinstance(value, (bool, int, float)):
            return bool(value)
        raise self.src.error(
            node,
            "if conditions must be decidable at compile time (a runtime "
            "scalar or matrix cannot steer unrolling); use a while loop "
            "for data-dependent control flow",
        )

    def _static_number(self, node: ast.expr, what: str) -> float:
        value = self.eval(node)
        if isinstance(value, (bool, int, float)):
            return float(value)
        kind = "matrix" if isinstance(value, MatrixExpr) else "runtime scalar"
        raise self.src.error(
            node, f"{what} must be a compile-time number, got a {kind}"
        )

    def _static_int(self, node: ast.expr, what: str) -> int:
        value = self.eval(node)
        return self._as_int(node, value, what)

    def _as_int(self, node: ast.AST, value: Value, what: str) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise self.src.error(node, f"{what} must be a compile-time integer")
        if isinstance(value, float):
            if not value.is_integer():
                raise self.src.error(node, f"{what} must be an integer, got {value}")
            return int(value)
        return value

    # -- error plumbing ------------------------------------------------------

    def _guard(self, node: ast.AST, fn: Callable[[], _T]) -> _T:
        """Run a builder/expression operation, re-raising any ProgramError
        as a FrontendError pointing at the user's source line."""
        try:
            return fn()
        except FrontendError:
            raise
        except ProgramError as error:
            raise self.src.error(node, str(error)) from error

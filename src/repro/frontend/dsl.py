"""Importable names for the ``@matrix_program`` surface syntax.

The compiler resolves these names *structurally* from the ``ast`` -- it
never calls them -- but importing them keeps decorated program modules
honest Python: linters see defined names, IDEs show signatures, and
accidentally calling one outside a compiled body fails with a clear
diagnostic instead of a silent wrong answer.

``sum`` and ``abs`` intentionally shadow the Python builtins inside
program modules: in a matrix program they are the matrix aggregate /
element-wise magnitude, exactly like the DML builtins of the same names.
"""

from __future__ import annotations

from typing import Any, Callable, NoReturn

from repro.frontend.errors import FrontendError

__all__ = [
    "abs",
    "col_sums",
    "exp",
    "full",
    "load",
    "log",
    "norm2",
    "ones",
    "output",
    "output_scalar",
    "random",
    "reciprocal",
    "row_sums",
    "sigmoid",
    "sign",
    "sqrt",
    "sqsum",
    "sum",
    "t",
    "value",
    "zeros",
]


def _placeholder(name: str, doc: str) -> Callable[..., Any]:
    def surface_name(*args: Any, **kwargs: Any) -> NoReturn:
        raise FrontendError(
            f"{name}() is matrix-program surface syntax; it is compiled by "
            "@matrix_program and cannot be called as a Python function"
        )

    surface_name.__name__ = name
    surface_name.__qualname__ = name
    surface_name.__doc__ = doc
    return surface_name


# -- sources (assignment right-hand sides only) ------------------------------
load = _placeholder("load", "load(rows, cols, sparsity=1.0): a runtime-bound input matrix.")
random = _placeholder("random", "random(rows, cols, seed=0): a dense random matrix.")
full = _placeholder("full", "full(rows, cols, value): a constant-filled matrix.")
zeros = _placeholder("zeros", "zeros(rows, cols): a zero-filled matrix.")
ones = _placeholder("ones", "ones(rows, cols): a one-filled matrix.")

# -- aggregates (matrix -> runtime scalar expression) ------------------------
sum = _placeholder("sum", "sum(X): sum of all cells.")
sqsum = _placeholder("sqsum", "sqsum(X): sum of squared cells.")
norm2 = _placeholder("norm2", "norm2(X): the Frobenius/2-norm, sqrt(sqsum(X)).")
value = _placeholder("value", "value(X): the single cell of a 1x1 matrix.")

# -- structural / element-wise helpers ---------------------------------------
t = _placeholder("t", "t(X): the transpose (same as X.T).")
row_sums = _placeholder("row_sums", "row_sums(X): per-row sums as a column vector.")
col_sums = _placeholder("col_sums", "col_sums(X): per-column sums as a row vector.")
exp = _placeholder("exp", "exp(X): element-wise exponential.")
log = _placeholder("log", "log(X): element-wise natural logarithm.")
sqrt = _placeholder("sqrt", "sqrt(x): element-wise / scalar square root.")
abs = _placeholder("abs", "abs(x): element-wise / scalar magnitude.")
sign = _placeholder("sign", "sign(X): element-wise sign.")
sigmoid = _placeholder("sigmoid", "sigmoid(X): element-wise logistic function.")
reciprocal = _placeholder("reciprocal", "reciprocal(X): element-wise 1/x.")

# -- result declarations (statements) ----------------------------------------
output = _placeholder("output", "output(X): materialise a matrix at the end of the run.")
output_scalar = _placeholder(
    "output_scalar", "output_scalar(s): report a driver scalar at the end of the run."
)

"""Frontend diagnostics: compile errors that point at user source lines.

Every error the :mod:`repro.frontend` compiler raises carries the function
name, the source file, and the **absolute** line number of the offending
statement, so a failing ``@matrix_program`` reads like a Python traceback
("gnmf.py:14: matmul inner dimensions differ ...") rather than a planner
internal.  :class:`FrontendError` subclasses
:class:`~repro.errors.ProgramError`, so every CLI/session code path that
already turns program errors into exit code 2 keeps working unchanged.
"""

from __future__ import annotations

from repro.errors import ProgramError


class FrontendError(ProgramError):
    """A compile-time diagnostic from the Python ``ast`` frontend.

    Attributes:
        function: name of the ``@matrix_program`` function being compiled.
        filename: source file the function was defined in (or ``None``).
        line: absolute 1-based line number in that file (or ``None`` when
            the error is not attributable to a single statement, e.g. a
            missing compile-time binding).
    """

    def __init__(
        self,
        message: str,
        *,
        function: str | None = None,
        filename: str | None = None,
        line: int | None = None,
    ) -> None:
        self.function = function
        self.filename = filename
        self.line = line
        location = ""
        if function is not None:
            location = function
            if line is not None:
                short = filename.rsplit("/", 1)[-1] if filename else "<source>"
                location = f"{function} ({short}:{line})"
            location += ": "
        super().__init__(f"{location}{message}")

"""``@matrix_program``: decoration, signatures, and while-loop staging.

:class:`FrontendProgram` wraps a typed Python function.  Decoration parses
the source once (``ast``) and validates the signature; ``.compile()``
specialises it against compile-time bindings:

* no ``while`` loop -> one :class:`~repro.lang.program.MatrixProgram`,
  built by running the statement compiler over the whole body;
* one top-level ``while`` loop -> a
  :class:`~repro.frontend.staged.StagedProgram`: the statement compiler
  runs twice (prologue, body), the loop condition is lowered into *both*
  programs as the reserved scalars ``_while_lhs`` / ``_while_rhs``, and a
  carried-variable analysis (upward-exposed reads of the body + condition)
  decides which matrices each body segment loads from the previous one.

``Matrix`` parameters are loaded -- in signature order, before any body
statement -- into the (prologue) builder, so data stays a runtime binding
while shape/sparsity specialise the plan.  Scalar/int/bool parameters are
compile-time constants.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from typing import Any, Callable, Union, overload

from repro.frontend.compiler import (
    RESERVED_PREFIX,
    SourceMap,
    StatementCompiler,
    Value,
    names_loaded,
    names_stored,
    upward_exposed_reads,
)
from repro.frontend.errors import FrontendError
from repro.frontend.staged import (
    CarriedVar,
    CondTerm,
    ConditionSpec,
    StagedOutput,
    StagedProgram,
)
from repro.frontend.types import Matrix, MatrixInput, Scalar
from repro.lang.expr import MatrixExpr, MatrixRefExpr, ScalarExpr, ScalarRefExpr
from repro.lang.program import MatrixProgram, ProgramBuilder

#: What ``compile`` may return: a straight-line program or a staged one.
CompiledProgram = Union[MatrixProgram, StagedProgram]

_PARAM_KINDS = {"matrix": "Matrix", "float": "Scalar/float", "int": "int", "bool": "bool"}

_COMPARE_OPS: dict[type[ast.cmpop], str] = {
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Lt: "<",
    ast.LtE: "<=",
}


@dataclasses.dataclass(frozen=True)
class Param:
    """One declared parameter of a ``@matrix_program`` function."""

    name: str
    kind: str  # "matrix" | "float" | "int" | "bool"
    default: float | int | bool | None = None
    has_default: bool = False


def _annotation_kind(annotation: object) -> str | None:
    if annotation is Matrix:
        return "matrix"
    if annotation is Scalar or annotation is float:
        return "float"
    if annotation is int:
        return "int"
    if annotation is bool:
        return "bool"
    if isinstance(annotation, str):
        name = annotation.rsplit(".", 1)[-1]
        return {
            "Matrix": "matrix",
            "Scalar": "float",
            "float": "float",
            "int": "int",
            "bool": "bool",
        }.get(name)
    return None


class FrontendProgram:
    """A Python function compiled on demand into plan IR."""

    def __init__(
        self,
        fn: Callable[..., Any],
        *,
        name: str | None = None,
        max_segments: int = 200,
    ) -> None:
        self.fn = fn
        self.name = name or fn.__name__
        self.max_segments = max_segments
        self._fndef, self._src = self._parse_source(fn)
        self.params = self._parse_signature(fn)

    # -- decoration-time parsing --------------------------------------------

    def _parse_source(
        self, fn: Callable[..., Any]
    ) -> tuple[ast.FunctionDef, SourceMap]:
        try:
            lines, start = inspect.getsourcelines(fn)
        except (OSError, TypeError) as error:
            raise FrontendError(
                "cannot read the function's source (interactively defined "
                "functions cannot be compiled)",
                function=self.name,
            ) from error
        filename = inspect.getsourcefile(fn)
        src = SourceMap(self.name, filename, start - 1)
        module = ast.parse(textwrap.dedent("".join(lines)))
        for node in module.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.AsyncFunctionDef):
                    raise src.error(node, "async functions cannot be compiled")
                return node, src
        raise FrontendError(
            "matrix_program must decorate a plain function", function=self.name
        )

    def _parse_signature(self, fn: Callable[..., Any]) -> tuple[Param, ...]:
        params: list[Param] = []
        line = self._src.line(self._fndef)
        for parameter in inspect.signature(fn).parameters.values():
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise FrontendError(
                    f"*{parameter.name} parameters are not supported; declare "
                    "each argument explicitly",
                    function=self.name,
                    filename=self._src.filename,
                    line=line,
                )
            if parameter.annotation is inspect.Parameter.empty:
                raise FrontendError(
                    f"untyped argument {parameter.name!r}: annotate it with "
                    "Matrix, Scalar, int, float or bool",
                    function=self.name,
                    filename=self._src.filename,
                    line=line,
                )
            kind = _annotation_kind(parameter.annotation)
            if kind is None:
                raise FrontendError(
                    f"argument {parameter.name!r} has unsupported annotation "
                    f"{parameter.annotation!r}; use Matrix, Scalar, int, "
                    "float or bool",
                    function=self.name,
                    filename=self._src.filename,
                    line=line,
                )
            if parameter.name.startswith(RESERVED_PREFIX):
                raise FrontendError(
                    f"names starting with {RESERVED_PREFIX!r} are reserved",
                    function=self.name,
                    filename=self._src.filename,
                    line=line,
                )
            has_default = parameter.default is not inspect.Parameter.empty
            if has_default:
                if kind == "matrix":
                    raise FrontendError(
                        f"Matrix argument {parameter.name!r} cannot have a "
                        "default; bind it with matrix_input(...) at compile "
                        "time",
                        function=self.name,
                        filename=self._src.filename,
                        line=line,
                    )
                self._check_number(parameter.name, kind, parameter.default, line)
            params.append(
                Param(
                    parameter.name,
                    kind,
                    parameter.default if has_default else None,
                    has_default,
                )
            )
        return tuple(params)

    def _check_number(
        self, name: str, kind: str, value: object, line: int | None
    ) -> float | int | bool:
        error = FrontendError(
            f"argument {name!r} is declared {_PARAM_KINDS[kind]} but got "
            f"{value!r}",
            function=self.name,
            filename=self._src.filename,
            line=line,
        )
        if kind == "bool":
            if not isinstance(value, bool):
                raise error
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise error
        if kind == "int":
            if not isinstance(value, int):
                raise error
            return value
        return float(value)

    # -- the compile entry point --------------------------------------------

    def compile(self, **bindings: object) -> CompiledProgram:
        """Specialise against compile-time bindings and lower to plan IR."""
        valid = {param.name for param in self.params}
        for key in bindings:
            if key not in valid:
                raise FrontendError(
                    f"unknown compile-time argument {key!r}; this program "
                    f"takes: {', '.join(sorted(valid)) or '(none)'}",
                    function=self.name,
                )
        builder = ProgramBuilder()
        env: dict[str, Value] = {}
        for param in self.params:
            if param.name in bindings:
                value = bindings[param.name]
            elif param.has_default:
                value = param.default
            else:
                raise FrontendError(
                    f"missing compile-time binding for {param.name!r} "
                    f"({_PARAM_KINDS[param.kind]})",
                    function=self.name,
                )
            if param.kind == "matrix":
                if isinstance(value, tuple) and len(value) == 2:
                    value = MatrixInput(int(value[0]), int(value[1]))
                if not isinstance(value, MatrixInput):
                    raise FrontendError(
                        f"Matrix argument {param.name!r} must be bound with "
                        f"matrix_input(shape, sparsity=...), got {value!r}",
                        function=self.name,
                    )
                env[param.name] = builder.load(
                    param.name, value.shape, sparsity=value.sparsity
                )
            else:
                env[param.name] = self._check_number(
                    param.name, param.kind, value, None
                )

        body = list(self._fndef.body)
        while_indices = [
            index for index, stmt in enumerate(body) if isinstance(stmt, ast.While)
        ]
        if len(while_indices) > 1:
            raise self._src.error(
                body[while_indices[1]],
                "only one while loop per program is supported",
            )
        if not while_indices:
            compiler = StatementCompiler(builder, env, self._src)
            compiler.exec_block(body)
            program = builder.build()
            if not program.outputs and not program.scalar_outputs:
                raise FrontendError(
                    "program declares no output(...) or output_scalar(...)",
                    function=self.name,
                )
            return program
        index = while_indices[0]
        return self._compile_staged(
            builder,
            env,
            body[:index],
            body[index],
            body[index + 1 :],
        )

    # -- staged (while-loop) compilation ------------------------------------

    def _compile_staged(
        self,
        builder: ProgramBuilder,
        env: dict[str, Value],
        pre: list[ast.stmt],
        loop: ast.stmt,
        post: list[ast.stmt],
    ) -> StagedProgram:
        assert isinstance(loop, ast.While)
        if loop.orelse:
            raise self._src.error(loop, "while/else is not supported")
        prologue_compiler = StatementCompiler(builder, env, self._src)
        prologue_compiler.exec_block(pre)
        condition = self._compile_condition(prologue_compiler, loop.test)

        body_reads = upward_exposed_reads(loop.body)
        body_assigned = set(names_stored(loop))
        condition_reads = names_loaded(loop.test)
        carried_names: list[str] = []
        for name in body_reads + [
            name for name in condition_reads if name not in body_reads
        ]:
            value = env.get(name)
            if not isinstance(value, MatrixRefExpr):
                continue
            if name in body_reads or name not in body_assigned:
                carried_names.append(name)

        body_builder = ProgramBuilder()
        body_env: dict[str, Value] = {}
        load_shapes: dict[str, tuple[int, int]] = {}
        for name in carried_names:
            ref = env[name]
            assert isinstance(ref, MatrixRefExpr)
            shape = builder.shape_of(ref.name)
            loop_carried = name in body_assigned
            sparsity = 1.0 if loop_carried else builder.declared_sparsity(ref.name)
            body_env[name] = body_builder.load(name, shape, sparsity=sparsity)
            load_shapes[name] = shape
        for name, value in env.items():
            if name not in body_env and isinstance(value, (bool, int, float)):
                body_env[name] = value
        outer_scalars = frozenset(
            name
            for name, value in env.items()
            if isinstance(value, ScalarRefExpr)
        )
        body_compiler = StatementCompiler(
            body_builder,
            body_env,
            self._src,
            forbid_outputs=True,
            outer_scalars=outer_scalars,
        )
        body_compiler.exec_block(loop.body)
        body_condition = self._compile_condition(body_compiler, loop.test)
        if body_condition != condition:  # pragma: no cover - same ast, same env
            raise FrontendError(
                "internal error: prologue and body lowered the while "
                "condition differently",
                function=self.name,
            )

        carried: list[CarriedVar] = []
        for name in carried_names:
            ref = env[name]
            assert isinstance(ref, MatrixRefExpr)
            loop_version: str | None = None
            if name in body_assigned:
                final = body_env.get(name)
                if not isinstance(final, MatrixRefExpr):
                    raise self._src.error(
                        loop,
                        f"loop-carried variable {name!r} must stay a matrix "
                        "across iterations",
                    )
                final_shape = body_builder.shape_of(final.name)
                if final_shape != load_shapes[name]:
                    raise self._src.error(
                        loop,
                        f"shape of loop-carried variable {name!r} changes "
                        f"across iterations: {load_shapes[name][0]}x"
                        f"{load_shapes[name][1]} -> {final_shape[0]}x"
                        f"{final_shape[1]}",
                    )
                body_builder.output(final)
                loop_version = final.name
            if builder.is_input(ref.name):
                first_kind = "input"
            else:
                first_kind = "prologue"
                builder.output(ref)
            carried.append(CarriedVar(name, first_kind, ref.name, loop_version))

        matrix_outputs, scalar_outputs = self._trailing_outputs(
            post, builder, env, body_builder, body_env, body_assigned
        )
        if not matrix_outputs and not scalar_outputs:
            raise FrontendError(
                "program declares no output(...) or output_scalar(...) "
                "after the while loop",
                function=self.name,
            )
        return StagedProgram(
            name=self.name,
            prologue=builder.build(),
            body=body_builder.build(),
            condition=condition,
            carried=tuple(carried),
            matrix_outputs=tuple(matrix_outputs),
            scalar_outputs=tuple(scalar_outputs),
            max_segments=self.max_segments,
        )

    def _compile_condition(
        self, compiler: StatementCompiler, test: ast.expr
    ) -> ConditionSpec:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            raise self._src.error(
                test,
                "a while condition must be a single comparison like "
                "`while norm2(delta) > eps`",
            )
        symbol = _COMPARE_OPS.get(type(test.ops[0]))
        if symbol is None:
            raise self._src.error(
                test,
                f"unsupported while comparison "
                f"{type(test.ops[0]).__name__}; use <, <=, > or >=",
            )
        lhs = self._condition_term(compiler, test.left, "_while_lhs")
        rhs = self._condition_term(compiler, test.comparators[0], "_while_rhs")
        if isinstance(lhs, float) and isinstance(rhs, float):
            raise self._src.error(
                test,
                "the while condition is constant at compile time; it must "
                "read at least one runtime scalar",
            )
        return ConditionSpec(symbol, lhs, rhs)

    def _condition_term(
        self, compiler: StatementCompiler, node: ast.expr, slot: str
    ) -> CondTerm:
        value = compiler.eval(node)
        if isinstance(value, bool):
            raise self._src.error(node, "while conditions compare numbers, not bools")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, MatrixExpr):
            raise self._src.error(
                node,
                "a while condition must compare scalars; reduce the matrix "
                "first, e.g. norm2(...), sum(...) or value(...)",
            )
        assert isinstance(value, ScalarExpr)

        def emit() -> str:
            ref = compiler.builder.scalar(slot, value)
            compiler.builder.scalar_output(ref)
            return ref.name

        return compiler._guard(node, emit)

    def _trailing_outputs(
        self,
        post: list[ast.stmt],
        builder: ProgramBuilder,
        env: dict[str, Value],
        body_builder: ProgramBuilder,
        body_env: dict[str, Value],
        body_assigned: set[str],
    ) -> tuple[list[StagedOutput], list[StagedOutput]]:
        matrix_outputs: list[StagedOutput] = []
        scalar_outputs: list[StagedOutput] = []
        for stmt in post:
            call = stmt.value if isinstance(stmt, ast.Expr) else None
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id in ("output", "output_scalar")
            ):
                raise self._src.error(
                    stmt,
                    "statements after a while loop must be output(...) / "
                    "output_scalar(...) calls",
                )
            kind = call.func.id
            if (
                len(call.args) != 1
                or call.keywords
                or not isinstance(call.args[0], ast.Name)
            ):
                raise self._src.error(
                    call, f"{kind}() takes exactly one variable name"
                )
            name = call.args[0].id
            if kind == "output":
                matrix_outputs.append(
                    self._staged_matrix_output(
                        call, name, builder, env, body_builder, body_env,
                        body_assigned,
                    )
                )
            else:
                scalar_outputs.append(
                    self._staged_scalar_output(
                        call, name, builder, env, body_builder, body_env
                    )
                )
        return matrix_outputs, scalar_outputs

    def _staged_matrix_output(
        self,
        call: ast.Call,
        name: str,
        builder: ProgramBuilder,
        env: dict[str, Value],
        body_builder: ProgramBuilder,
        body_env: dict[str, Value],
        body_assigned: set[str],
    ) -> StagedOutput:
        body_version: str | None = None
        body_value = body_env.get(name)
        if name in body_assigned and isinstance(body_value, MatrixRefExpr):
            body_builder.output(body_value)
            body_version = body_value.name
        prologue_kind: str | None = None
        prologue_version: str | None = None
        value = env.get(name)
        if isinstance(value, MatrixRefExpr):
            # Materialised by the prologue even when it is a plain input, so
            # a zero-segment run still resolves every trailing output.
            prologue_version = value.name
            prologue_kind = "output"
            builder.output(value)
        if body_version is None and prologue_kind is None:
            raise self._src.error(
                call, f"output() needs a matrix, {name!r} is not one"
            )
        return StagedOutput(name, prologue_kind, prologue_version, body_version)

    def _staged_scalar_output(
        self,
        call: ast.Call,
        name: str,
        builder: ProgramBuilder,
        env: dict[str, Value],
        body_builder: ProgramBuilder,
        body_env: dict[str, Value],
    ) -> StagedOutput:
        body_version: str | None = None
        body_value = body_env.get(name)
        if isinstance(body_value, ScalarRefExpr):
            body_builder.scalar_output(body_value)
            body_version = body_value.name
        prologue_kind: str | None = None
        prologue_version: str | None = None
        value = env.get(name)
        if isinstance(value, ScalarRefExpr):
            builder.scalar_output(value)
            prologue_kind = "output"
            prologue_version = value.name
        if body_version is None and prologue_kind is None:
            raise self._src.error(
                call,
                f"output_scalar() needs a computed runtime scalar, "
                f"{name!r} is not one",
            )
        return StagedOutput(name, prologue_kind, prologue_version, body_version)

    # -- niceties ------------------------------------------------------------

    def __call__(self, *args: object, **kwargs: object) -> None:
        raise FrontendError(
            "matrix programs are compiled, not called: use "
            f"{self.name}.compile(...) and run the result through a session",
            function=self.name,
        )

    def __repr__(self) -> str:
        signature = ", ".join(
            f"{param.name}: {_PARAM_KINDS[param.kind]}" for param in self.params
        )
        return f"<matrix_program {self.name}({signature})>"


@overload
def matrix_program(fn: Callable[..., Any]) -> FrontendProgram: ...


@overload
def matrix_program(
    fn: None = None, *, name: str | None = None, max_segments: int = 200
) -> Callable[[Callable[..., Any]], FrontendProgram]: ...


def matrix_program(
    fn: Callable[..., Any] | None = None,
    *,
    name: str | None = None,
    max_segments: int = 200,
) -> FrontendProgram | Callable[[Callable[..., Any]], FrontendProgram]:
    """Declare a typed Python function as a compilable matrix program.

    Usable bare (``@matrix_program``) or with options
    (``@matrix_program(name="pagerank", max_segments=50)``).
    """

    def wrap(function: Callable[..., Any]) -> FrontendProgram:
        return FrontendProgram(function, name=name, max_segments=max_segments)

    return wrap if fn is None else wrap(fn)

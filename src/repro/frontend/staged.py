"""Staged programs: the compile-time artefact of a ``while`` loop.

The paper's systems pre-unroll every loop because the plan must be fixed
before execution.  The frontend keeps that property *per segment* while
supporting data-dependent convergence loops: a ``while`` loop compiles to
a :class:`StagedProgram` --

* ``prologue``: everything before the loop, ending with the condition
  scalars (so the driver can decide whether the body runs at all);
* ``body``: the loop body compiled **once** as its own
  :class:`~repro.lang.program.MatrixProgram` whose inputs are the carried
  matrices, ending with the same condition scalars;
* ``condition``: which scalar(s) to compare, and how.

At run time :meth:`repro.session.DMacSession.run_staged` executes the
prologue, then keeps appending body segments -- re-using the body's single
plan, wiring each segment's carried outputs into the next segment's loads
-- until the condition scalar flips.  The plan is thereby extended
dynamically, and every segment passes through the full static stack
(lint, verification, peak-memory prediction, trace reconciliation)
exactly like a standalone program.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.errors import ProgramError
from repro.lang.program import MatrixProgram

#: One side of the convergence comparison: a scalar-output name shared by
#: the prologue and body programs, or a compile-time constant.
CondTerm = Union[str, float]

#: Comparison operators a ``while`` condition may use.
CONDITION_OPS = (">", ">=", "<", "<=")


@dataclasses.dataclass(frozen=True)
class ConditionSpec:
    """``lhs <op> rhs`` evaluated on the driver after every segment."""

    op: str
    lhs: CondTerm
    rhs: CondTerm

    def __post_init__(self) -> None:
        if self.op not in CONDITION_OPS:
            raise ProgramError(f"unknown while-condition operator {self.op!r}")

    def evaluate(self, scalars: dict[str, float]) -> bool:
        """Decide whether another segment runs, from a segment's scalars."""
        lhs = scalars[self.lhs] if isinstance(self.lhs, str) else self.lhs
        rhs = scalars[self.rhs] if isinstance(self.rhs, str) else self.rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        if self.op == "<":
            return lhs < rhs
        return lhs <= rhs

    def describe(self) -> str:
        lhs = self.lhs if isinstance(self.lhs, str) else repr(self.lhs)
        rhs = self.rhs if isinstance(self.rhs, str) else repr(self.rhs)
        return f"{lhs} {self.op} {rhs}"


@dataclasses.dataclass(frozen=True)
class CarriedVar:
    """How one body-program input is fed, segment after segment.

    ``name`` is both the user variable and the body program's load
    version.  The first body segment reads from ``first_version`` -- a
    runtime input array (``first_kind == "input"``) or a prologue output
    (``first_kind == "prologue"``).  If the body re-assigns the variable,
    ``loop_version`` names the body output every later segment reads;
    loop-invariant inputs keep their first source forever.
    """

    name: str
    first_kind: str  # "input" | "prologue"
    first_version: str
    loop_version: str | None = None


@dataclasses.dataclass(frozen=True)
class StagedOutput:
    """Where a user-facing output lives, depending on how far the run got.

    A variable assigned both before and inside the loop resolves to the
    last body segment when at least one ran, and to the prologue (or even
    directly to a bound input) when the condition was false immediately.
    """

    name: str
    prologue_kind: str | None  # "output" | None
    prologue_version: str | None
    body_version: str | None


@dataclasses.dataclass(frozen=True)
class StagedProgram:
    """A convergence-loop program: prologue + re-executable body segment."""

    name: str
    prologue: MatrixProgram
    body: MatrixProgram
    condition: ConditionSpec
    carried: tuple[CarriedVar, ...]
    matrix_outputs: tuple[StagedOutput, ...]
    scalar_outputs: tuple[StagedOutput, ...]
    max_segments: int = 200

    def segments(self) -> tuple[tuple[str, MatrixProgram], ...]:
        """The distinct programs a staged run plans (for CLI inspection)."""
        return (("prologue", self.prologue), ("body", self.body))

    def describe(self) -> str:
        lines = [
            f"# staged program {self.name}: while {self.condition.describe()}",
            "# prologue",
            self.prologue.describe(),
            "# body (per segment)",
            self.body.describe(),
        ]
        return "\n".join(lines)

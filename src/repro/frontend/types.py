"""Surface types of the Python frontend: parameter annotations + bindings.

A ``@matrix_program`` function declares its interface with ordinary Python
annotations:

* ``Matrix`` -- a distributed matrix handle.  Its data is bound at
  execution time (like ``ProgramBuilder.load``); its *shape and sparsity*
  are bound at compile time via :func:`matrix_input`.
* ``Scalar`` (or plain ``float``) -- a compile-time scalar constant, e.g.
  a step size or convergence threshold.
* ``int`` -- a compile-time integer, e.g. an iteration count or rank.
* ``bool`` -- a compile-time flag selecting between program variants
  (``if`` branches on it are resolved during compilation).

Compile-time values specialise the emitted :class:`MatrixProgram` exactly
the way the legacy hand-built ``build_*_program`` factories did with
ordinary Python arguments; only matrix *data* remains a runtime input.
"""

from __future__ import annotations

import dataclasses

from repro.frontend.errors import FrontendError


class Matrix:
    """Annotation marker: a distributed matrix parameter.

    Inside a ``@matrix_program`` body a ``Matrix`` parameter supports the
    full expression language (``@``, ``*``, ``+``, ``.T``, aggregates) plus
    the compile-time shape accessors ``.rows`` and ``.cols``.
    """

    # Purely an annotation: never instantiated.
    def __init__(self) -> None:  # pragma: no cover - guarded construction
        raise FrontendError(
            "Matrix is an annotation, not a value; bind data with "
            "matrix_input(shape, sparsity=...) at compile time"
        )


class Scalar:
    """Annotation marker: a compile-time scalar parameter (same as ``float``)."""

    def __init__(self) -> None:  # pragma: no cover - guarded construction
        raise FrontendError("Scalar is an annotation, not a value; pass a float")


@dataclasses.dataclass(frozen=True)
class MatrixInput:
    """Compile-time binding for a ``Matrix`` parameter: shape + sparsity."""

    rows: int
    cols: int
    sparsity: float = 1.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise FrontendError(
                f"matrix dimensions must be >= 1, got {self.rows}x{self.cols}"
            )
        if not 0.0 <= self.sparsity <= 1.0:
            raise FrontendError(
                f"sparsity must lie in [0, 1], got {self.sparsity}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)


def matrix_input(shape: tuple[int, int], sparsity: float = 1.0) -> MatrixInput:
    """The compile-time description of one ``Matrix`` argument."""
    rows, cols = shape
    return MatrixInput(int(rows), int(cols), float(sparsity))

"""Two-dimensional block-cyclic partitioning + SUMMA (paper future work)."""

from repro.grid2d.layout import (
    BlockCyclicPartitioner,
    Grid2DMatrix,
    GridLayout,
    one_d_imbalance,
)
from repro.grid2d.summa import summa_matmul, summa_predicted_bytes, summa_stage_count

__all__ = [
    "BlockCyclicPartitioner",
    "Grid2DMatrix",
    "GridLayout",
    "one_d_imbalance",
    "summa_matmul",
    "summa_predicted_bytes",
    "summa_stage_count",
]

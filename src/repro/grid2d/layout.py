"""Two-dimensional block-cyclic layout (the paper's stated future work).

Section 3.1 and the related work: "two-dimensional partitioning methods,
such as chunk-based [SciDB] and block-cyclic [ScaLAPACK], have their own
merits ... a more balanced partition ... but with more computation stages,
which will be investigated in future work."  This extension implements that
investigation on the same metered substrate: a ``pr x pc`` process grid,
blocks assigned cyclically (block ``(bi, bj)`` to grid cell
``(bi mod pr, bj mod pc)``), and the SUMMA multiplication algorithm on top
(:mod:`repro.grid2d.summa`).

Deliberately *not* folded into the DMac planner: the paper's dependency
table (Table 2) is defined over the three 1-D schemes, and extending it is
exactly the open question the authors defer.  The benchmark
``bench_ext_2d.py`` quantifies the trade-off instead.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.blocks import assemble, grid_shape, split
from repro.blocks.ops import Block
from repro.errors import SchemeError
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import Partitioner
from repro.rdd.rdd import RDD
from repro.rdd.sizeof import model_sizeof

BlockKey = tuple[int, int]


@dataclasses.dataclass(frozen=True)
class GridLayout:
    """A ``pr x pc`` process grid over the cluster's workers."""

    pr: int
    pc: int

    def __post_init__(self) -> None:
        if self.pr < 1 or self.pc < 1:
            raise SchemeError(f"process grid must be positive, got {self.pr}x{self.pc}")

    @property
    def workers(self) -> int:
        return self.pr * self.pc

    def owner(self, key: BlockKey) -> int:
        """Worker owning block ``(bi, bj)`` under block-cyclic placement."""
        bi, bj = key
        return (bi % self.pr) * self.pc + (bj % self.pc)

    def cell(self, worker: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of a worker."""
        if not 0 <= worker < self.workers:
            raise SchemeError(f"worker {worker} outside the {self.pr}x{self.pc} grid")
        return divmod(worker, self.pc)

    @classmethod
    def near_square(cls, workers: int) -> "GridLayout":
        """The most-square grid for a worker count (ScaLAPACK's default)."""
        pr = int(math.sqrt(workers))
        while workers % pr:
            pr -= 1
        return cls(pr, workers // pr)


class BlockCyclicPartitioner(Partitioner):
    """RDD partitioner realising a block-cyclic grid layout."""

    def __init__(self, layout: GridLayout) -> None:
        super().__init__(layout.workers)
        self.layout = layout

    def partition_for(self, key: object) -> int:
        return self.layout.owner(key)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlockCyclicPartitioner) and self.layout == other.layout

    def __hash__(self) -> int:
        return hash(("BlockCyclicPartitioner", self.layout))


class Grid2DMatrix:
    """A matrix distributed over a 2-D block-cyclic process grid."""

    def __init__(
        self,
        context: ClusterContext,
        rdd: RDD,
        rows: int,
        cols: int,
        block_size: int,
        layout: GridLayout,
    ) -> None:
        if layout.workers > context.num_workers:
            raise SchemeError(
                f"grid {layout.pr}x{layout.pc} needs {layout.workers} workers, "
                f"cluster has {context.num_workers}"
            )
        self.context = context
        self.rdd = rdd
        self.rows = rows
        self.cols = cols
        self.block_size = block_size
        self.layout = layout

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        context: ClusterContext,
        array: np.ndarray,
        block_size: int,
        layout: GridLayout | None = None,
        storage: str = "auto",
    ) -> "Grid2DMatrix":
        """Distribute a matrix block-cyclically (initial load: no traffic)."""
        layout = layout or GridLayout.near_square(context.num_workers)
        arr = np.asarray(array, dtype=np.float64)
        grid = split(arr, block_size, storage=storage)
        items = [(key, block) for key, block in sorted(grid.items()) if block.nnz > 0]
        rdd = context.parallelize(items, BlockCyclicPartitioner(layout))
        rows, cols = arr.shape
        return cls(context, rdd, rows, cols, block_size, layout)

    # -- views ---------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def block_grid_shape(self) -> tuple[int, int]:
        return grid_shape(self.rows, self.cols, self.block_size)

    def worker_grid(self, worker: int) -> dict[BlockKey, Block]:
        return dict(self.rdd.worker_partitions(worker))

    def to_numpy(self) -> np.ndarray:
        return assemble(dict(self.rdd.collect()), self.shape, self.block_size)

    # -- balance metric --------------------------------------------------------

    def worker_bytes(self) -> list[int]:
        """Model bytes held by each worker (the balance the paper mentions)."""
        return [
            sum(model_sizeof(block) for block in self.worker_grid(w).values())
            for w in range(self.layout.workers)
        ]

    def imbalance(self) -> float:
        """max/mean of per-worker bytes; 1.0 is perfectly balanced."""
        loads = self.worker_bytes()
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0


def one_d_imbalance(
    context: ClusterContext, array: np.ndarray, block_size: int, row_scheme: bool = True
) -> float:
    """The same imbalance metric for a 1-D Row/Column placement, for
    comparison with :meth:`Grid2DMatrix.imbalance`."""
    from repro.matrix.distributed import DistributedMatrix
    from repro.matrix.schemes import Scheme

    scheme = Scheme.ROW if row_scheme else Scheme.COL
    matrix = DistributedMatrix.from_numpy(context, array, block_size, scheme)
    loads = [
        sum(model_sizeof(block) for block in matrix.worker_grid(w).values())
        for w in range(context.num_workers)
    ]
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean else 1.0

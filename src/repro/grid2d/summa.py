"""SUMMA matrix multiplication over the 2-D block-cyclic layout.

The Scalable Universal Matrix Multiplication Algorithm proceeds in one
round per inner block index ``k``:

1. the owners of the ``A[:, k]`` panel broadcast their blocks along their
   *process row* (``pc - 1`` copies each),
2. the owners of the ``B[k, :]`` panel broadcast along their *process
   column* (``pr - 1`` copies each),
3. every process multiplies the panels it received and accumulates into the
   result blocks it owns.

Traffic is therefore ``|A| (pc - 1) + |B| (pr - 1)`` in total -- for a
near-square grid of ``K`` workers, about ``(sqrt(K) - 1)(|A| + |B|)``,
compared with ``K x |smaller operand|`` for replication-based 1-D
multiplication and ``K x |C|`` for CPMM.  The flip side the paper points
out: one *stage per k-panel* instead of RMM's single local stage.

Every panel transfer is metered through the cluster ledger; compute runs on
each owner's local engine so flops land on the right worker.
"""

from __future__ import annotations

from repro.blocks import ops as block_ops
from repro.blocks.dense import DenseBlock
from repro.errors import ShapeError
from repro.grid2d.layout import BlockCyclicPartitioner, Grid2DMatrix
from repro.rdd.rdd import RDD
from repro.rdd.sizeof import model_sizeof


def summa_matmul(a: Grid2DMatrix, b: Grid2DMatrix) -> Grid2DMatrix:
    """``C = A @ B`` with SUMMA on matching block-cyclic layouts."""
    if a.cols != b.rows:
        raise ShapeError(f"matmul inner dimensions differ: {a.shape} @ {b.shape}")
    if a.block_size != b.block_size:
        raise ShapeError(
            f"operands must share a block size: {a.block_size} vs {b.block_size}"
        )
    if a.layout != b.layout:
        raise ShapeError("SUMMA requires both operands on the same process grid")

    context = a.context
    layout = a.layout
    a_blocks = dict(a.rdd.collect())
    b_blocks = dict(b.rdd.collect())

    # Panel traffic: each owned A block is replicated to the other pc - 1
    # processes of its grid row; each B block to the other pr - 1 of its
    # grid column.  (A block already colocated with every consumer would
    # need pc = 1; the general formula covers it.)
    panel_bytes = sum(model_sizeof(blk) for blk in a_blocks.values()) * (layout.pc - 1)
    panel_bytes += sum(model_sizeof(blk) for blk in b_blocks.values()) * (layout.pr - 1)
    context.transfer("broadcast", panel_bytes)

    block_rows, inner = a.block_grid_shape
    inner_b, block_cols = b.block_grid_shape

    # Each worker accumulates exactly the result blocks it owns.
    partitions: list[list] = [[] for __ in range(layout.workers)]
    for worker in range(layout.workers):
        engine = context.engines[worker]
        row, col = layout.cell(worker)
        owned: dict[tuple[int, int], DenseBlock] = {}
        for bi in range(row, block_rows, layout.pr):
            for bj in range(col, block_cols, layout.pc):
                target: DenseBlock | None = None
                for k in range(inner):
                    left = a_blocks.get((bi, k))
                    right = b_blocks.get((k, bj))
                    if left is None or right is None:
                        continue
                    engine.stats.record(
                        block_ops.matmul_flops(left, right),
                        left.is_sparse or right.is_sparse,
                    )
                    partial = block_ops.matmul(left, right)
                    if target is None:
                        target = partial
                    else:
                        block_ops.accumulate(target, partial)
                if target is not None:
                    owned[(bi, bj)] = target
        partitions[worker] = sorted(owned.items())

    rdd = RDD(context, partitions, BlockCyclicPartitioner(layout))
    return Grid2DMatrix(context, rdd, a.rows, b.cols, a.block_size, layout)


def summa_stage_count(a: Grid2DMatrix) -> int:
    """SUMMA runs one synchronised panel stage per inner block index --
    the "more computation stages" cost the paper attributes to 2-D
    methods."""
    __, inner = a.block_grid_shape
    return inner


def summa_predicted_bytes(a: Grid2DMatrix, b: Grid2DMatrix) -> int:
    """Analytic SUMMA traffic (what :func:`summa_matmul` will meter)."""
    layout = a.layout
    a_bytes = sum(model_sizeof(blk) for __, blk in a.rdd.collect())
    b_bytes = sum(model_sizeof(blk) for __, blk in b.rdd.collect())
    return a_bytes * (layout.pc - 1) + b_bytes * (layout.pr - 1)

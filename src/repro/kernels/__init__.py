"""repro.kernels: the real-speed execution layer.

Three coordinated pieces close the gap between simulated-clock wins and
wall-clock wins (ROADMAP "Raw speed"):

* :mod:`repro.kernels.fused` -- composed cellwise-chain kernels behind the
  optimizer's fusion pass (:mod:`repro.planopt.fuse`): a whole
  multiply/divide ladder runs as one per-block composition with no
  intermediate distributed materialisation.
* :mod:`repro.kernels.batch` -- batched BLAS dispatch: a regular In-Place
  matmul stage's same-shape dense block products run as one broadcast
  ``np.matmul`` per inner index, folded in the canonical ascending-k
  accumulation order so results stay byte-identical.
* :mod:`repro.kernels.strassen` -- a Strassen block-matmul kernel above a
  dense-size crossover, priced by the cost model at its true
  ``O(n^2.807)`` flop count.

Everything here is pure block/ndarray computation: the modules know nothing
about engines, schedulers or plans beyond the step dataclasses they lower.
"""

from repro.kernels.batch import (
    GridProductPlan,
    StackBufferCache,
    plan_grid_product,
    stacked_matmul,
)
from repro.kernels.fused import (
    FusedChain,
    chain_key_sets,
    compose_key,
    lower_chain,
)
from repro.kernels.strassen import (
    recursion_base,
    strassen_flops,
    strassen_matmul,
    strassen_temp_bytes,
)

__all__ = [
    "FusedChain",
    "GridProductPlan",
    "StackBufferCache",
    "chain_key_sets",
    "compose_key",
    "lower_chain",
    "plan_grid_product",
    "recursion_base",
    "stacked_matmul",
    "strassen_flops",
    "strassen_matmul",
    "strassen_temp_bytes",
]

"""Batched BLAS dispatch for same-shape block products.

The local engine's In-Place matmul folds one ``A[i,k] @ B[k,j]`` partial at
a time.  Block grids are uniform away from the matrix edges, so most of a
stage's partial products share a shape -- exactly the situation where
stacked ``np.matmul`` calls (batched dgemm dispatches) recover the hardware
throughput that per-block Python dispatch wastes (MLlib's experience,
PAPERS.md).

Byte-identity: ``np.matmul`` over stacked or broadcast 3-D/4-D operands
performs the same 2-D dgemm per slice as the plain 2-D call, so every
batched slice is bitwise equal to the corresponding individual product;
the engine then folds the per-``k`` product planes into the accumulator in
the serial path's canonical ascending-``k`` order with plain elementwise
adds, so results are byte-identical to the unbatched engine.

Two facts decide how batching must be shaped, both measured on this
runtime:

* Stacking operands once per *pair* is a loss: in a grid product each
  ``A[i,k]`` block appears in one pair per result column, so pairwise
  stacking copies every operand ``O(grid width)`` times -- which costs as
  much as the small dgemms it feeds.  :func:`plan_grid_product` instead
  recognises the full cross-product structure of an In-Place matmul stage,
  so each distinct block is copied into its stack exactly once and each
  ascending-``k`` level runs as one broadcast ``np.matmul``.
* Freshly allocated stacking buffers page-fault on first touch, which can
  cost several times the stacked matmul itself.  :class:`StackBufferCache`
  keeps warm buffers alive across stages (checkout/checkin, so
  concurrently dispatched stage nodes on one engine never share a live
  buffer).

Past :data:`BATCH_MAX_DIM` the per-block dgemm dominates both paths and
batching is noise, so the engine leaves such grids on the serial path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Protocol, Sequence, Tuple

import numpy as np

Shape = Tuple[int, int]

#: Block coordinate within a grid: ``(block_row, block_col)``.
BlockKey = Tuple[int, int]

#: Largest block dimension worth batching: beyond this the per-pair dgemm
#: dwarfs the dispatch overhead batching removes.
BATCH_MAX_DIM = 64

#: Fewest result blocks worth batching.  Each ascending-``k`` level runs as
#: one gufunc call over ``tasks`` slices, so a near-degenerate stage (a
#: block dot product: one task, many levels) has no parallel width to
#: amortise the stacking copies and accumulator traffic -- measured ~0.8x.
#: From four tasks up the batched path measures at or above serial.
BATCH_MIN_TASKS = 4


class _BlockLike(Protocol):
    """The slice of the block interface the planner needs (duck-typed to
    keep :mod:`repro.kernels` import-free of :mod:`repro.blocks`)."""

    shape: Shape

    @property
    def is_sparse(self) -> bool: ...


@dataclass(frozen=True)
class GridProductPlan:
    """A batched execution plan for one In-Place matmul stage.

    The stage's ``MultiplyAccumulateTask``s form the full cross product
    ``{rows} x {cols}``, every task carrying one pair per inner index in
    ``inner`` (ascending -- the canonical accumulation order).  ``m``,
    ``k``, ``n`` are the uniform block dimensions.
    """

    rows: Tuple[int, ...]
    inner: Tuple[int, ...]
    cols: Tuple[int, ...]
    m: int
    k: int
    n: int

    @property
    def tasks(self) -> int:
        return len(self.rows) * len(self.cols)

    @property
    def pairs(self) -> int:
        return self.tasks * len(self.inner)

    @property
    def flops_per_task(self) -> int:
        return 2 * self.m * self.k * self.n * len(self.inner)


def plan_grid_product(
    a_grid: Mapping[BlockKey, _BlockLike],
    b_grid: Mapping[BlockKey, _BlockLike],
    *,
    max_dim: int = BATCH_MAX_DIM,
    min_tasks: int = BATCH_MIN_TASKS,
) -> GridProductPlan | None:
    """The :class:`GridProductPlan` for ``a_grid @ b_grid``, or ``None``.

    A plan exists when the product is a *regular* one -- both grids are
    full over their key ranges, every participating block is dense with
    one uniform shape per side, no dimension exceeds ``max_dim``, and the
    stage yields at least ``min_tasks`` result blocks (narrower stages
    lack the parallel width that pays for stacking).  Any irregularity
    (missing blocks, sparse operands, ragged edge blocks) returns ``None``
    and the engine falls back to the serial fold.
    """
    if not a_grid or not b_grid:
        return None
    rows = sorted({i for i, _ in a_grid})
    a_cols = sorted({k for _, k in a_grid})
    b_rows = sorted({k for k, _ in b_grid})
    cols = sorted({j for _, j in b_grid})
    # Full grids: every (row, col) coordinate within the key range present.
    if len(a_grid) != len(rows) * len(a_cols):
        return None
    if len(b_grid) != len(b_rows) * len(cols):
        return None
    inner = [k for k in a_cols if k in set(b_rows)]
    if not inner or len(rows) * len(cols) < min_tasks:
        return None
    a_blocks = [a_grid[i, k] for i in rows for k in inner]
    b_blocks = [b_grid[k, j] for k in inner for j in cols]
    if any(block.is_sparse for block in a_blocks + b_blocks):
        return None
    if len({block.shape for block in a_blocks}) != 1:
        return None
    if len({block.shape for block in b_blocks}) != 1:
        return None
    m, k = a_blocks[0].shape
    _, n = b_blocks[0].shape
    if max(m, k, n) > max_dim:
        return None
    return GridProductPlan(tuple(rows), tuple(inner), tuple(cols), m, k, n)


class StackBufferCache:
    """Warm, reusable stacking buffers with checkout/checkin semantics.

    ``checkout`` hands the caller exclusive base buffers; ``checkin``
    returns them for reuse once the caller no longer holds views into
    them.  Buffers are only ever reused after checkin, so concurrent
    stage nodes dispatching on the same engine each get private buffers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: slice shape -> idle base buffers, smallest capacity first
        self._idle: Dict[Tuple[int, ...], List[np.ndarray]] = {}

    def checkout(self, count: int, shape: Shape) -> np.ndarray:
        """An exclusive ``(>= count, *shape)`` float64 buffer."""
        with self._lock:
            stash = self._idle.get(shape, [])
            if stash and stash[-1].shape[0] >= count:
                return stash.pop()
        return np.empty((count,) + shape, dtype=np.float64)

    def checkin(self, *buffers: np.ndarray) -> None:
        """Return checked-out base buffers for later reuse."""
        with self._lock:
            for buffer in buffers:
                stash = self._idle.setdefault(buffer.shape[1:], [])
                stash.append(buffer)
                stash.sort(key=lambda b: b.shape[0])


def stacked_matmul(
    lefts: Sequence[np.ndarray], rights: Sequence[np.ndarray]
) -> np.ndarray:
    """One batched BLAS dispatch: ``out[i] = lefts[i] @ rights[i]``.

    All lefts must share a shape and all rights likewise.  Returns the
    stacked ``(batch, m, n)`` product array; each slice is bitwise equal
    to the corresponding individual 2-D product (the gufunc runs the same
    dgemm per slice), which is the contract the engine's byte-identity
    guarantee rests on.
    """
    if len(lefts) != len(rights):
        raise ValueError(
            f"stacked matmul needs pairwise operands, got {len(lefts)} lefts "
            f"and {len(rights)} rights"
        )
    if not lefts:
        raise ValueError("stacked matmul needs at least one pair")
    return np.matmul(np.asarray(lefts), np.asarray(rights))

"""Composed cellwise-chain kernels (the execution half of the fusion pass).

A :class:`~repro.core.plan.FusedCellwiseStep` carries the original cellwise
steps of a fused chain.  :func:`lower_chain` flattens that plan-level
payload into a :class:`FusedChain` -- op names plus positional operand
references -- which the local engine evaluates per block key with
:func:`compose_key`.  The composition replays the unfused engine's
semantics *exactly* (key policies, absent-block handling, sparse format
rules, flop accounting), so the fused output is byte-identical to running
the chain step by step; the win is that no intermediate chain value is ever
registered, published or shuffled as a distributed grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.blocks import ops
from repro.blocks.ops import Block
from repro.errors import BlockError

if TYPE_CHECKING:  # plan types only annotate; importing them would cycle
    from repro.core.plan import FusedCellwiseStep, MatrixInstance

BlockKey = Tuple[int, int]
Grid = Mapping[BlockKey, Block]

#: A reference to a chain value: ``("in", i)`` is the i-th external input
#: grid, ``("tmp", j)`` is the output of chain entry ``j``.
ChainRef = Tuple[str, int]

#: Flop-recording callback: ``record(flops, sparse)``.
RecordFn = Callable[[int, bool], None]


@dataclass(frozen=True)
class FusedChain:
    """Engine-level lowering of a fused cellwise chain.

    ``steps`` holds ``(op, left_ref, right_ref)`` triples in application
    order; references are resolved against the external input grids and the
    earlier chain entries.  Free of plan-level instances, so the engine and
    tests can build chains directly.
    """

    steps: Tuple[Tuple[str, ChainRef, ChainRef], ...]
    num_inputs: int

    def __post_init__(self) -> None:
        if not self.steps:
            raise BlockError("fused chain must contain at least one step")
        for position, (op, left, right) in enumerate(self.steps):
            if op not in ops.CELLWISE_OPS:
                raise BlockError(f"unknown cell-wise operator {op!r}")
            for kind, index in (left, right):
                if kind == "in":
                    if not 0 <= index < self.num_inputs:
                        raise BlockError(
                            f"fused chain step {position} references input "
                            f"{index} of {self.num_inputs}"
                        )
                elif kind == "tmp":
                    if not 0 <= index < position:
                        raise BlockError(
                            f"fused chain step {position} references "
                            f"temporary {index} before it is produced"
                        )
                else:
                    raise BlockError(f"unknown chain reference kind {kind!r}")


def lower_chain(
    step: FusedCellwiseStep,
) -> Tuple[FusedChain, Tuple[MatrixInstance, ...]]:
    """Flatten a plan-level fused step into a :class:`FusedChain` plus the
    external input instances, in the order the chain's references use."""
    external = step.inputs()
    input_index = {instance: i for i, instance in enumerate(external)}
    tmp_index: Dict[MatrixInstance, int] = {}
    steps: List[Tuple[str, ChainRef, ChainRef]] = []
    for position, inner in enumerate(step.chain):
        refs: List[ChainRef] = []
        for operand in (inner.left, inner.right):
            if operand in tmp_index:
                refs.append(("tmp", tmp_index[operand]))
            else:
                refs.append(("in", input_index[operand]))
        steps.append((inner.op.op, refs[0], refs[1]))
        tmp_index[inner.output] = position
    return FusedChain(tuple(steps), len(external)), external


def chain_key_sets(
    chain: FusedChain, input_keys: Tuple[FrozenSet[BlockKey], ...]
) -> List[FrozenSet[BlockKey]]:
    """The block-key set of every chain value, under the unfused engine's
    key policies: ``multiply`` intersects, ``add``/``subtract`` union,
    ``divide`` keeps the numerator's keys and requires the denominator to
    cover them (raising the engine's :class:`~repro.errors.BlockError`
    otherwise, exactly as the step-by-step execution would)."""
    if len(input_keys) != chain.num_inputs:
        raise BlockError(
            f"fused chain expects {chain.num_inputs} input grids, "
            f"got {len(input_keys)}"
        )
    tmp_keys: List[FrozenSet[BlockKey]] = []

    def keys_of(ref: ChainRef) -> FrozenSet[BlockKey]:
        kind, index = ref
        return input_keys[index] if kind == "in" else tmp_keys[index]

    for op, left_ref, right_ref in chain.steps:
        left_keys, right_keys = keys_of(left_ref), keys_of(right_ref)
        if op == "multiply":
            out = left_keys & right_keys
        elif op == "divide":
            missing = sorted(left_keys - right_keys)
            if missing:
                raise BlockError(
                    f"cell-wise divide: denominator grid lacks blocks {missing[:3]}"
                )
            out = left_keys
        else:
            out = left_keys | right_keys
        tmp_keys.append(out)
    return tmp_keys


def compose_key(
    chain: FusedChain,
    key: BlockKey,
    grids: Tuple[Grid, ...],
    record: RecordFn,
) -> Optional[Block]:
    """Evaluate the whole chain for one block key.

    Mirrors ``LocalEngine._bind_cellwise`` step for step: an absent operand
    of ``add`` copies the present one, of ``subtract`` negates it, and
    ``multiply`` with an absent operand is an absent (all-zero) result.
    Temporaries live only for the duration of this call -- nothing is
    published.  Returns ``None`` when the final value has no block at
    ``key`` (callers normally iterate the final key set, where the result
    is always a block).
    """
    tmps: List[Optional[Block]] = []

    def resolve(ref: ChainRef) -> Optional[Block]:
        kind, index = ref
        if kind == "in":
            return grids[index].get(key)
        return tmps[index]

    for op, left_ref, right_ref in chain.steps:
        left = resolve(left_ref)
        right = resolve(right_ref)
        if (
            (left is None and right is None)
            or (op == "multiply" and (left is None or right is None))
            or (op == "divide" and left is None)
        ):
            tmps.append(None)
            continue
        if left is None:
            assert right is not None
            result = (
                right.copy() if op == "add" else ops.scalar_op("multiply", right, -1.0)
            )
        elif right is None:
            result = left.copy()
        else:
            result = ops.cellwise(op, left, right)
        record(
            ops.cellwise_flops(left or right, right or left),
            (left is not None and left.is_sparse)
            or (right is not None and right.is_sparse),
        )
        tmps.append(result)
    return tmps[-1]

"""Strassen block matrix multiplication above a dense-size crossover.

Classic seven-multiplication Strassen recursion (after Stark, PAPERS.md):
a product of two dense blocks recurses into 7 half-size products plus 18
half-size additions, for an asymptotic ``O(n^log2(7)) ~= O(n^2.807)`` flop
count.  Odd dimensions are zero-padded per level.  The recursion bottoms
out at :func:`recursion_base` of the configured crossover, below which a
plain BLAS ``@`` is faster than the bookkeeping.

:func:`strassen_flops` prices the exact recursion the kernel performs (the
cost model charges what actually runs, not an asymptotic formula), and
:func:`strassen_temp_bytes` bounds the extra temporaries for the memory
predictor (:mod:`repro.verify.memory`).

Strassen reassociates additions, so its results are *not* bitwise equal to
naive matmul -- equivalence is within a relative tolerance (tests use
1e-8), which is why it is opt-in via ``ClusterConfig(strassen=True)``.
"""

from __future__ import annotations

import numpy as np

#: log2(7): the Strassen flop exponent the cost model advertises.
STRASSEN_EXPONENT = 2.807

#: Never recurse below this many rows/cols, whatever the crossover says.
_MIN_BASE = 16


def recursion_base(crossover: int) -> int:
    """The base-case size for a given crossover: a product at exactly the
    crossover size recurses one level into halves that run naively."""
    return max(_MIN_BASE, crossover // 2)


def strassen_matmul(a: np.ndarray, b: np.ndarray, base: int) -> np.ndarray:
    """``a @ b`` by Strassen recursion with base-case size ``base``."""
    m, k = a.shape
    kb, n = b.shape
    if k != kb:
        raise ValueError(f"strassen inner dimensions differ: {a.shape} @ {b.shape}")
    if min(m, k, n) <= base:
        return a @ b
    mh, kh, nh = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
    if (m, k, n) != (2 * mh, 2 * kh, 2 * nh):
        padded_a = np.zeros((2 * mh, 2 * kh), dtype=np.float64)
        padded_a[:m, :k] = a
        padded_b = np.zeros((2 * kh, 2 * nh), dtype=np.float64)
        padded_b[:k, :n] = b
        a, b = padded_a, padded_b
    a11, a12 = a[:mh, :kh], a[:mh, kh:]
    a21, a22 = a[mh:, :kh], a[mh:, kh:]
    b11, b12 = b[:kh, :nh], b[:kh, nh:]
    b21, b22 = b[kh:, :nh], b[kh:, nh:]

    m1 = strassen_matmul(a11 + a22, b11 + b22, base)
    m2 = strassen_matmul(a21 + a22, b11, base)
    m3 = strassen_matmul(a11, b12 - b22, base)
    m4 = strassen_matmul(a22, b21 - b11, base)
    m5 = strassen_matmul(a11 + a12, b22, base)
    m6 = strassen_matmul(a21 - a11, b11 + b12, base)
    m7 = strassen_matmul(a12 - a22, b21 + b22, base)

    out = np.empty((2 * mh, 2 * nh), dtype=np.float64)
    out[:mh, :nh] = m1 + m4 - m5 + m7
    out[:mh, nh:] = m3 + m5
    out[mh:, :nh] = m2 + m4
    out[mh:, nh:] = m1 - m2 + m3 + m6
    return np.ascontiguousarray(out[:m, :n])


def strassen_flops(m: int, k: int, n: int, base: int) -> int:
    """Flops of :func:`strassen_matmul` on an ``m x k @ k x n`` product:
    the same recursion, priced.  Base case is the naive ``2 m k n``; one
    level costs 7 recursive products plus 5 additions of each operand half
    and 8 additions of result halves."""
    if min(m, k, n) <= base:
        return 2 * m * k * n
    mh, kh, nh = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
    return (
        7 * strassen_flops(mh, kh, nh, base)
        + 5 * mh * kh
        + 5 * kh * nh
        + 8 * mh * nh
    )


def strassen_temp_bytes(m: int, k: int, n: int) -> int:
    """Model bytes of the extra temporaries one Strassen product holds at
    its recursion peak: padded operand copies plus the seven half-size
    ``M`` products; deeper levels add a geometric ``1/4`` series, bounded
    by ``4/3`` of the top level."""
    mh, kh, nh = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
    top_level = 8 * (m * k + k * n + 7 * mh * nh + 2 * mh * kh + 2 * kh * nh)
    return (top_level * 4) // 3

"""A small textual matrix language (DML-style) compiled to MatrixPrograms.

SystemML -- the paper's baseline -- exposes "an R-like high-level language"
so users "escape from hand-coding MapReduce programs"; DMac embeds the same
surface in Scala.  This module provides the textual counterpart for this
reproduction: a script language with R's operators (``%*%`` for matrix
multiplication, ``t(X)`` for transpose) that compiles straight into a
:class:`~repro.lang.program.MatrixProgram` via the ProgramBuilder, so every
planner feature works on scripts too.

Example::

    V = load(1000, 500, sparsity=0.01)
    W = random(1000, 10)
    H = random(10, 500)
    for (i in 1:10) {
        H = H * (t(W) %*% V) / (t(W) %*% W %*% H)
        W = W * (V %*% t(H)) / (W %*% H %*% t(H))
    }
    output(W)
    output(H)

Statements: assignments (matrix- or scalar-valued, decided by the
expression's type), ``for (i in a:b) { ... }`` loops (unrolled, matching
how the planner sees cross-iteration dependencies), ``output(X)`` and
``outputScalar(s)``.  Functions: ``load(rows, cols, sparsity=...)``,
``random(rows, cols, seed=...)``, ``full(rows, cols, value)``, ``t``,
``sum``, ``sqsum``, ``value``, ``norm2``, ``rowSums``, ``colSums``, and the
element-wise unaries (``exp``, ``log``, ``sqrt``, ``abs``, ``sign``,
``sigmoid``, ``reciprocal``).  Comments run from ``#`` to end of line.

Operator precedence follows R: ``%*%`` binds tighter than ``*``/``/``,
which bind tighter than ``+``/``-``; unary minus tighter than all.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import ProgramError
from repro.lang.expr import MatrixExpr, ScalarExpr, UnaryExpr
from repro.lang.program import MatrixProgram, ProgramBuilder

#: Element-wise unary function names accepted in scripts.
_UNARY_FUNCS = ("exp", "log", "sqrt", "abs", "sign", "sigmoid", "reciprocal")

_TOKEN_SPEC = [
    ("NUMBER", r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?"),
    ("MATMUL", r"%\*%"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("OP", r"[+\-*/=(){},:]"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("COMMENT", r"#[^\n]*"),
    ("MISMATCH", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclasses.dataclass(frozen=True)
class _Token:
    kind: str  # NUMBER | MATMUL | IDENT | OP | EOF
    text: str
    line: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind == "NEWLINE":
            line += 1
        elif kind in ("SKIP", "COMMENT"):
            continue
        elif kind == "MISMATCH":
            raise ProgramError(f"line {line}: unexpected character {text!r}")
        else:
            tokens.append(_Token(kind, text, line))
    tokens.append(_Token("EOF", "", line))
    return tokens


class _Parser:
    """Recursive-descent parser driving a ProgramBuilder."""

    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._pos = 0
        self._builder = ProgramBuilder()
        #: script name -> matrix handle or scalar handle or float
        self._env: dict[str, object] = {}

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ProgramError(
                f"line {token.line}: expected {text!r}, got {token.text!r}"
            )
        return token

    def _at(self, text: str) -> bool:
        return self._peek().text == text

    # -- statements ----------------------------------------------------------

    def parse(self) -> MatrixProgram:
        while self._peek().kind != "EOF":
            self._statement()
        return self._builder.build()

    def _statement(self) -> None:
        token = self._peek()
        if token.kind != "IDENT":
            raise ProgramError(f"line {token.line}: expected a statement, got {token.text!r}")
        if token.text == "for":
            self._for_loop()
        elif token.text in ("output", "outputScalar"):
            self._output()
        else:
            self._assignment()

    def _assignment(self) -> None:
        name_token = self._next()
        name = name_token.text
        self._expect("=")
        value = self._expression()
        if isinstance(value, MatrixExpr):
            self._env[name] = self._builder.assign(name, value)
        elif isinstance(value, ScalarExpr):
            self._env[name] = self._builder.scalar(name, value)
        elif isinstance(value, float):
            self._env[name] = value  # plain driver constant
        else:  # pragma: no cover - expression() returns only these
            raise ProgramError(f"line {name_token.line}: cannot assign {value!r}")

    def _for_loop(self) -> None:
        for_token = self._expect("for")
        self._expect("(")
        loop_var = self._next()
        if loop_var.kind != "IDENT":
            raise ProgramError(f"line {loop_var.line}: expected a loop variable")
        in_token = self._next()
        if in_token.text != "in":
            raise ProgramError(f"line {in_token.line}: expected 'in'")
        start = self._integer()
        self._expect(":")
        stop = self._integer()
        self._expect(")")
        self._expect("{")
        body_start = self._pos
        if stop < start:
            raise ProgramError(f"line {for_token.line}: empty loop range {start}:{stop}")
        for iteration in range(start, stop + 1):
            self._pos = body_start
            self._env[loop_var.text] = float(iteration)
            while not self._at("}"):
                if self._peek().kind == "EOF":
                    raise ProgramError(f"line {for_token.line}: unclosed loop body")
                self._statement()
        self._expect("}")

    def _output(self) -> None:
        keyword = self._next().text
        self._expect("(")
        target = self._next()
        if target.kind != "IDENT":
            raise ProgramError(f"line {target.line}: output() takes a variable name")
        self._expect(")")
        handle = self._env.get(target.text)
        if handle is None:
            raise ProgramError(f"line {target.line}: unknown variable {target.text!r}")
        if keyword == "output":
            if not isinstance(handle, MatrixExpr):
                raise ProgramError(
                    f"line {target.line}: output() needs a matrix, {target.text!r} is not"
                )
            self._builder.output(handle)
        else:
            if not isinstance(handle, ScalarExpr):
                raise ProgramError(
                    f"line {target.line}: outputScalar() needs a scalar, "
                    f"{target.text!r} is not"
                )
            self._builder.scalar_output(handle)

    def _integer(self) -> int:
        token = self._next()
        if token.kind != "NUMBER" or not token.text.isdigit():
            raise ProgramError(f"line {token.line}: expected an integer, got {token.text!r}")
        return int(token.text)

    # -- expressions (R precedence: %*% > * / > + -) ----------------------------

    def _expression(self):
        return self._additive()

    def _additive(self):
        left = self._multiplicative()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            right = self._multiplicative()
            left = self._combine(left, right, "add" if op == "+" else "subtract")
        return left

    def _multiplicative(self):
        left = self._matmul()
        while self._peek().text in ("*", "/"):
            op = self._next().text
            right = self._matmul()
            left = self._combine(left, right, "multiply" if op == "*" else "divide")
        return left

    def _matmul(self):
        left = self._unary()
        while self._peek().kind == "MATMUL":
            token = self._next()
            right = self._unary()
            if not (isinstance(left, MatrixExpr) and isinstance(right, MatrixExpr)):
                raise ProgramError(f"line {token.line}: %*% needs matrix operands")
            left = left @ right
        return left

    def _unary(self):
        if self._at("-"):
            token = self._next()
            operand = self._unary()
            if isinstance(operand, float):
                return -operand
            return -operand  # MatrixExpr / ScalarExpr both overload negation
        return self._primary()

    def _primary(self):
        token = self._next()
        if token.kind == "NUMBER":
            return float(token.text)
        if token.text == "(":
            inner = self._expression()
            self._expect(")")
            return inner
        if token.kind == "IDENT":
            if self._at("("):
                return self._call(token)
            value = self._env.get(token.text)
            if value is None:
                raise ProgramError(f"line {token.line}: unknown variable {token.text!r}")
            return value
        raise ProgramError(f"line {token.line}: unexpected token {token.text!r}")

    # -- function calls -----------------------------------------------------

    def _call(self, name_token: _Token):
        name = name_token.text
        line = name_token.line
        self._expect("(")
        positional: list[object] = []
        keywords: dict[str, object] = {}
        if not self._at(")"):
            while True:
                if (
                    self._peek().kind == "IDENT"
                    and self._tokens[self._pos + 1].text == "="
                ):
                    key = self._next().text
                    self._expect("=")
                    keywords[key] = self._expression()
                else:
                    positional.append(self._expression())
                if self._at(","):
                    self._next()
                    continue
                break
        self._expect(")")
        return self._apply(name, positional, keywords, line)

    def _apply(self, name: str, args: list[object], kwargs: dict[str, object], line: int):
        def matrix_arg(index: int = 0) -> MatrixExpr:
            if len(args) <= index or not isinstance(args[index], MatrixExpr):
                raise ProgramError(f"line {line}: {name}() needs a matrix argument")
            return args[index]  # type: ignore[return-value]

        def number(value: object, what: str) -> float:
            if isinstance(value, float):
                return value
            raise ProgramError(f"line {line}: {name}() {what} must be a number")

        if name == "t":
            return matrix_arg().T
        if name == "sum":
            return matrix_arg().sum()
        if name == "sqsum":
            return matrix_arg().sq_sum()
        if name == "norm2":
            return matrix_arg().norm2()
        if name == "value":
            return matrix_arg().value()
        if name == "rowSums":
            return matrix_arg().row_sums()
        if name == "colSums":
            return matrix_arg().col_sums()
        if name in _UNARY_FUNCS:
            return UnaryExpr(name, matrix_arg())
        if name in ("load", "random", "full"):
            if len(args) < 2:
                raise ProgramError(f"line {line}: {name}(rows, cols, ...) needs dimensions")
            rows = int(number(args[0], "rows"))
            cols = int(number(args[1], "cols"))
            fresh = f"_{name}{line}_{self._pos}"
            if name == "load":
                sparsity = number(kwargs.get("sparsity", 1.0), "sparsity")
                return self._builder.load(fresh, (rows, cols), sparsity=sparsity)
            if name == "random":
                seed = int(number(kwargs.get("seed", 0.0), "seed"))
                return self._builder.random(fresh, (rows, cols), seed=seed)
            fill = number(args[2] if len(args) > 2 else kwargs.get("value", 0.0), "value")
            return self._builder.full(fresh, (rows, cols), fill)
        raise ProgramError(f"line {line}: unknown function {name!r}")

    # -- mixed-type arithmetic ----------------------------------------------------

    @staticmethod
    def _combine(left, right, op: str):
        """Dispatch +,-,*,/ over the (matrix|scalar|float) x (same) grid by
        delegating to the expression classes' overloads."""
        symbol = {"add": "+", "subtract": "-", "multiply": "*", "divide": "/"}[op]
        if isinstance(left, float) and isinstance(right, float):
            if op == "add":
                return left + right
            if op == "subtract":
                return left - right
            if op == "multiply":
                return left * right
            if right == 0:
                raise ProgramError("division by zero constant")
            return left / right
        try:
            if op == "add":
                return left + right
            if op == "subtract":
                return left - right
            if op == "multiply":
                return left * right
            return left / right
        except TypeError as error:
            raise ProgramError(
                f"cannot apply {symbol!r} to {type(left).__name__} and "
                f"{type(right).__name__}"
            ) from error


def parse_program(source: str) -> MatrixProgram:
    """Compile a DML-style script into a :class:`MatrixProgram`.

    Load order defines the binding order of ``load()`` inputs: their
    generated names appear in ``program.input_sparsity``; use
    :func:`load_names` to map them back to script variables.
    """
    return _Parser(source).parse()


def load_names(program: MatrixProgram) -> dict[str, str]:
    """Map script variable names to the internal names of their loads.

    A script line ``V = load(...)`` aliases the script variable to the
    generated load; this inverts `program.bindings` for exactly those.
    """
    internal_loads = set(program.input_sparsity)
    return {
        user: version
        for user, version in program.bindings.items()
        if version in internal_loads and not user.startswith("_")
    }

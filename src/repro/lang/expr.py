"""R-like matrix expression AST (paper Section 5.4, Appendix A).

DMac exposes matrix programs through operator overloading, mirroring the
paper's Scala DSL:

===============================  =====================================
paper (Scala)                    this library (Python)
===============================  =====================================
``W.t %*% V``                    ``W.T @ V``
``H * (...)`` (cell-wise)        ``H * (...)``
``X / Y`` (cell-wise)            ``X / Y``
``rank * 0.85 + D * 0.15``       ``rank * 0.85 + D * 0.15``
``(r * r).sum``                  ``(r * r).sum()``
``(p.t %*% q).value``            ``(p.T @ q).value()``
``v.norm(2)``                    ``v.norm2()``
===============================  =====================================

Expressions are lazy ASTs; :class:`~repro.lang.program.ProgramBuilder`
flattens them into the operator sequence the planner consumes.  Transposes
never become operators of their own -- they mark the *operand reference*,
which is exactly how the paper's matrix dependencies capture ``B = A^T``.

Scalar values (aggregates, driver arithmetic) form a parallel little AST
evaluated on the driver at run time; plans do not depend on their values.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.errors import ProgramError

Number = Union[int, float]

#: Aggregation kinds producing driver scalars.
AGG_KINDS = ("sum", "sqsum", "value")

#: Driver-side scalar arithmetic.
SCALAR_BINARY_OPS = ("add", "subtract", "multiply", "divide")
SCALAR_UNARY_OPS = ("sqrt", "negate")


# ---------------------------------------------------------------------------
# Scalar expressions (driver side)
# ---------------------------------------------------------------------------


class ScalarExpr:
    """A lazy driver-side scalar value."""

    def _binary(self, op: str, other: object, reflected: bool = False) -> "ScalarExpr":
        other_expr = as_scalar_expr(other)
        if other_expr is None:
            return NotImplemented  # type: ignore[return-value]
        left, right = (other_expr, self) if reflected else (self, other_expr)
        return ScalarBinaryExpr(op, left, right)

    def __add__(self, other: object) -> "ScalarExpr":
        return self._binary("add", other)

    def __radd__(self, other: object) -> "ScalarExpr":
        return self._binary("add", other, reflected=True)

    def __sub__(self, other: object) -> "ScalarExpr":
        return self._binary("subtract", other)

    def __rsub__(self, other: object) -> "ScalarExpr":
        return self._binary("subtract", other, reflected=True)

    def __mul__(self, other: object):
        if isinstance(other, MatrixExpr):
            return ScalarMatrixExpr("multiply", other, self)
        return self._binary("multiply", other)

    def __rmul__(self, other: object) -> "ScalarExpr":
        return self._binary("multiply", other, reflected=True)

    def __truediv__(self, other: object) -> "ScalarExpr":
        return self._binary("divide", other)

    def __rtruediv__(self, other: object) -> "ScalarExpr":
        return self._binary("divide", other, reflected=True)

    def __neg__(self) -> "ScalarExpr":
        return ScalarUnaryExpr("negate", self)

    def sqrt(self) -> "ScalarExpr":
        return ScalarUnaryExpr("sqrt", self)


@dataclasses.dataclass(frozen=True)
class ScalarConst(ScalarExpr):
    """A literal number."""

    value: float


@dataclasses.dataclass(frozen=True)
class ScalarRefExpr(ScalarExpr):
    """Reference to a named driver scalar produced earlier in the program."""

    name: str


@dataclasses.dataclass(frozen=True)
class ScalarBinaryExpr(ScalarExpr):
    op: str
    left: ScalarExpr
    right: ScalarExpr

    def __post_init__(self) -> None:
        if self.op not in SCALAR_BINARY_OPS:
            raise ProgramError(f"unknown scalar operator {self.op!r}")


@dataclasses.dataclass(frozen=True)
class ScalarUnaryExpr(ScalarExpr):
    op: str
    child: ScalarExpr

    def __post_init__(self) -> None:
        if self.op not in SCALAR_UNARY_OPS:
            raise ProgramError(f"unknown scalar function {self.op!r}")


@dataclasses.dataclass(frozen=True)
class AggExpr(ScalarExpr):
    """An aggregate of a matrix expression: ``sum``, ``sqsum`` or ``value``
    (the single entry of a 1x1 result)."""

    kind: str
    child: "MatrixExpr"

    def __post_init__(self) -> None:
        if self.kind not in AGG_KINDS:
            raise ProgramError(f"unknown aggregation {self.kind!r}")


def as_scalar_expr(value: object) -> ScalarExpr | None:
    """Coerce numbers (and pass scalar expressions through); ``None`` if
    the value is not scalar-like."""
    if isinstance(value, ScalarExpr):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return ScalarConst(float(value))
    return None


# ---------------------------------------------------------------------------
# Matrix expressions
# ---------------------------------------------------------------------------


class MatrixExpr:
    """A lazy matrix-valued expression."""

    # matrix multiplication: the paper's %*%
    def __matmul__(self, other: "MatrixExpr") -> "MatrixExpr":
        if not isinstance(other, MatrixExpr):
            raise ProgramError(f"@ requires a matrix operand, got {type(other).__name__}")
        return MatMulExpr(self, other)

    def _cellwise_or_scalar(self, op: str, other: object, reflected: bool = False):
        if isinstance(other, MatrixExpr):
            left, right = (other, self) if reflected else (self, other)
            return CellwiseExpr(op, left, right)
        scalar = as_scalar_expr(other)
        if scalar is None:
            return NotImplemented
        if reflected and op in ("subtract", "divide"):
            raise ProgramError(
                f"scalar {op} with the matrix on the right is not supported; "
                "rewrite e.g. `s - M` as `M * -1 + s`"
            )
        return ScalarMatrixExpr(op, self, scalar)

    def __mul__(self, other: object):
        return self._cellwise_or_scalar("multiply", other)

    def __rmul__(self, other: object):
        return self._cellwise_or_scalar("multiply", other, reflected=True)

    def __truediv__(self, other: object):
        return self._cellwise_or_scalar("divide", other)

    def __rtruediv__(self, other: object):
        return self._cellwise_or_scalar("divide", other, reflected=True)

    def __add__(self, other: object):
        return self._cellwise_or_scalar("add", other)

    def __radd__(self, other: object):
        return self._cellwise_or_scalar("add", other, reflected=True)

    def __sub__(self, other: object):
        return self._cellwise_or_scalar("subtract", other)

    def __rsub__(self, other: object):
        return self._cellwise_or_scalar("subtract", other, reflected=True)

    def __neg__(self) -> "MatrixExpr":
        return ScalarMatrixExpr("multiply", self, ScalarConst(-1.0))

    @property
    def T(self) -> "MatrixExpr":
        """Transpose (the paper's ``.t``).  Double transposes cancel."""
        if isinstance(self, TransposeExpr):
            return self.child
        return TransposeExpr(self)

    def sum(self) -> ScalarExpr:
        """Sum of all entries (driver scalar)."""
        return AggExpr("sum", self)

    def sq_sum(self) -> ScalarExpr:
        """Sum of squared entries (driver scalar)."""
        return AggExpr("sqsum", self)

    def norm2(self) -> ScalarExpr:
        """Frobenius norm -- the paper's ``v.norm(2)``."""
        return AggExpr("sqsum", self).sqrt()

    def value(self) -> ScalarExpr:
        """The single entry of a 1x1 result (the paper's ``.value``)."""
        return AggExpr("value", self)

    def row_sums(self) -> "MatrixExpr":
        """Per-row sums as an ``M x 1`` matrix (distributed, not a scalar)."""
        return RowAggExpr("rowsum", self)

    # element-wise unary functions
    def exp(self) -> "MatrixExpr":
        """Element-wise ``e**x`` (densifies sparse inputs)."""
        return UnaryExpr("exp", self)

    def log(self) -> "MatrixExpr":
        """Element-wise natural logarithm."""
        return UnaryExpr("log", self)

    def sqrt(self) -> "MatrixExpr":
        """Element-wise square root (sparsity preserved)."""
        return UnaryExpr("sqrt", self)

    def abs(self) -> "MatrixExpr":
        """Element-wise absolute value (sparsity preserved)."""
        return UnaryExpr("abs", self)

    def sign(self) -> "MatrixExpr":
        """Element-wise sign (sparsity preserved)."""
        return UnaryExpr("sign", self)

    def sigmoid(self) -> "MatrixExpr":
        """Element-wise logistic function ``1 / (1 + e**-x)``."""
        return UnaryExpr("sigmoid", self)

    def reciprocal(self) -> "MatrixExpr":
        """Element-wise ``1 / x``."""
        return UnaryExpr("reciprocal", self)

    def col_sums(self) -> "MatrixExpr":
        """Per-column sums as a ``1 x N`` matrix."""
        return RowAggExpr("colsum", self)


@dataclasses.dataclass(frozen=True)
class MatrixRefExpr(MatrixExpr):
    """Reference to a named matrix version in the program."""

    name: str


@dataclasses.dataclass(frozen=True)
class TransposeExpr(MatrixExpr):
    child: MatrixExpr


@dataclasses.dataclass(frozen=True)
class MatMulExpr(MatrixExpr):
    left: MatrixExpr
    right: MatrixExpr


@dataclasses.dataclass(frozen=True)
class CellwiseExpr(MatrixExpr):
    op: str
    left: MatrixExpr
    right: MatrixExpr

    def __post_init__(self) -> None:
        if self.op not in SCALAR_BINARY_OPS:
            raise ProgramError(f"unknown cell-wise operator {self.op!r}")


@dataclasses.dataclass(frozen=True)
class UnaryExpr(MatrixExpr):
    """Element-wise unary function of a matrix expression."""

    func: str
    child: MatrixExpr

    def __post_init__(self) -> None:
        from repro.blocks.ops import UNARY_FUNCS

        if self.func not in UNARY_FUNCS:
            raise ProgramError(f"unknown unary function {self.func!r}")


@dataclasses.dataclass(frozen=True)
class RowAggExpr(MatrixExpr):
    """Row or column sums of a matrix expression (matrix-valued)."""

    kind: str  # "rowsum" | "colsum"
    child: MatrixExpr

    def __post_init__(self) -> None:
        if self.kind not in ("rowsum", "colsum"):
            raise ProgramError(f"unknown axis aggregation {self.kind!r}")


@dataclasses.dataclass(frozen=True)
class ScalarMatrixExpr(MatrixExpr):
    """``matrix <op> scalar`` element-wise (the paper's unary operator
    between a constant and a matrix)."""

    op: str
    child: MatrixExpr
    scalar: ScalarExpr

    def __post_init__(self) -> None:
        if self.op not in SCALAR_BINARY_OPS:
            raise ProgramError(f"unknown scalar-matrix operator {self.op!r}")

"""Matrix programs: the operator sequence the planner consumes.

A :class:`ProgramBuilder` turns lazy expressions into a flat, SSA-like
sequence of operators (paper Section 4: "DMac decomposes the matrix program
into a sequence of matrix operators").  Three decomposition rules from the
paper are implemented here:

* **Transposes are not operators.**  ``W.T`` marks the *operand reference*
  (``Operand.transposed``), so the planner can satisfy it through Transpose
  / Transpose-Partition / Extract-Transpose dependencies.
* **Binary decomposition.**  Every compound expression becomes a chain of
  binary operators over fresh temporaries.
* **Multiplications first.**  When several operators of one statement are
  ready simultaneously, multiplications are emitted ahead of the others
  (Section 4.2.3) so Pull-Up Broadcast gets the chance to fire.

Loops are unrolled by construction: re-assigning a name creates a new
version (``W``, ``W@2``, ...), which is precisely what lets the planner see
cross-iteration dependencies -- the heart of the paper's optimisation.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.errors import ProgramError
from repro.lang.expr import (
    AggExpr,
    CellwiseExpr,
    MatMulExpr,
    MatrixExpr,
    MatrixRefExpr,
    RowAggExpr,
    ScalarBinaryExpr,
    ScalarConst,
    ScalarExpr,
    ScalarMatrixExpr,
    ScalarRefExpr,
    ScalarUnaryExpr,
    TransposeExpr,
    UnaryExpr,
)

#: A scalar slot in an operator: either a literal or a driver-scalar name.
ScalarTerm = Union[float, str]


@dataclasses.dataclass(frozen=True)
class Operand:
    """A reference to a matrix version, possibly transposed on access."""

    name: str
    transposed: bool = False

    def __str__(self) -> str:
        return f"{self.name}^T" if self.transposed else self.name


# ---------------------------------------------------------------------------
# Operator nodes
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class OpNode:
    """Base operator: produces the matrix (or scalar) named ``output``."""

    output: str

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return ()

    def scalar_inputs(self) -> tuple[str, ...]:
        return ()


@dataclasses.dataclass(frozen=True)
class LoadOp(OpNode):
    """Bind an external input matrix (data supplied at execution time)."""

    rows: int = 0
    cols: int = 0
    sparsity: float = 1.0


@dataclasses.dataclass(frozen=True)
class RandomOp(OpNode):
    """Generate a dense uniform(0,1) matrix (the paper's RandomMatrix)."""

    rows: int = 0
    cols: int = 0
    seed: int = 0


@dataclasses.dataclass(frozen=True)
class FullOp(OpNode):
    """Generate a constant-filled matrix."""

    rows: int = 0
    cols: int = 0
    value: float = 0.0


@dataclasses.dataclass(frozen=True)
class MatMulOp(OpNode):
    """Matrix multiplication ``output = left @ right``."""

    left: Operand = Operand("?")
    right: Operand = Operand("?")

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return (self.left, self.right)


@dataclasses.dataclass(frozen=True)
class CellwiseOp(OpNode):
    """Cell-wise binary operator over equally-shaped matrices."""

    op: str = "add"
    left: Operand = Operand("?")
    right: Operand = Operand("?")

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return (self.left, self.right)


@dataclasses.dataclass(frozen=True)
class ScalarMatrixOp(OpNode):
    """Element-wise ``output = operand <op> scalar``."""

    op: str = "multiply"
    operand: Operand = Operand("?")
    scalar: ScalarTerm = 1.0

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return (self.operand,)

    def scalar_inputs(self) -> tuple[str, ...]:
        return (self.scalar,) if isinstance(self.scalar, str) else ()


@dataclasses.dataclass(frozen=True)
class UnaryMatrixOp(OpNode):
    """Element-wise unary function: ``output = func(operand)``."""

    func: str = "abs"
    operand: Operand = Operand("?")

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return (self.operand,)


@dataclasses.dataclass(frozen=True)
class RowAggOp(OpNode):
    """Row or column sums: ``output = rowsum(operand)`` (matrix-valued)."""

    kind: str = "rowsum"  # "rowsum" -> M x 1, "colsum" -> 1 x N
    operand: Operand = Operand("?")

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return (self.operand,)


@dataclasses.dataclass(frozen=True)
class AggregateOp(OpNode):
    """Aggregate a matrix into the driver scalar named ``output``."""

    kind: str = "sum"
    operand: Operand = Operand("?")

    def matrix_inputs(self) -> tuple[Operand, ...]:
        return (self.operand,)


@dataclasses.dataclass(frozen=True)
class ScalarComputeOp(OpNode):
    """Driver-side scalar arithmetic over earlier scalars and constants."""

    expr: ScalarExpr = ScalarConst(0.0)

    def scalar_inputs(self) -> tuple[str, ...]:
        return tuple(_scalar_refs(self.expr))


def _scalar_refs(expr: ScalarExpr) -> list[str]:
    if isinstance(expr, ScalarRefExpr):
        return [expr.name]
    if isinstance(expr, ScalarBinaryExpr):
        return _scalar_refs(expr.left) + _scalar_refs(expr.right)
    if isinstance(expr, ScalarUnaryExpr):
        return _scalar_refs(expr.child)
    return []


def op_input_names(op: OpNode) -> list[str]:
    """All matrix and scalar names an operator reads."""
    return [operand.name for operand in op.matrix_inputs()] + list(op.scalar_inputs())


# ---------------------------------------------------------------------------
# The program container
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MatrixProgram:
    """A decomposed matrix program, ready for planning."""

    ops: tuple[OpNode, ...]
    dims: dict[str, tuple[int, int]]  # every matrix version -> (rows, cols)
    input_sparsity: dict[str, float]  # LoadOp outputs -> declared sparsity
    outputs: tuple[str, ...]  # matrix versions to materialise
    scalar_outputs: tuple[str, ...]  # driver scalars to report
    bindings: dict[str, str]  # user variable -> final version name

    def dims_of(self, operand: Operand) -> tuple[int, int]:
        rows, cols = self.dims[operand.name]
        return (cols, rows) if operand.transposed else (rows, cols)

    def describe(self) -> str:
        """A human-readable operator listing (for plan inspection tools)."""
        lines = []
        for op in self.ops:
            if isinstance(op, MatMulOp):
                lines.append(f"{op.output} = {op.left} @ {op.right}")
            elif isinstance(op, CellwiseOp):
                symbol = {"add": "+", "subtract": "-", "multiply": "*", "divide": "/"}[op.op]
                lines.append(f"{op.output} = {op.left} {symbol} {op.right}")
            elif isinstance(op, ScalarMatrixOp):
                symbol = {"add": "+", "subtract": "-", "multiply": "*", "divide": "/"}[op.op]
                lines.append(f"{op.output} = {op.operand} {symbol} {op.scalar}")
            elif isinstance(op, UnaryMatrixOp):
                lines.append(f"{op.output} = {op.func}({op.operand})")
            elif isinstance(op, RowAggOp):
                lines.append(f"{op.output} = {op.kind}({op.operand})")
            elif isinstance(op, AggregateOp):
                lines.append(f"{op.output} = {op.kind}({op.operand})")
            elif isinstance(op, LoadOp):
                lines.append(f"{op.output} = load({op.rows}x{op.cols}, s={op.sparsity})")
            elif isinstance(op, RandomOp):
                lines.append(f"{op.output} = random({op.rows}x{op.cols})")
            elif isinstance(op, FullOp):
                lines.append(f"{op.output} = full({op.rows}x{op.cols}, {op.value})")
            elif isinstance(op, ScalarComputeOp):
                lines.append(f"{op.output} = scalar(...)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------


class ProgramBuilder:
    """Incrementally builds a :class:`MatrixProgram` from expressions."""

    def __init__(self) -> None:
        self._ops: list[OpNode] = []
        self._dims: dict[str, tuple[int, int]] = {}
        self._input_sparsity: dict[str, float] = {}
        self._version_count: dict[str, int] = {}
        self._current: dict[str, str] = {}
        self._scalar_names: set[str] = set()
        self._temp_count = 0
        self._outputs: list[str] = []
        self._scalar_outputs: list[str] = []

    # -- sources -----------------------------------------------------------

    def load(self, name: str, shape: tuple[int, int], sparsity: float = 1.0) -> MatrixRefExpr:
        """Declare an input matrix; the data is bound at execution time.

        ``sparsity`` is the user/pre-computed non-zero fraction the paper's
        worst-case estimator starts from (Section 5.1).
        """
        if not 0.0 <= sparsity <= 1.0:
            raise ProgramError(f"sparsity must lie in [0, 1], got {sparsity}")
        version = self._new_version(name)
        self._set_dims(version, shape)
        self._input_sparsity[version] = sparsity
        self._ops.append(LoadOp(version, shape[0], shape[1], sparsity))
        return MatrixRefExpr(version)

    def random(self, name: str, shape: tuple[int, int], seed: int = 0) -> MatrixRefExpr:
        """Declare a dense random matrix (the paper's ``RandomMatrix``)."""
        version = self._new_version(name)
        self._set_dims(version, shape)
        self._ops.append(RandomOp(version, shape[0], shape[1], seed))
        return MatrixRefExpr(version)

    def full(self, name: str, shape: tuple[int, int], value: float) -> MatrixRefExpr:
        """Declare a constant-filled matrix."""
        version = self._new_version(name)
        self._set_dims(version, shape)
        self._ops.append(FullOp(version, shape[0], shape[1], value))
        return MatrixRefExpr(version)

    # -- statements ----------------------------------------------------------

    def assign(self, name: str, expr: MatrixExpr) -> MatrixRefExpr:
        """``name = expr``: flatten, reorder multiplications first, append."""
        statement_ops: list[OpNode] = []
        operand = self._flatten(expr, statement_ops)
        version = self._bind(name, operand, statement_ops)
        self._ops.extend(_multiplications_first(statement_ops))
        return MatrixRefExpr(version)

    def scalar(self, name: str, expr: ScalarExpr | float) -> ScalarRefExpr:
        """``name = scalar expr``: aggregates become AggregateOps, the rest a
        driver ScalarComputeOp."""
        statement_ops: list[OpNode] = []
        scalar_expr = expr if isinstance(expr, ScalarExpr) else ScalarConst(float(expr))
        normalized = self._normalize_scalar(scalar_expr, statement_ops)
        version = self._new_version(name)
        self._scalar_names.add(version)
        if isinstance(normalized, ScalarRefExpr) and statement_ops:
            last = statement_ops[-1]
            if last.output == normalized.name and isinstance(last, AggregateOp):
                statement_ops[-1] = dataclasses.replace(last, output=version)
                self._scalar_names.discard(normalized.name)
                self._ops.extend(_multiplications_first(statement_ops))
                return ScalarRefExpr(version)
        statement_ops.append(ScalarComputeOp(version, normalized))
        self._ops.extend(_multiplications_first(statement_ops))
        return ScalarRefExpr(version)

    def output(self, ref: MatrixRefExpr | str) -> None:
        """Mark a matrix version for materialisation at the end of the run."""
        name = ref.name if isinstance(ref, MatrixRefExpr) else self._current.get(ref, ref)
        if name not in self._dims:
            raise ProgramError(f"unknown matrix {name!r}")
        if name not in self._outputs:
            self._outputs.append(name)

    def scalar_output(self, ref: ScalarRefExpr | str) -> None:
        """Mark a driver scalar for reporting at the end of the run."""
        name = ref.name if isinstance(ref, ScalarRefExpr) else self._current.get(ref, ref)
        if name not in self._scalar_names:
            raise ProgramError(f"unknown scalar {name!r}")
        if name not in self._scalar_outputs:
            self._scalar_outputs.append(name)

    def build(self) -> MatrixProgram:
        """Freeze the program."""
        return MatrixProgram(
            ops=tuple(self._ops),
            dims=dict(self._dims),
            input_sparsity=dict(self._input_sparsity),
            outputs=tuple(self._outputs),
            scalar_outputs=tuple(self._scalar_outputs),
            bindings=dict(self._current),
        )

    # -- compile-time queries (used by the ast frontend) ----------------------

    def current_version(self, user_name: str) -> str | None:
        """The live version bound to a user-level matrix name, if any."""
        return self._current.get(user_name)

    def shape_of(self, name: str) -> tuple[int, int]:
        """Compile-time shape of a user name or version."""
        version = self._current.get(name, name)
        if version not in self._dims:
            raise ProgramError(f"unknown matrix {name!r}")
        return self._dims[version]

    def is_input(self, version: str) -> bool:
        """Whether a version is a runtime-bound input (a LoadOp)."""
        return version in self._input_sparsity

    def declared_sparsity(self, version: str) -> float:
        """The declared input sparsity of a version (1.0 for non-inputs)."""
        return self._input_sparsity.get(version, 1.0)

    def current_scalar_version(self, user_name: str) -> str | None:
        """The live version bound to a user-level scalar name, if any."""
        version = self._current.get(user_name)
        if version is None or version not in self._scalar_names:
            return None
        return version

    # -- internal: naming -----------------------------------------------------

    def _new_version(self, user_name: str) -> str:
        if "@" in user_name:
            raise ProgramError(f"'@' is reserved for version suffixes: {user_name!r}")
        count = self._version_count.get(user_name, 0) + 1
        self._version_count[user_name] = count
        version = user_name if count == 1 else f"{user_name}@{count}"
        self._current[user_name] = version
        return version

    def _new_temp(self) -> str:
        self._temp_count += 1
        return f"_t{self._temp_count}"

    def _set_dims(self, name: str, shape: tuple[int, int]) -> None:
        rows, cols = shape
        if rows < 1 or cols < 1:
            raise ProgramError(f"matrix dimensions must be >= 1, got {shape}")
        self._dims[name] = (int(rows), int(cols))

    def _operand_dims(self, operand: Operand) -> tuple[int, int]:
        rows, cols = self._dims[operand.name]
        return (cols, rows) if operand.transposed else (rows, cols)

    def _bind(self, name: str, operand: Operand, statement_ops: list[OpNode]) -> str:
        """Attach the statement's result to a fresh version of ``name``."""
        produced_here = {op.output for op in statement_ops}
        if operand.name in produced_here and not operand.transposed:
            # Rename the producing temp to the user-visible version.
            version = self._new_version(name)
            self._dims[version] = self._dims.pop(operand.name)
            for index, op in enumerate(statement_ops):
                if op.output == operand.name:
                    statement_ops[index] = dataclasses.replace(op, output=version)
            return version
        if operand.transposed:
            # `X = Y.T` as a statement: realise via an identity scalar op so
            # the planner sees a Transpose dependency on the operand.
            version = self._new_version(name)
            self._set_dims(version, self._operand_dims(operand))
            statement_ops.append(ScalarMatrixOp(version, "multiply", operand, 1.0))
            return version
        # Plain alias: `X = Y`.
        self._current[name] = operand.name
        return operand.name

    # -- internal: flattening ----------------------------------------------------

    def _flatten(self, expr: MatrixExpr, out: list[OpNode]) -> Operand:
        if isinstance(expr, MatrixRefExpr):
            if expr.name not in self._dims:
                raise ProgramError(f"unknown matrix {expr.name!r}")
            return Operand(expr.name)
        if isinstance(expr, TransposeExpr):
            child = self._flatten(expr.child, out)
            return Operand(child.name, not child.transposed)
        if isinstance(expr, MatMulExpr):
            left = self._flatten(expr.left, out)
            right = self._flatten(expr.right, out)
            (lr, lc), (rr, rc) = self._operand_dims(left), self._operand_dims(right)
            if lc != rr:
                raise ProgramError(
                    f"matmul inner dimensions differ: {lr}x{lc} @ {rr}x{rc}"
                )
            temp = self._new_temp()
            self._set_dims(temp, (lr, rc))
            out.append(MatMulOp(temp, left, right))
            return Operand(temp)
        if isinstance(expr, CellwiseExpr):
            left = self._flatten(expr.left, out)
            right = self._flatten(expr.right, out)
            ldims, rdims = self._operand_dims(left), self._operand_dims(right)
            if ldims != rdims:
                raise ProgramError(
                    f"cell-wise {expr.op} requires equal shapes, got {ldims} and {rdims}"
                )
            temp = self._new_temp()
            self._set_dims(temp, ldims)
            out.append(CellwiseOp(temp, expr.op, left, right))
            return Operand(temp)
        if isinstance(expr, UnaryExpr):
            child = self._flatten(expr.child, out)
            temp = self._new_temp()
            self._set_dims(temp, self._operand_dims(child))
            out.append(UnaryMatrixOp(temp, expr.func, child))
            return Operand(temp)
        if isinstance(expr, RowAggExpr):
            child = self._flatten(expr.child, out)
            rows, cols = self._operand_dims(child)
            temp = self._new_temp()
            shape = (rows, 1) if expr.kind == "rowsum" else (1, cols)
            self._set_dims(temp, shape)
            out.append(RowAggOp(temp, expr.kind, child))
            return Operand(temp)
        if isinstance(expr, ScalarMatrixExpr):
            scalar = self._flatten_scalar(expr.scalar, out)
            child = self._flatten(expr.child, out)
            temp = self._new_temp()
            self._set_dims(temp, self._operand_dims(child))
            out.append(ScalarMatrixOp(temp, expr.op, child, scalar))
            return Operand(temp)
        raise ProgramError(f"cannot flatten expression of type {type(expr).__name__}")

    def _flatten_scalar(self, expr: ScalarExpr, out: list[OpNode]) -> ScalarTerm:
        normalized = self._normalize_scalar(expr, out)
        if isinstance(normalized, ScalarConst):
            return normalized.value
        if isinstance(normalized, ScalarRefExpr):
            return normalized.name
        temp = self._new_temp()
        self._scalar_names.add(temp)
        out.append(ScalarComputeOp(temp, normalized))
        return temp

    def _normalize_scalar(self, expr: ScalarExpr, out: list[OpNode]) -> ScalarExpr:
        """Replace aggregates with references to emitted AggregateOps and
        constant-fold pure-literal subtrees."""
        if isinstance(expr, (ScalarConst, ScalarRefExpr)):
            if isinstance(expr, ScalarRefExpr) and expr.name not in self._scalar_names:
                raise ProgramError(f"unknown scalar {expr.name!r}")
            return expr
        if isinstance(expr, AggExpr):
            operand = self._flatten(expr.child, out)
            if expr.kind == "value" and self._operand_dims(operand) != (1, 1):
                raise ProgramError(
                    f".value requires a 1x1 matrix, got {self._operand_dims(operand)}"
                )
            name = self._new_temp()
            self._scalar_names.add(name)
            out.append(AggregateOp(name, expr.kind, operand))
            return ScalarRefExpr(name)
        if isinstance(expr, ScalarBinaryExpr):
            left = self._normalize_scalar(expr.left, out)
            right = self._normalize_scalar(expr.right, out)
            if isinstance(left, ScalarConst) and isinstance(right, ScalarConst):
                return ScalarConst(_fold_binary(expr.op, left.value, right.value))
            return ScalarBinaryExpr(expr.op, left, right)
        if isinstance(expr, ScalarUnaryExpr):
            child = self._normalize_scalar(expr.child, out)
            if isinstance(child, ScalarConst):
                return ScalarConst(_fold_unary(expr.op, child.value))
            return ScalarUnaryExpr(expr.op, child)
        raise ProgramError(f"cannot flatten scalar expression {type(expr).__name__}")


def _fold_binary(op: str, left: float, right: float) -> float:
    if op == "add":
        return left + right
    if op == "subtract":
        return left - right
    if op == "multiply":
        return left * right
    if right == 0:
        raise ProgramError("scalar division by zero")
    return left / right


def _fold_unary(op: str, value: float) -> float:
    if op == "negate":
        return -value
    if value < 0:
        raise ProgramError(f"sqrt of negative constant {value}")
    return value**0.5


def _multiplications_first(statement_ops: list[OpNode]) -> list[OpNode]:
    """Stable topological reorder of one statement's operators that emits
    ready multiplications before other ready operators (Section 4.2.3)."""
    produced = {op.output: index for index, op in enumerate(statement_ops)}
    dependencies = [
        {produced[name] for name in op_input_names(op) if name in produced}
        for op in statement_ops
    ]
    emitted: list[OpNode] = []
    done: set[int] = set()
    remaining = set(range(len(statement_ops)))
    while remaining:
        ready = [index for index in remaining if dependencies[index] <= done]
        if not ready:  # pragma: no cover - flattening emits in dependency order
            raise ProgramError("cycle in statement operators")
        ready.sort(
            key=lambda index: (
                0 if isinstance(statement_ops[index], MatMulOp) else 1,
                index,
            )
        )
        chosen = ready[0]
        emitted.append(statement_ops[chosen])
        done.add(chosen)
        remaining.discard(chosen)
    return emitted

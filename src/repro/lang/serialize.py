"""Program serialisation: MatrixProgram <-> JSON.

Lets a planned-for program be stored next to its data, shipped to another
process, or diffed in version control.  Plans are not serialised -- they
are cheap to regenerate and depend on the cluster size; the program is the
durable artefact (mirroring how Spark persists logical plans, not physical
ones).

The format is a plain JSON object with a version tag; every operator kind
and scalar-expression node round-trips exactly.
"""

from __future__ import annotations

import json

from repro.errors import ProgramError
from repro.lang.expr import (
    ScalarBinaryExpr,
    ScalarConst,
    ScalarExpr,
    ScalarRefExpr,
    ScalarUnaryExpr,
)
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    MatrixProgram,
    OpNode,
    Operand,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def program_to_json(program: MatrixProgram, indent: int | None = None) -> str:
    """Serialise a program to a JSON string."""
    payload = {
        "format": "repro.matrix-program",
        "version": FORMAT_VERSION,
        "ops": [_encode_op(op) for op in program.ops],
        "dims": {name: list(shape) for name, shape in program.dims.items()},
        "input_sparsity": dict(program.input_sparsity),
        "outputs": list(program.outputs),
        "scalar_outputs": list(program.scalar_outputs),
        "bindings": dict(program.bindings),
    }
    return json.dumps(payload, indent=indent)


def _encode_operand(operand: Operand) -> dict:
    return {"name": operand.name, "transposed": operand.transposed}


def _encode_scalar(expr: ScalarExpr) -> dict:
    if isinstance(expr, ScalarConst):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, ScalarRefExpr):
        return {"kind": "ref", "name": expr.name}
    if isinstance(expr, ScalarBinaryExpr):
        return {
            "kind": "binary",
            "op": expr.op,
            "left": _encode_scalar(expr.left),
            "right": _encode_scalar(expr.right),
        }
    if isinstance(expr, ScalarUnaryExpr):
        return {"kind": "unary", "op": expr.op, "child": _encode_scalar(expr.child)}
    raise ProgramError(f"cannot serialise scalar expression {type(expr).__name__}")


def _encode_op(op: OpNode) -> dict:
    if isinstance(op, LoadOp):
        return {"op": "load", "output": op.output, "rows": op.rows, "cols": op.cols,
                "sparsity": op.sparsity}
    if isinstance(op, RandomOp):
        return {"op": "random", "output": op.output, "rows": op.rows, "cols": op.cols,
                "seed": op.seed}
    if isinstance(op, FullOp):
        return {"op": "full", "output": op.output, "rows": op.rows, "cols": op.cols,
                "value": op.value}
    if isinstance(op, MatMulOp):
        return {"op": "matmul", "output": op.output,
                "left": _encode_operand(op.left), "right": _encode_operand(op.right)}
    if isinstance(op, CellwiseOp):
        return {"op": "cellwise", "output": op.output, "cellwise_op": op.op,
                "left": _encode_operand(op.left), "right": _encode_operand(op.right)}
    if isinstance(op, ScalarMatrixOp):
        scalar = ({"kind": "ref-name", "name": op.scalar}
                  if isinstance(op.scalar, str) else {"kind": "literal", "value": op.scalar})
        return {"op": "scalar-matrix", "output": op.output, "scalar_op": op.op,
                "operand": _encode_operand(op.operand), "scalar": scalar}
    if isinstance(op, UnaryMatrixOp):
        return {"op": "unary", "output": op.output, "func": op.func,
                "operand": _encode_operand(op.operand)}
    if isinstance(op, RowAggOp):
        return {"op": "row-agg", "output": op.output, "kind": op.kind,
                "operand": _encode_operand(op.operand)}
    if isinstance(op, AggregateOp):
        return {"op": "aggregate", "output": op.output, "kind": op.kind,
                "operand": _encode_operand(op.operand)}
    if isinstance(op, ScalarComputeOp):
        return {"op": "scalar-compute", "output": op.output,
                "expr": _encode_scalar(op.expr)}
    raise ProgramError(f"cannot serialise operator {type(op).__name__}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def program_from_json(text: str) -> MatrixProgram:
    """Deserialise a program previously produced by :func:`program_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProgramError(f"malformed program JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != "repro.matrix-program":
        raise ProgramError("not a repro matrix-program document")
    if payload.get("version") != FORMAT_VERSION:
        raise ProgramError(
            f"unsupported program format version {payload.get('version')!r}"
        )
    try:
        return MatrixProgram(
            ops=tuple(_decode_op(entry) for entry in payload["ops"]),
            dims={name: tuple(shape) for name, shape in payload["dims"].items()},
            input_sparsity=dict(payload["input_sparsity"]),
            outputs=tuple(payload["outputs"]),
            scalar_outputs=tuple(payload["scalar_outputs"]),
            bindings=dict(payload["bindings"]),
        )
    except (KeyError, TypeError) as error:
        raise ProgramError(f"malformed program document: {error}") from error


def _decode_operand(entry: dict) -> Operand:
    return Operand(entry["name"], bool(entry["transposed"]))


def _decode_scalar(entry: dict) -> ScalarExpr:
    kind = entry["kind"]
    if kind == "const":
        return ScalarConst(float(entry["value"]))
    if kind == "ref":
        return ScalarRefExpr(entry["name"])
    if kind == "binary":
        return ScalarBinaryExpr(
            entry["op"], _decode_scalar(entry["left"]), _decode_scalar(entry["right"])
        )
    if kind == "unary":
        return ScalarUnaryExpr(entry["op"], _decode_scalar(entry["child"]))
    raise ProgramError(f"unknown scalar node kind {kind!r}")


def _decode_op(entry: dict) -> OpNode:
    kind = entry["op"]
    if kind == "load":
        return LoadOp(entry["output"], entry["rows"], entry["cols"], entry["sparsity"])
    if kind == "random":
        return RandomOp(entry["output"], entry["rows"], entry["cols"], entry["seed"])
    if kind == "full":
        return FullOp(entry["output"], entry["rows"], entry["cols"], entry["value"])
    if kind == "matmul":
        return MatMulOp(
            entry["output"], _decode_operand(entry["left"]), _decode_operand(entry["right"])
        )
    if kind == "cellwise":
        return CellwiseOp(
            entry["output"],
            entry["cellwise_op"],
            _decode_operand(entry["left"]),
            _decode_operand(entry["right"]),
        )
    if kind == "scalar-matrix":
        scalar_entry = entry["scalar"]
        scalar = (
            scalar_entry["name"]
            if scalar_entry["kind"] == "ref-name"
            else float(scalar_entry["value"])
        )
        return ScalarMatrixOp(
            entry["output"], entry["scalar_op"], _decode_operand(entry["operand"]), scalar
        )
    if kind == "unary":
        return UnaryMatrixOp(entry["output"], entry["func"], _decode_operand(entry["operand"]))
    if kind == "row-agg":
        return RowAggOp(entry["output"], entry["kind"], _decode_operand(entry["operand"]))
    if kind == "aggregate":
        return AggregateOp(entry["output"], entry["kind"], _decode_operand(entry["operand"]))
    if kind == "scalar-compute":
        return ScalarComputeOp(entry["output"], _decode_scalar(entry["expr"]))
    raise ProgramError(f"unknown operator kind {kind!r}")

"""repro.lint -- static analysis of matrix programs and DMac plans.

The analyzer sits between the planner and the executor: it abstract-
interprets a plan DAG (shapes, worst-case sizes, partition schemes,
stages) and applies a registry of rules that either *prove an invariant
was violated* (DM1xx, error severity) or *prove bytes are being wasted*
(DM2xx, warning severity) -- all without executing anything.

Entry points::

    from repro.lint import lint_plan, lint_program, LintContext

    report = lint_plan(plan, LintContext.from_config(config))
    if report.has_errors:
        print(report.format_human())
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintContext,
    LintReport,
    Severity,
)
from repro.lint.facts import PlanFacts, build_facts
from repro.lint.rules import RULES, LintInput, Rule
from repro.lint.runner import (
    capture_plans,
    lint_dml_source,
    lint_path,
    lint_plan,
    lint_program,
    lint_python_file,
    plan_for,
)
from repro.lint.selftest import format_selftest, run_selftest

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintReport",
    "Severity",
    "PlanFacts",
    "build_facts",
    "RULES",
    "LintInput",
    "Rule",
    "capture_plans",
    "lint_dml_source",
    "lint_path",
    "lint_plan",
    "lint_program",
    "lint_python_file",
    "plan_for",
    "format_selftest",
    "run_selftest",
]

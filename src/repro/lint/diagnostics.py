"""Diagnostics: the structured findings the static analyzer emits.

A :class:`Diagnostic` pins one finding to a rule id (``DM101``), a severity,
and a location -- a plan step index and/or the subject matrix instance or
operator output -- plus a fix hint, so reports are actionable and machine
readable.  A :class:`LintReport` aggregates the findings of one analysis
run, supports per-rule suppression, and renders either a human-readable
listing or a JSON document (``--format json``).
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are invariant violations: executing the plan would
    compute the wrong answer, violate a paper guarantee, or exceed a
    declared resource bound.  ``WARNING`` findings are inefficiencies: the
    plan is correct but wasteful under the dependency-oriented cost model.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str  # rule id, e.g. "DM101"
    severity: Severity
    message: str  # what is wrong, with concrete values
    hint: str = ""  # how to fix it
    step: int | None = None  # plan step index the finding anchors to
    subject: str | None = None  # matrix instance / operator output involved

    def location(self) -> str:
        parts = []
        if self.step is not None:
            parts.append(f"step {self.step}")
        if self.subject is not None:
            parts.append(str(self.subject))
        return ", ".join(parts) if parts else "plan"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
            "step": self.step,
            "subject": self.subject,
        }


@dataclasses.dataclass(frozen=True)
class LintContext:
    """Cluster-level facts the plan rules check resource bounds against.

    ``num_workers`` and ``estimation_mode`` must match what the plan was
    generated with; the cost-model agreement rule (DM104) recomputes
    predicted bytes from them.  ``block_size``/``memory_limit_bytes`` are
    optional -- the Eq-3 and broadcast-budget rules only fire when the
    corresponding knob is set.
    """

    num_workers: int = 4
    threads_per_worker: int = 8
    block_size: int | None = None
    memory_limit_bytes: int | None = None
    estimation_mode: str = "worst"

    @classmethod
    def from_config(cls, config, estimation_mode: str = "worst") -> "LintContext":
        """Build a context from a :class:`repro.config.ClusterConfig`."""
        return cls(
            num_workers=config.num_workers,
            threads_per_worker=config.threads_per_worker,
            block_size=config.block_size,
            memory_limit_bytes=config.memory_limit_bytes,
            estimation_mode=estimation_mode,
        )


@dataclasses.dataclass
class LintReport:
    """The outcome of linting one program (and optionally its plan)."""

    diagnostics: list[Diagnostic] = dataclasses.field(default_factory=list)
    suppressed: tuple[str, ...] = ()  # rule ids removed from the findings

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def rule_ids(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def sorted(self) -> list[Diagnostic]:
        """Errors first, then by plan location, then by rule id."""
        order = {Severity.ERROR: 0, Severity.WARNING: 1}
        return sorted(
            self.diagnostics,
            key=lambda d: (
                order[d.severity],
                d.step if d.step is not None else -1,
                d.rule,
            ),
        )

    def to_json(self) -> dict:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": list(self.suppressed),
            "diagnostics": [d.to_json() for d in self.sorted()],
        }

    def to_json_string(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)

    def format_human(self) -> str:
        """Compiler-style listing, one line per finding plus a summary."""
        lines = []
        for diagnostic in self.sorted():
            lines.append(
                f"{diagnostic.severity}: {diagnostic.rule} [{diagnostic.location()}] "
                f"{diagnostic.message}"
            )
            if diagnostic.hint:
                lines.append(f"    hint: {diagnostic.hint}")
        summary = f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        if self.suppressed:
            summary += f" (suppressed: {', '.join(self.suppressed)})"
        lines.append(summary)
        return "\n".join(lines)

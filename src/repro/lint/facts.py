"""Abstract interpretation of a plan DAG: shapes, schemes, sizes, stages.

The rules in :mod:`repro.lint.rules` never execute a plan; everything they
check is derived here by one forward pass over the step list:

* **shapes** -- every matrix instance's (rows, cols), propagated through
  the extended operators (transpose swaps, the rest preserve) and the
  compute operators (matmul composes, cell-wise requires equality), and
  independently cross-checked against the program's declared dimensions;
  the transfer functions themselves live in the operator registry
  (:mod:`repro.runtime.registry`), shared with the executor and planner;
* **sizes** -- the worst-case byte estimate ``|A|`` of Section 5.1, via
  the planner's own :class:`~repro.core.estimator.SizeEstimator`, so the
  lint and the cost model can never disagree about what a matrix weighs;
* **dataflow** -- producer step and consumer steps per instance, plus
  scalar producers/consumers, for liveness (dead-operator) analysis;
* **stages** -- the stage each instance becomes *available* in, following
  the Section 5.2 convention that a communicating step publishes its
  output one stage after it runs.

Interpretation is total: a malformed plan (an instance consumed before any
step produced it, say) does not crash the pass -- the anomaly is recorded
in ``unproduced`` and the affected facts are simply absent, leaving the
rules to report precise diagnostics.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.core.estimator import SizeEstimator
from repro.core.plan import MatrixInstance, Plan, Step
from repro.errors import PlanError
from repro.runtime.registry import OPERATORS

Shape = tuple[int, int]


@dataclasses.dataclass
class PlanFacts:
    """Everything the static rules know about one plan."""

    plan: Plan
    estimator: SizeEstimator
    #: interpreted shape per instance (absent if inputs were unknown)
    shapes: dict[MatrixInstance, Shape]
    #: index of the step that produced each instance (first producer wins)
    producer: dict[MatrixInstance, int]
    #: indices of the steps that consume each instance
    consumers: dict[MatrixInstance, list[int]]
    #: stage in which each instance becomes available (Section 5.2)
    available_stage: dict[MatrixInstance, int]
    #: step index that produced each driver scalar
    scalar_producer: dict[str, int]
    #: step indices consuming each driver scalar
    scalar_consumers: dict[str, list[int]]
    #: (step index, instance) pairs consumed before any producer ran
    unproduced: list[tuple[int, MatrixInstance]]

    def nbytes(self, name: str) -> int:
        """Estimated ``|A|``; 0 for names the program does not know (the
        shape rule reports those -- size-based rules stay quiet)."""
        try:
            return self.estimator.nbytes(name)
        except PlanError:
            return 0

    def declared_shape(self, instance: MatrixInstance) -> Shape | None:
        """The program-declared shape of an instance (transpose-adjusted)."""
        dims = self.plan.program.dims.get(instance.name)
        if dims is None:
            return None
        rows, cols = dims
        return (cols, rows) if instance.transposed else (rows, cols)


def step_output(step: Step) -> MatrixInstance | None:
    """The matrix instance a step produces, if any."""
    return step.output_instance()


def build_facts(plan: Plan, estimation_mode: str = "worst") -> PlanFacts:
    """One forward pass computing :class:`PlanFacts` for a plan."""
    estimator = SizeEstimator(plan.program, estimation_mode)
    shapes: dict[MatrixInstance, Shape] = {}
    producer: dict[MatrixInstance, int] = {}
    consumers: dict[MatrixInstance, list[int]] = defaultdict(list)
    available: dict[MatrixInstance, int] = {}
    scalar_producer: dict[str, int] = {}
    scalar_consumers: dict[str, list[int]] = defaultdict(list)
    unproduced: list[tuple[int, MatrixInstance]] = []

    for index, step in enumerate(plan.steps):
        for instance in step.inputs():
            consumers[instance].append(index)
            if instance not in producer:
                unproduced.append((index, instance))
        for name in step.scalar_inputs():
            scalar_consumers[name].append(index)

        output = step.output_instance()
        if output is not None:
            producer.setdefault(output, index)
            available.setdefault(
                output, step.stage + (1 if step.communicates else 0)
            )
            shape = _interpret_shape(step, shapes)
            if shape is not None:
                shapes[output] = shape
        else:
            scalar = step.scalar_output()
            if scalar is not None:
                scalar_producer.setdefault(scalar, index)

    return PlanFacts(
        plan=plan,
        estimator=estimator,
        shapes=shapes,
        producer=producer,
        consumers=dict(consumers),
        available_stage=available,
        scalar_producer=scalar_producer,
        scalar_consumers=dict(scalar_consumers),
        unproduced=unproduced,
    )


def _interpret_shape(
    step: Step, shapes: dict[MatrixInstance, Shape]
) -> Shape | None:
    """Abstract shape transfer function of one step; ``None`` when an input
    shape is unknown (the anomaly is reported elsewhere).  Dispatches to
    the operator registry's per-kind ``shape_rule``."""
    spec = OPERATORS.get(type(step))
    if spec is None:
        return None
    return spec.shape_rule(step, shapes)

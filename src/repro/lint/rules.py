"""The rule catalog: DMac's static invariants and inefficiency lints.

Three families, mirroring the paper's correctness and cost claims:

* ``DM1xx`` -- **invariant violations** (error severity).  A plan that
  trips one of these would compute a wrong answer, break a guarantee the
  paper proves (Table-2 scheme constraints, Section-5.2 communication-free
  stages, the Eq-2/Eq-3 memory bounds), or blow a declared resource budget.
* ``DM2xx`` -- **inefficiency lints** (warning severity).  The plan is
  executable but provably wasteful under the Section-4.1 dependency-
  oriented cost model: bytes are moved (or work is done) that a better
  plan would not move.
* ``DM3xx`` -- **ordering hazards** (error severity).  The plan's
  publish/consume event schedule is not covered by the stage graph's
  happens-before relation (:mod:`repro.verify.hazards`): a pool thread
  may read an instance before its publish is visible, or two publishes
  race for one logical matrix.
* ``DM4xx`` -- **fusion lints** (warning severity).  An optimized plan
  still contains a cellwise chain the elementwise-fusion pass
  (:mod:`repro.planopt.fuse`) could not merge -- typically because an
  intermediate is needlessly published as a plan output or cache-pinned
  -- so the engine materialises block grids a fused kernel would skip.

Every rule is registered in :data:`RULES` with its id, severity, family,
one-line title, the paper section it enforces, and a generic fix hint; the
rule catalog in ``docs/linting.md`` and the ``--selftest`` harness are both
driven off this registry, so a rule cannot exist without being documented
and exercised.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Iterable, Iterator

from repro.blocks.memory import max_block_size
from repro.core.dependency import classify, is_communication
from repro.core.plan import (
    CellwiseStep,
    ExtendedStep,
    FusedCellwiseStep,
    MatMulStep,
    Plan,
    RowAggStep,
    ScalarMatrixStep,
    SourceStep,
    UnaryStep,
)
from repro.core.strategies import (
    COLSUM_STRATEGIES,
    MATMUL_STRATEGIES,
    ROWSUM_STRATEGIES,
    SOURCE_STRATEGY,
    Strategy,
)
from repro.lang.program import (
    CellwiseOp,
    MatMulOp,
    MatrixProgram,
    OpNode,
    op_input_names,
)
from repro.lint.diagnostics import Diagnostic, LintContext, Severity
from repro.lint.facts import PlanFacts, step_output
from repro.matrix.schemes import Scheme

_EXTENDED_KINDS = ("partition", "broadcast", "transpose", "extract")

_MATMUL_BY_NAME: dict[str, Strategy] = {s.name: s for s in MATMUL_STRATEGIES}
_ROWAGG_BY_NAME: dict[str, Strategy] = {
    s.name: s for s in ROWSUM_STRATEGIES + COLSUM_STRATEGIES
}


@dataclasses.dataclass(frozen=True)
class LintInput:
    """Everything a rule may inspect.  ``plan``/``facts`` are ``None`` when
    only the program AST is being analysed."""

    program: MatrixProgram
    context: LintContext
    plan: Plan | None = None
    facts: PlanFacts | None = None


RuleCheck = Callable[[LintInput], Iterable[Diagnostic]]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered diagnostic rule."""

    id: str
    severity: Severity
    family: str  # "invariant" | "inefficiency" | "hazard" | "fusion"
    title: str
    paper: str  # the paper section / equation the rule enforces
    hint: str
    check: RuleCheck

    def diagnostic(
        self,
        message: str,
        step: int | None = None,
        subject: object = None,
        hint: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=self.hint if hint is None else hint,
            step=step,
            subject=None if subject is None else str(subject),
        )


#: All registered rules, by id (insertion-ordered: DM1xx then DM2xx).
RULES: dict[str, Rule] = {}


def rule(
    id: str,
    *,
    severity: Severity,
    family: str,
    title: str,
    paper: str,
    hint: str = "",
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule check function under ``id``."""

    def decorate(check: RuleCheck) -> RuleCheck:
        if id in RULES:
            raise ValueError(f"duplicate rule id {id!r}")
        RULES[id] = Rule(id, severity, family, title, paper, hint, check)
        return check

    return decorate


def _rule(id: str) -> Rule:
    return RULES[id]


# ---------------------------------------------------------------------------
# Invariant violations (DM1xx, error severity)
# ---------------------------------------------------------------------------


@rule(
    "DM101",
    severity=Severity.ERROR,
    family="invariant",
    title="shape mismatch",
    paper="Section 4 (operator decomposition infers exact dimensions)",
    hint="rebuild the program through ProgramBuilder so dimensions are "
    "inferred, or fix the corrupted step's operand instances",
)
def check_shapes(inputs: LintInput) -> Iterator[Diagnostic]:
    """Abstract shape interpretation must agree with declared dimensions."""
    this = _rule("DM101")
    program = inputs.program
    for op in program.ops:
        yield from _check_op_shapes(this, program, op)
    facts = inputs.facts
    if facts is None:
        return
    for index, step in enumerate(facts.plan.steps):
        if isinstance(step, MatMulStep):
            left = facts.shapes.get(step.left)
            right = facts.shapes.get(step.right)
            if left and right and left[1] != right[0]:
                yield this.diagnostic(
                    f"matmul inner dimensions differ: {left[0]}x{left[1]} @ "
                    f"{right[0]}x{right[1]}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, CellwiseStep):
            left = facts.shapes.get(step.left)
            right = facts.shapes.get(step.right)
            if left and right and left != right:
                yield this.diagnostic(
                    f"cell-wise {step.op.op} over unequal shapes "
                    f"{left} and {right}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, FusedCellwiseStep):
            known = {
                instance: shape
                for instance in step.inputs()
                if (shape := facts.shapes.get(instance)) is not None
            }
            if len(set(known.values())) > 1:
                yield this.diagnostic(
                    "fused cell-wise chain over unequal shapes: "
                    + ", ".join(
                        f"{instance}={shape[0]}x{shape[1]}"
                        for instance, shape in known.items()
                    ),
                    step=index,
                    subject=step.output,
                )
        output = step_output(step)
        if output is None:
            continue
        interpreted = facts.shapes.get(output)
        declared = facts.declared_shape(output)
        if declared is None:
            yield this.diagnostic(
                f"instance {output} has no declared dimensions in the program",
                step=index,
                subject=output,
            )
        elif interpreted is not None and interpreted != declared:
            yield this.diagnostic(
                f"instance {output} flows with shape {interpreted} but the "
                f"program declares {declared}",
                step=index,
                subject=output,
            )


def _check_op_shapes(
    this: Rule, program: MatrixProgram, op: OpNode
) -> Iterator[Diagnostic]:
    dims = {}
    for operand in op.matrix_inputs():
        if operand.name not in program.dims:
            yield this.diagnostic(
                f"operator {op.output!r} reads {operand} which has no "
                f"declared dimensions",
                subject=op.output,
            )
            return
        dims[operand] = program.dims_of(operand)
    if isinstance(op, MatMulOp):
        (lr, lc), (rr, rc) = dims[op.left], dims[op.right]
        if lc != rr:
            yield this.diagnostic(
                f"operator {op.output!r}: matmul inner dimensions differ: "
                f"{lr}x{lc} @ {rr}x{rc}",
                subject=op.output,
            )
    elif isinstance(op, CellwiseOp):
        if dims[op.left] != dims[op.right]:
            yield this.diagnostic(
                f"operator {op.output!r}: cell-wise {op.op} over unequal "
                f"shapes {dims[op.left]} and {dims[op.right]}",
                subject=op.output,
            )


@rule(
    "DM102",
    severity=Severity.ERROR,
    family="invariant",
    title="scheme-constraint violation",
    paper="Table 2 / Section 3.1 (per-strategy scheme constraints)",
    hint="every strategy fixes its operand schemes (Figure 2); regenerate "
    "the plan or repair the strategy/instance binding",
)
def check_schemes(inputs: LintInput) -> Iterator[Diagnostic]:
    """Every step's instances must satisfy its operator's scheme contract."""
    this = _rule("DM102")
    if inputs.facts is None:
        return
    for index, step in enumerate(inputs.facts.plan.steps):
        if isinstance(step, ExtendedStep):
            yield from _check_extended_schemes(this, index, step)
        elif isinstance(step, SourceStep):
            if step.output.transposed or step.output.scheme not in (
                SOURCE_STRATEGY.output_schemes
            ):
                yield this.diagnostic(
                    f"source must materialise untransposed Row or Column, "
                    f"got {step.output}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, MatMulStep):
            strategy = _MATMUL_BY_NAME.get(step.strategy)
            if strategy is None:
                yield this.diagnostic(
                    f"unknown matmul strategy {step.strategy!r}",
                    step=index,
                    subject=step.output,
                )
                continue
            expected = strategy.input_schemes
            got = (step.left.scheme, step.right.scheme)
            if got != expected:
                yield this.diagnostic(
                    f"{strategy.name} requires input schemes "
                    f"({expected[0]}, {expected[1]}), got ({got[0]}, {got[1]})",
                    step=index,
                    subject=step.output,
                )
            if step.output.scheme not in strategy.output_schemes:
                yield this.diagnostic(
                    f"{strategy.name} cannot produce scheme "
                    f"{step.output.scheme}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, RowAggStep):
            strategy = _ROWAGG_BY_NAME.get(step.strategy)
            if strategy is None or not step.strategy.startswith(step.op.kind):
                yield this.diagnostic(
                    f"unknown {step.op.kind} strategy {step.strategy!r}",
                    step=index,
                    subject=step.output,
                )
                continue
            if step.source.scheme is not strategy.input_schemes[0]:
                yield this.diagnostic(
                    f"{strategy.name} requires input scheme "
                    f"{strategy.input_schemes[0]}, got {step.source.scheme}",
                    step=index,
                    subject=step.output,
                )
            if step.output.scheme not in strategy.output_schemes:
                yield this.diagnostic(
                    f"{strategy.name} cannot produce scheme "
                    f"{step.output.scheme}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, CellwiseStep):
            schemes = {step.left.scheme, step.right.scheme, step.output.scheme}
            if len(schemes) != 1:
                yield this.diagnostic(
                    f"cell-wise operands and output must share one scheme, "
                    f"got ({step.left.scheme}, {step.right.scheme}) -> "
                    f"{step.output.scheme}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, FusedCellwiseStep):
            schemes = {i.scheme for i in step.inputs()} | {step.output.scheme}
            if len(schemes) != 1:
                yield this.diagnostic(
                    f"fused cell-wise chain operands and output must share "
                    f"one scheme, got "
                    f"({', '.join(str(i.scheme) for i in step.inputs())}) -> "
                    f"{step.output.scheme}",
                    step=index,
                    subject=step.output,
                )
        elif isinstance(step, (ScalarMatrixStep, UnaryStep)):
            if step.output.scheme is not step.source.scheme:
                yield this.diagnostic(
                    f"element-wise step must preserve the scheme, got "
                    f"{step.source.scheme} -> {step.output.scheme}",
                    step=index,
                    subject=step.output,
                )


def _check_extended_schemes(
    this: Rule, index: int, step: ExtendedStep
) -> Iterator[Diagnostic]:
    source, target = step.source, step.target
    if step.kind not in _EXTENDED_KINDS:
        yield this.diagnostic(
            f"unknown extended operator {step.kind!r}", step=index, subject=target
        )
        return
    if source.name != target.name:
        yield this.diagnostic(
            f"{step.kind} must stay within one logical matrix, got "
            f"{source.name!r} -> {target.name!r}",
            step=index,
            subject=target,
        )
        return
    if step.kind == "transpose":
        if target.transposed == source.transposed:
            yield this.diagnostic(
                f"transpose must flip the transposed flag: {source} -> {target}",
                step=index,
                subject=target,
            )
        if target.scheme is not source.scheme.opposite:
            yield this.diagnostic(
                f"a local transpose flips Row<->Column (and keeps Broadcast): "
                f"{source} -> {target}",
                step=index,
                subject=target,
            )
        return
    if target.transposed != source.transposed:
        yield this.diagnostic(
            f"{step.kind} cannot change the transposed flag: {source} -> {target}",
            step=index,
            subject=target,
        )
    if step.kind == "partition":
        if not (source.scheme.is_one_dimensional and target.scheme.is_one_dimensional):
            yield this.diagnostic(
                f"partition repartitions between one-dimensional schemes, "
                f"got {source.scheme} -> {target.scheme}",
                step=index,
                subject=target,
            )
    elif step.kind == "broadcast":
        if not source.scheme.is_one_dimensional or target.scheme is not Scheme.BROADCAST:
            yield this.diagnostic(
                f"broadcast replicates a one-dimensional layout, got "
                f"{source.scheme} -> {target.scheme}",
                step=index,
                subject=target,
            )
    elif step.kind == "extract":
        if source.scheme is not Scheme.BROADCAST or not target.scheme.is_one_dimensional:
            yield this.diagnostic(
                f"extract pulls a one-dimensional slice out of a replica, "
                f"got {source.scheme} -> {target.scheme}",
                step=index,
                subject=target,
            )


@rule(
    "DM103",
    severity=Severity.ERROR,
    family="invariant",
    title="wide edge inside a stage",
    paper="Section 5.2 (stages are communication-free)",
    hint="re-run the stage scheduler (repro.core.stages.schedule_stages) "
    "instead of assigning stage numbers by hand",
)
def check_stage_purity(inputs: LintInput) -> Iterator[Diagnostic]:
    """No step may consume data that only becomes available -- through a
    communicating edge -- in the same or a later stage.  The check is the
    runtime's own: :meth:`repro.runtime.graph.StageGraph.stage_violations`
    reports exactly the wide edges the concurrent scheduler cannot honour."""
    from repro.runtime.graph import StageGraph

    this = _rule("DM103")
    facts = inputs.facts
    if facts is None:
        return
    graph = StageGraph.from_plan(facts.plan)
    for index, instance, available in graph.stage_violations():
        step = facts.plan.steps[index]
        yield this.diagnostic(
            f"step runs in stage {step.stage} but input {instance} "
            f"is only available from stage {available}: a "
            f"communicating edge was scheduled inside a stage",
            step=index,
            subject=instance,
        )


@rule(
    "DM104",
    severity=Severity.ERROR,
    family="invariant",
    title="cost-model / dependency-class disagreement",
    paper="Section 4.1 (dependency-oriented cost model)",
    hint="plan.predicted_bytes must equal the sum of per-step charges; "
    "regenerate the plan rather than editing steps in place",
)
def check_ledger_agreement(inputs: LintInput) -> Iterator[Diagnostic]:
    """The plan's predicted bytes must decompose exactly over its
    communicating steps under the declared dependency classes."""
    this = _rule("DM104")
    facts = inputs.facts
    if facts is None:
        return
    workers = inputs.context.num_workers
    total = 0
    for step in facts.plan.steps:
        if isinstance(step, ExtendedStep) and step.communicates:
            nbytes = facts.nbytes(step.source.name)
            total += (workers - 1) * nbytes if step.kind == "broadcast" else nbytes
        elif isinstance(step, (MatMulStep, RowAggStep)) and step.communicates:
            total += (workers - 1) * facts.nbytes(step.output.name)
    if total != facts.plan.predicted_bytes:
        yield this.diagnostic(
            f"plan declares {facts.plan.predicted_bytes} predicted bytes but "
            f"its communicating steps account for {total} "
            f"(delta {facts.plan.predicted_bytes - total:+d}) at "
            f"{workers} workers",
        )


@rule(
    "DM105",
    severity=Severity.ERROR,
    family="invariant",
    title="block size exceeds the Equation-3 bound",
    paper="Section 5.3, Equation 3 (m <= sqrt(MN / LK))",
    hint="drop the explicit block_size (the engine auto-tunes just under "
    "the bound) or choose one below it",
)
def check_block_size(inputs: LintInput) -> Iterator[Diagnostic]:
    """A configured block size must leave every local thread a task."""
    this = _rule("DM105")
    context = inputs.context
    if context.block_size is None or not inputs.program.dims:
        return
    rows, cols = max(
        inputs.program.dims.values(), key=lambda shape: shape[0] * shape[1]
    )
    bound = max_block_size(
        rows, cols, context.num_workers, context.threads_per_worker
    )
    if context.block_size > bound:
        yield this.diagnostic(
            f"block size {context.block_size} exceeds the Equation-3 bound "
            f"{bound} for the {rows}x{cols} matrix at {context.num_workers} "
            f"workers x {context.threads_per_worker} threads: some threads "
            f"would starve",
        )


@rule(
    "DM106",
    severity=Severity.ERROR,
    family="invariant",
    title="broadcast exceeds the per-worker memory budget",
    paper="Section 5.3, Equation 2 (per-worker memory model)",
    hint="let the planner repartition instead of replicating, or raise "
    "memory_limit_bytes",
)
def check_broadcast_budget(inputs: LintInput) -> Iterator[Diagnostic]:
    """Every replica must fit the declared per-worker memory budget."""
    this = _rule("DM106")
    facts = inputs.facts
    budget = inputs.context.memory_limit_bytes
    if facts is None or budget is None:
        return
    for instance, index in facts.producer.items():
        if instance.scheme is not Scheme.BROADCAST:
            continue
        nbytes = facts.nbytes(instance.name)
        if nbytes > budget:
            yield this.diagnostic(
                f"replica {instance} weighs ~{nbytes} bytes on every worker, "
                f"above the {budget}-byte budget",
                step=index,
                subject=instance,
            )


@rule(
    "DM107",
    severity=Severity.ERROR,
    family="invariant",
    title="dangling dataflow",
    paper="Section 4.2 (plans are topologically ordered DAGs)",
    hint="plan steps must be topologically ordered and outputs must be "
    "materialised; regenerate the plan",
)
def check_dataflow(inputs: LintInput) -> Iterator[Diagnostic]:
    """Instances must be produced before use; program outputs must exist."""
    this = _rule("DM107")
    facts = inputs.facts
    if facts is None:
        return
    for index, instance in facts.unproduced:
        yield this.diagnostic(
            f"step consumes {instance} before any step produces it",
            step=index,
            subject=instance,
        )
    for name, instance in facts.plan.outputs.items():
        if instance not in facts.producer:
            yield this.diagnostic(
                f"program output {name!r} maps to {instance}, which no step "
                f"produces",
                subject=instance,
            )


# ---------------------------------------------------------------------------
# Inefficiency lints (DM2xx, warning severity)
# ---------------------------------------------------------------------------


@rule(
    "DM201",
    severity=Severity.WARNING,
    family="inefficiency",
    title="redundant repartition",
    paper="Table 2 (Reference dependencies are free)",
    hint="drop the partition step: the data is already laid out that way",
)
def check_redundant_repartition(inputs: LintInput) -> Iterator[Diagnostic]:
    """A repartition whose source already has the target layout moves every
    byte of the matrix for nothing."""
    this = _rule("DM201")
    facts = inputs.facts
    if facts is None:
        return
    for index, step in enumerate(facts.plan.steps):
        if not isinstance(step, ExtendedStep) or step.kind != "partition":
            continue
        transposed_access = step.source.transposed != step.target.transposed
        if step.source.scheme.is_one_dimensional and not is_communication(
            classify(step.source.scheme, step.target.scheme, transposed_access)
        ):
            yield this.diagnostic(
                f"repartition of {step.source} to its current scheme "
                f"{step.target.scheme} shuffles "
                f"~{facts.nbytes(step.source.name)} bytes for nothing",
                step=index,
                subject=step.target,
            )


@rule(
    "DM202",
    severity=Severity.WARNING,
    family="inefficiency",
    title="dead operator",
    paper="Section 4 (every operator should feed an output)",
    hint="remove the operator, or mark its result as a program output",
)
def check_dead_operators(inputs: LintInput) -> Iterator[Diagnostic]:
    """Work whose result nothing consumes is wasted compute (and possibly
    wasted communication)."""
    this = _rule("DM202")
    facts = inputs.facts
    if facts is None:
        yield from _check_dead_program_ops(this, inputs.program)
        return
    live_names = set(inputs.program.outputs)
    for instance, index in facts.producer.items():
        if instance.name in live_names:
            continue
        if not facts.consumers.get(instance):
            yield this.diagnostic(
                f"instance {instance} is produced but never consumed",
                step=index,
                subject=instance,
            )
    live_scalars = set(inputs.program.scalar_outputs)
    for name, index in facts.scalar_producer.items():
        if name not in live_scalars and not facts.scalar_consumers.get(name):
            yield this.diagnostic(
                f"scalar {name!r} is computed but never consumed",
                step=index,
                subject=name,
            )


def _check_dead_program_ops(
    this: Rule, program: MatrixProgram
) -> Iterator[Diagnostic]:
    consumed: set[str] = set()
    for op in program.ops:
        consumed.update(op_input_names(op))
    live = consumed | set(program.outputs) | set(program.scalar_outputs)
    for op in program.ops:
        if op.output not in live:
            yield this.diagnostic(
                f"operator {op.output!r} ({type(op).__name__}) is never "
                f"consumed and is not an output",
                subject=op.output,
            )


@rule(
    "DM203",
    severity=Severity.WARNING,
    family="inefficiency",
    title="transpose of transpose",
    paper="Section 4.2.1 (extended operators should be canonical chains)",
    hint="drop both transpose steps and read the original instance",
)
def check_transpose_of_transpose(inputs: LintInput) -> Iterator[Diagnostic]:
    """Two chained local transposes cancel; the second recreates the first
    step's input layout."""
    this = _rule("DM203")
    facts = inputs.facts
    if facts is None:
        return
    steps = facts.plan.steps
    for index, step in enumerate(steps):
        if not isinstance(step, ExtendedStep) or step.kind != "transpose":
            continue
        producer_index = facts.producer.get(step.source)
        if producer_index is None:
            continue
        producer = steps[producer_index]
        if (
            isinstance(producer, ExtendedStep)
            and producer.kind == "transpose"
            and producer.source == step.target
        ):
            yield this.diagnostic(
                f"transpose of transpose: {producer.source} -> "
                f"{producer.target} -> {step.target} round-trips to the "
                f"original layout",
                step=index,
                subject=step.target,
            )


@rule(
    "DM204",
    severity=Severity.WARNING,
    family="inefficiency",
    title="CPMM chosen where RMM is strictly cheaper",
    paper="Section 4.1, Equation 1 (strategy choice by communication cost)",
    hint="choose rmm1/rmm2 for this multiplication; its output shuffle "
    "alone outweighs replicating an operand",
)
def check_cpmm_vs_rmm(inputs: LintInput) -> Iterator[Diagnostic]:
    """CPMM's output shuffle costs ``K x |C|`` no matter how its inputs are
    laid out; when even the *worst-case* RMM total (broadcast one operand,
    repartition the other) beats that floor, CPMM can never win."""
    this = _rule("DM204")
    facts = inputs.facts
    if facts is None:
        return
    workers = inputs.context.num_workers
    for index, step in enumerate(facts.plan.steps):
        if not isinstance(step, MatMulStep) or step.strategy != "cpmm":
            continue
        left = facts.nbytes(step.left.name)
        right = facts.nbytes(step.right.name)
        out = facts.nbytes(step.output.name)
        cpmm_floor = workers * out
        rmm_ceiling = min(workers * left + right, workers * right + left)
        if rmm_ceiling < cpmm_floor:
            yield this.diagnostic(
                f"cpmm shuffles at least {cpmm_floor} bytes "
                f"(K x |{step.output.name}|) but replication-based "
                f"multiplication costs at most {rmm_ceiling} here",
                step=index,
                subject=step.output,
            )


@rule(
    "DM205",
    severity=Severity.WARNING,
    family="inefficiency",
    title="re-broadcast of an unchanged matrix",
    paper="Section 4.2.2, Heuristic 1 (replicas are created once)",
    hint="reuse the existing replica (register it and Extract from it) "
    "instead of broadcasting the same version again",
)
def check_rebroadcast(inputs: LintInput) -> Iterator[Diagnostic]:
    """Matrix versions are immutable (SSA): broadcasting the same version
    twice pays ``(K-1) x |A|`` again for bytes every worker already holds."""
    this = _rule("DM205")
    facts = inputs.facts
    if facts is None:
        return
    seen: Counter = Counter()
    for index, step in enumerate(facts.plan.steps):
        if not isinstance(step, ExtendedStep) or step.kind != "broadcast":
            continue
        key = (step.source.name, step.source.transposed)
        seen[key] += 1
        if seen[key] > 1:
            yield this.diagnostic(
                f"{step.source} is broadcast again (occurrence "
                f"{seen[key]}); loop-invariant replicas should be created "
                f"once and reused across iterations",
                step=index,
                subject=step.target,
            )


@rule(
    "DM206",
    severity=Severity.WARNING,
    family="inefficiency",
    title="predicted peak memory exceeds the per-worker budget",
    paper="Section 5.3, Equation 2 (per-worker memory model)",
    hint="pinning more than the budget guarantees the block cache will "
    "spill and recompute; raise cache_limit_bytes / memory_limit_bytes "
    "or reduce the pin set",
)
def check_cache_pin_budget(inputs: LintInput) -> Iterator[Diagnostic]:
    """The liveness-based peak-memory bound of a plan with cache pins must
    fit the declared per-worker budget, or the cache thrashes: every pin
    is resident from its publish to the end of the run, so the sound bound
    is the pinned prefix *plus* the heaviest co-resident step transients
    (:func:`repro.verify.memory.predict_peak_memory`), not the pin shares
    alone."""
    this = _rule("DM206")
    facts = inputs.facts
    budget = inputs.context.memory_limit_bytes
    if facts is None or budget is None:
        return
    pins = getattr(facts.plan, "cache_pins", ())
    if not pins:
        return
    from repro.verify.memory import predict_peak_memory

    prediction = predict_peak_memory(
        facts.plan,
        num_workers=inputs.context.num_workers,
        threads_per_worker=inputs.context.threads_per_worker,
        block_size=inputs.context.block_size,
        max_concurrent_stages=1,
        estimation_mode=inputs.context.estimation_mode,
    )
    if prediction.serial_peak_bytes > budget:
        yield this.diagnostic(
            f"predicted per-worker peak is ~{prediction.serial_peak_bytes} "
            f"bytes (pinned working set ~{prediction.pinned_bytes} plus "
            f"co-resident step transients, liveness serial bound), above "
            f"the {budget}-byte budget: the cache will spill and recompute "
            f"pins every iteration",
        )


# ---------------------------------------------------------------------------
# Ordering hazards (DM3xx, error severity)
# ---------------------------------------------------------------------------


@rule(
    "DM301",
    severity=Severity.ERROR,
    family="hazard",
    title="read before publish",
    paper="Section 5.2 (stage edges order every publish before its readers)",
    hint="regenerate the stage graph (repro.core.stages.schedule_stages): "
    "every consumer must be reachable from a producer through node "
    "ordering edges",
)
def check_read_before_publish(inputs: LintInput) -> Iterator[Diagnostic]:
    """Every block-instance (and driver-scalar) read must be ordered after
    some publish of it by the stage graph's happens-before relation --
    serial order within a node, transitive ``deps`` edges across nodes.  A
    consumer no producer reaches may observe missing state when nodes run
    concurrently on pool threads."""
    this = _rule("DM301")
    if inputs.facts is None:
        return
    from repro.runtime.graph import StageGraph
    from repro.verify.hazards import READ_BEFORE_PUBLISH, find_hazards

    graph = StageGraph.from_plan(inputs.facts.plan)
    for hazard in find_hazards(graph):
        if hazard.kind == READ_BEFORE_PUBLISH:
            yield this.diagnostic(
                f"{hazard.subject} is {hazard.detail}",
                step=hazard.step,
                subject=hazard.subject,
            )


@rule(
    "DM302",
    severity=Severity.ERROR,
    family="hazard",
    title="conflicting double publish",
    paper="Section 4.2 (matrix versions are immutable; one publish each)",
    hint="rename one of the producers to a fresh matrix version; the "
    "runtime raises 'produced twice' at whichever publish loses the race",
)
def check_double_publish(inputs: LintInput) -> Iterator[Diagnostic]:
    """Two steps publishing *different* symbolic values for one logical
    matrix race for its blocks.  Re-publications of the identical value
    (a duplicated broadcast, a transpose round-trip) are redundancy, not a
    race, and stay with the DM2xx inefficiency rules."""
    this = _rule("DM302")
    if inputs.facts is None:
        return
    from repro.runtime.graph import StageGraph
    from repro.verify.hazards import DOUBLE_PUBLISH, find_hazards

    graph = StageGraph.from_plan(inputs.facts.plan)
    for hazard in find_hazards(graph):
        if hazard.kind == DOUBLE_PUBLISH:
            yield this.diagnostic(
                f"{hazard.subject} is {hazard.detail}",
                step=hazard.step,
                subject=hazard.subject,
            )


# ---------------------------------------------------------------------------
# Fusion lints (DM4xx, warning severity)
# ---------------------------------------------------------------------------


@rule(
    "DM401",
    severity=Severity.WARNING,
    family="fusion",
    title="cellwise chain left unfused",
    paper="Section 5.3 (local execution cost; fused kernels skip "
    "intermediate block grids)",
    hint="drop the intermediate from the program's outputs (or its cache "
    "pin) so the fusion pass can merge the chain into one composed kernel",
)
def check_unfused_chains(inputs: LintInput) -> Iterator[Diagnostic]:
    """An *optimized* plan (one carrying rewrite certificates) still feeds
    a cellwise step straight into a sole cellwise consumer.  The fusion
    pass merges such chains into one :class:`FusedCellwiseStep` unless the
    intermediate is observable -- published as a plan output or cache-
    pinned -- so each hit names the blocker that kept a full intermediate
    block grid alive."""
    this = _rule("DM401")
    facts = inputs.facts
    if facts is None or not getattr(facts.plan, "certificates", ()):
        return  # unoptimized plans have not had a chance to fuse yet
    from repro.planopt.fuse import unfused_chain_heads

    index_of = {id(step): index for index, step in enumerate(facts.plan.steps)}
    for producer, consumer, blocker in unfused_chain_heads(facts.plan):
        if blocker == "output":
            why = "its intermediate is published as a plan output"
        elif blocker == "pin":
            why = "its intermediate is cache-pinned"
        else:
            why = "nothing blocks it, yet the fusion pass left it unfused"
        yield this.diagnostic(
            f"cellwise step {producer.output} feeds only the cellwise step "
            f"producing {step_output(consumer)} but was not fused: {why}",
            step=index_of.get(id(producer)),
            subject=producer.output,
        )


def invariant_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.family == "invariant"]


def inefficiency_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.family == "inefficiency"]


def hazard_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.family == "hazard"]


def fusion_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.family == "fusion"]

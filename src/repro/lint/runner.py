"""Entry points: lint a program, a plan, a ``.dml`` script, or a ``.py``
program builder -- without executing anything.

``lint_plan`` is the workhorse: it abstract-interprets the plan DAG into
:class:`~repro.lint.facts.PlanFacts` and applies every registered rule.
``lint_program`` runs the (smaller) set of program-level checks when no
plan exists yet.  ``lint_path`` dispatches on file type for the CLI, using
:func:`capture_plans` to observe the plans a ``.py`` builder script
generates through :class:`~repro.session.DMacSession` without running the
executor.
"""

from __future__ import annotations

import contextlib
import dataclasses
import runpy
import sys

from repro.config import ClusterConfig
from repro.core.plan import Plan
from repro.core.planner import DMacPlanner
from repro.core.stages import schedule_stages
from repro.lang.program import MatrixProgram
from repro.lint.diagnostics import Diagnostic, LintContext, LintReport, Severity
from repro.lint.facts import build_facts
from repro.lint.rules import RULES, LintInput


def _apply_rules(inputs: LintInput, suppress: tuple[str, ...]) -> LintReport:
    report = LintReport(suppressed=tuple(suppress))
    unknown = set(suppress) - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s) in suppress: {sorted(unknown)}")
    for rule in RULES.values():
        if rule.id in suppress:
            continue
        report.extend(rule.check(inputs))
    return report


def lint_program(
    program: MatrixProgram,
    context: LintContext | None = None,
    suppress: tuple[str, ...] = (),
) -> LintReport:
    """Run the program-level rules over an AST (no plan required)."""
    inputs = LintInput(program=program, context=context or LintContext())
    return _apply_rules(inputs, suppress)


def lint_plan(
    plan: Plan,
    context: LintContext | None = None,
    suppress: tuple[str, ...] = (),
) -> LintReport:
    """Run every rule over a generated plan (and its program).

    An unscheduled plan (``num_stages == 0``) is stage-scheduled first so
    the Section-5.2 purity rule has stages to check; already-scheduled
    plans are analysed exactly as given.
    """
    if plan.num_stages == 0:
        plan = schedule_stages(plan)
    context = context or LintContext()
    facts = build_facts(plan, context.estimation_mode)
    inputs = LintInput(
        program=plan.program, context=context, plan=plan, facts=facts
    )
    return _apply_rules(inputs, suppress)


def plan_for(
    program: MatrixProgram, context: LintContext | None = None
) -> Plan:
    """Generate the stage-scheduled DMac plan the CLI lints by default."""
    context = context or LintContext()
    planner = DMacPlanner(
        program,
        context.num_workers,
        estimation_mode=context.estimation_mode,
    )
    return schedule_stages(planner.plan())


def lint_dml_source(
    source: str,
    context: LintContext | None = None,
    suppress: tuple[str, ...] = (),
) -> LintReport:
    """Parse DML, plan it, and lint both program and plan."""
    from repro.lang.dml import parse_program

    program = parse_program(source)
    return lint_plan(plan_for(program, context), context, suppress)


@contextlib.contextmanager
def capture_plans(captured: list[tuple[Plan, LintContext]]):
    """Observe every plan a :class:`DMacSession` generates in this scope.

    The session's ``plan`` method still returns real plans (so builder
    scripts that go on to execute keep working), but each one is recorded
    -- together with a lint context matching the *generating session's*
    configuration, so a script that plans at several worker counts is
    checked against the right cost model each time.  Used to lint ``.py``
    example scripts without trusting them to expose their programs.
    """
    from repro import session as session_module

    original = session_module.DMacSession.plan

    def observing_plan(self, program):
        plan = original(self, program)
        captured.append(
            (plan, LintContext.from_config(self.config, self.estimation_mode))
        )
        return plan

    session_module.DMacSession.plan = observing_plan
    try:
        yield captured
    finally:
        session_module.DMacSession.plan = original


def lint_python_file(
    path: str,
    context: LintContext | None = None,
    suppress: tuple[str, ...] = (),
) -> LintReport:
    """Execute a ``.py`` program-builder script (as ``__main__``, so its
    guarded entry point runs) and lint every plan it creates through a
    session; falls back to a module-level ``PROGRAM`` / ``build_program()``
    convention if the script never plans.

    Captured plans are linted under their own session's configuration;
    ``context`` only contributes its resource-budget knobs (block size,
    memory limit) as overrides when set.
    """
    captured: list[tuple[Plan, LintContext]] = []
    original_argv = sys.argv
    sys.argv = [path]  # scripts may parse argv; hide the lint CLI's
    try:
        with capture_plans(captured):
            namespace = runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = original_argv
    report = LintReport(suppressed=tuple(suppress))
    if captured:
        for plan, plan_context in captured:
            merged = _merge_budgets(plan_context, context)
            report.extend(lint_plan(plan, merged, suppress))
        return report
    program = namespace.get("PROGRAM")
    if program is None and callable(namespace.get("build_program")):
        program = namespace["build_program"]()
    if isinstance(program, MatrixProgram):
        return lint_plan(plan_for(program, context), context, suppress)
    report.extend(
        [
            Diagnostic(
                rule="DM000",
                severity=Severity.WARNING,
                message=f"{path} never planned a program through DMacSession "
                "and exposes no PROGRAM/build_program(): nothing to lint",
                hint="plan a program via DMacSession, or export PROGRAM",
            )
        ]
    )
    return report


def _merge_budgets(
    plan_context: LintContext, overrides: LintContext | None
) -> LintContext:
    """The generating session's context, with the caller's resource-budget
    knobs (when set) layered on top."""
    if overrides is None:
        return plan_context
    return dataclasses.replace(
        plan_context,
        block_size=(
            overrides.block_size
            if overrides.block_size is not None
            else plan_context.block_size
        ),
        memory_limit_bytes=(
            overrides.memory_limit_bytes
            if overrides.memory_limit_bytes is not None
            else plan_context.memory_limit_bytes
        ),
    )


def lint_path(
    path: str,
    context: LintContext | None = None,
    suppress: tuple[str, ...] = (),
) -> LintReport:
    """Lint a ``.dml`` script or ``.py`` builder file by extension."""
    if path.endswith(".py"):
        return lint_python_file(path, context, suppress)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_dml_source(source, context, suppress)


def lint_config_context(config: ClusterConfig, estimation_mode: str = "worst") -> LintContext:
    """Convenience: the lint context matching a cluster configuration."""
    return LintContext.from_config(config, estimation_mode)

"""The analyzer's self-test: deliberately corrupted plans, one per rule.

Static analyzers rot silently -- a rule that never fires looks identical
to a rule that works.  This module regenerates a clean reference plan (a
GNMF update step, the paper's running example), applies one surgical
corruption per rule (mutated strategy, injected wide edge, retargeted
output, duplicated broadcast, ...), and asserts that linting the corrupted
plan reports **exactly** the expected rule -- no more, no less.  The clean
plan must lint with zero findings first.

Each corruption is designed to perturb only the property its rule checks:
for example, the duplicated-broadcast corruption also bumps
``predicted_bytes`` by the broadcast's cost so the ledger-agreement rule
(DM104) stays silent, and the shape corruption transposes a declared
dimension pair (preserving the byte product) so no size-based rule reacts.

Run it via ``python -m repro lint --selftest`` or the test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.core.plan import (
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    SourceStep,
)
from repro.lang.program import MatMulOp, MatrixProgram, ProgramBuilder
from repro.lint.diagnostics import LintContext, LintReport
from repro.lint.rules import RULES
from repro.lint.runner import lint_plan, plan_for
from repro.matrix.schemes import Scheme


@dataclasses.dataclass
class Corruption:
    """One deliberate plan defect and the rule that must catch it."""

    name: str
    rule: str
    apply: Callable[[Plan, LintContext], tuple[Plan, LintContext]]


@dataclasses.dataclass
class SelftestResult:
    corruption: str
    expected_rule: str
    fired_rules: tuple[str, ...]
    passed: bool
    report: LintReport


def reference_program() -> MatrixProgram:
    """One GNMF multiplicative-update step (the paper's running example)."""
    pb = ProgramBuilder()
    V = pb.load("V", (600, 400), sparsity=0.05)
    W = pb.random("W", (600, 10))
    H = pb.random("H", (10, 400))
    H = pb.assign("H", H * (W.T @ V) / (W.T @ W @ H))
    W = pb.assign("W", W * (V @ H.T) / (W @ H @ H.T))
    pb.output(W)
    pb.output(H)
    return pb.build()


# ---------------------------------------------------------------------------
# Search helpers (corruptions locate their victim step in the fresh plan)
# ---------------------------------------------------------------------------


def _find_step(plan: Plan, predicate) -> int:
    for index, step in enumerate(plan.steps):
        if predicate(step):
            return index
    raise AssertionError("selftest reference plan lacks the expected step")


def _producer_map(plan: Plan) -> dict[MatrixInstance, int]:
    from repro.lint.facts import build_facts

    return build_facts(plan).producer


# ---------------------------------------------------------------------------
# Corruptions, one per rule
# ---------------------------------------------------------------------------


def _corrupt_shape(plan: Plan, context: LintContext):
    """Transpose one matrix's declared dimensions.  The byte product is
    unchanged, so only the shape interpretation disagrees.  (Square
    matrices are immune; row-aggregation operands are skipped because
    their worst-case sparsity estimate -- and hence the ledger -- depends
    on the reduced dimension.)"""
    from repro.lang.program import RowAggOp

    rowagg_operands = {
        op.operand.name
        for op in plan.program.ops
        if isinstance(op, RowAggOp)
    }
    for name, (rows, cols) in plan.program.dims.items():
        if rows != cols and name not in rowagg_operands:
            plan.program.dims[name] = (cols, rows)
            return plan, context
    raise AssertionError("no non-square, non-rowagg matrix to corrupt")


def _corrupt_scheme(plan: Plan, context: LintContext):
    """Swap a matmul's strategy for one with different scheme constraints.
    Both rmm variants are communication-free, so the ledger is unmoved."""
    index = _find_step(
        plan,
        lambda s: isinstance(s, MatMulStep) and s.strategy in ("rmm1", "rmm2"),
    )
    step = plan.steps[index]
    step.strategy = "rmm2" if step.strategy == "rmm1" else "rmm1"
    return plan, context


def _corrupt_stage(plan: Plan, context: LintContext):
    """Pull a consumer of a communicated instance down into the stage that
    sends it: a wide edge inside a stage."""
    from repro.lint.facts import build_facts

    facts = build_facts(plan)
    for index, step in enumerate(plan.steps):
        if not step.communicates:
            continue
        from repro.lint.facts import step_output

        target = step_output(step)
        for consumer in facts.consumers.get(target, ()):
            if plan.steps[consumer].stage > step.stage:
                plan.steps[consumer].stage = step.stage
                return plan, context
    raise AssertionError("no communicating edge with a later consumer")


def _corrupt_ledger(plan: Plan, context: LintContext):
    """Nudge the declared communication total off its decomposition."""
    plan.predicted_bytes += 12345
    return plan, context


def _corrupt_block_size(plan: Plan, context: LintContext):
    """Configure a block size far beyond the Equation-3 bound."""
    return plan, dataclasses.replace(context, block_size=10**6)


def _corrupt_memory_budget(plan: Plan, context: LintContext):
    """Declare a per-worker budget every replica in the plan exceeds."""
    if not any(
        instance.scheme is Scheme.BROADCAST for instance in _producer_map(plan)
    ):
        raise AssertionError("plan holds no replicas to starve")
    return plan, dataclasses.replace(context, memory_limit_bytes=1)


def _corrupt_output(plan: Plan, context: LintContext):
    """Retarget a program output at an instance no step ever produces."""
    name = plan.program.outputs[0]
    ghost = MatrixInstance(name, False, Scheme.BROADCAST)
    assert ghost not in _producer_map(plan)
    plan.outputs[name] = ghost
    return plan, context


def _corrupt_redundant_partition(plan: Plan, context: LintContext):
    """Insert a partition of an instance to its current scheme (and pay
    for it in the ledger, so only the waste is reportable).  The victim
    must already have a consumer: repartitioning a *dead* instance would
    give it one and thereby silence a legitimate DM202 baseline finding."""
    from repro.lint.facts import build_facts, step_output

    facts = build_facts(plan)
    index = _find_step(
        plan,
        lambda s: (
            (out := step_output(s)) is not None
            and out.scheme.is_one_dimensional
            and facts.consumers.get(out)
        ),
    )
    victim = step_output(plan.steps[index])
    redundant = ExtendedStep("partition", victim, victim)
    redundant.stage = facts.available_stage[victim]
    plan.steps.insert(index + 1, redundant)
    plan.predicted_bytes += facts.nbytes(victim.name)
    return plan, context


def _corrupt_dead_operator(plan: Plan, context: LintContext):
    """Append a transpose whose result nothing consumes."""
    producer = _producer_map(plan)
    for instance in producer:
        if instance.name in plan.program.outputs:
            continue
        if not instance.scheme.is_one_dimensional:
            continue
        twin = MatrixInstance(
            instance.name, not instance.transposed, instance.scheme.opposite
        )
        if twin in producer:
            continue
        dead = ExtendedStep("transpose", instance, twin)
        dead.stage = plan.num_stages
        plan.steps.append(dead)
        return plan, context
    raise AssertionError("no instance suitable for a dead transpose")


def _corrupt_transpose_pair(plan: Plan, context: LintContext):
    """Append a transpose and its inverse: the pair round-trips."""
    producer = _producer_map(plan)
    from repro.lint.facts import build_facts

    facts = build_facts(plan)
    for instance in producer:
        if not instance.scheme.is_one_dimensional:
            continue
        if not facts.consumers.get(instance):
            continue
        twin = MatrixInstance(
            instance.name, not instance.transposed, instance.scheme.opposite
        )
        if twin in producer:
            continue
        first = ExtendedStep("transpose", instance, twin)
        second = ExtendedStep("transpose", twin, instance)
        first.stage = second.stage = plan.num_stages
        plan.steps.extend([first, second])
        return plan, context
    raise AssertionError("no instance suitable for a transpose round-trip")


def _corrupt_cpmm_choice(plan: Plan, context: LintContext):
    """Replace the plan outright: a tall-thin x short-wide product where
    CPMM's output shuffle (K x |C|) dwarfs replicating an operand."""
    pb = ProgramBuilder()
    A = pb.random("A", (1000, 4))
    B = pb.random("B", (4, 1000))
    C = pb.assign("C", A @ B)
    pb.output(C)
    program = pb.build()
    a_name = program.bindings["A"]
    b_name = program.bindings["B"]
    c_name = program.bindings["C"]
    matmul = next(op for op in program.ops if isinstance(op, MatMulOp))
    a = MatrixInstance(a_name, False, Scheme.COL)
    b = MatrixInstance(b_name, False, Scheme.ROW)
    c = MatrixInstance(c_name, False, Scheme.ROW)
    steps = [
        SourceStep(next(o for o in program.ops if o.output == a_name), a),
        SourceStep(next(o for o in program.ops if o.output == b_name), b),
        MatMulStep(matmul, "cpmm", a, b, c),
    ]
    from repro.core.estimator import SizeEstimator

    nbytes = SizeEstimator(program).nbytes(c_name)
    bad = Plan(
        program=program,
        steps=steps,
        outputs={c_name: c},
        predicted_bytes=(context.num_workers - 1) * nbytes,
    )
    return bad, context


def _corrupt_rebroadcast(plan: Plan, context: LintContext):
    """Duplicate an existing broadcast step (paying its ledger cost): the
    same matrix version is replicated twice."""
    index = _find_step(
        plan, lambda s: isinstance(s, ExtendedStep) and s.kind == "broadcast"
    )
    victim = plan.steps[index]
    duplicate = ExtendedStep("broadcast", victim.source, victim.target)
    duplicate.stage = victim.stage
    plan.steps.insert(index + 1, duplicate)
    from repro.lint.facts import build_facts

    plan.predicted_bytes += (context.num_workers - 1) * build_facts(plan).nbytes(
        victim.source.name
    )
    return plan, context


def _corrupt_cache_pins(plan: Plan, context: LintContext):
    """Pin every replica in the plan and declare a budget sized to the
    largest single replica: each replica fits on its own (DM106 silent,
    which requires strictly-over), but the pinned set as a whole cannot."""
    from repro.lint.facts import build_facts

    facts = build_facts(plan)
    replicas = sorted(
        (i for i in facts.producer if i.scheme is Scheme.BROADCAST), key=str
    )
    if len(replicas) < 2:
        raise AssertionError("need >= 2 replicas for an overweight pin set")
    plan.cache_pins = tuple(replicas)
    budget = max(facts.nbytes(i.name) for i in replicas)
    return plan, dataclasses.replace(context, memory_limit_bytes=budget)


def _corrupt_scalar_order(plan: Plan, context: LintContext):
    """Replace the plan outright: a driver scalar's producing aggregate is
    moved *after* its consumer, dropping the ordering edge the stage graph
    would otherwise guarantee (the PR-5 bug class: a pool thread reads
    state before its producer's publish is visible).  Stages are left
    untouched, so the stage-purity rule (which only watches matrix
    availability) stays silent; the dataflow rule ignores scalars too."""
    pb = ProgramBuilder()
    A = pb.random("A", (24, 24))
    s = pb.scalar("s", A.sum())
    pb.output(pb.assign("B", A * s))
    bad = plan_for(pb.build(), context)
    aggregate = _find_step(bad, lambda s: s.scalar_output() is not None)
    scalar_name = bad.steps[aggregate].scalar_output()
    consumer = _find_step(bad, lambda s: scalar_name in s.scalar_inputs())
    assert aggregate < consumer, "planner must order the aggregate first"
    step = bad.steps.pop(aggregate)
    bad.steps.insert(consumer, step)  # lands just after the (shifted) consumer
    return bad, context


def _corrupt_conflicting_publish(plan: Plan, context: LintContext):
    """Replace the plan outright: two cell-wise steps publish *different*
    symbolic values (add vs subtract of the same operands) for one logical
    matrix.  All steps share one stage and one scheme, nothing
    communicates, and the loser of the publish race determines the
    result -- exactly the DM302 defect, invisible to every other rule."""
    from repro.core.plan import CellwiseStep
    from repro.lang.program import CellwiseOp

    pb = ProgramBuilder()
    A = pb.random("A", (8, 8))
    B = pb.random("B", (8, 8))
    pb.output(pb.assign("C", A + B))
    program = pb.build()
    a_name = program.bindings["A"]
    b_name = program.bindings["B"]
    c_name = program.bindings["C"]
    cellwise = next(op for op in program.ops if isinstance(op, CellwiseOp))
    a = MatrixInstance(a_name, False, Scheme.ROW)
    b = MatrixInstance(b_name, False, Scheme.ROW)
    c = MatrixInstance(c_name, False, Scheme.ROW)
    conflicting = dataclasses.replace(cellwise, op="subtract")
    steps = [
        SourceStep(next(o for o in program.ops if o.output == a_name), a),
        SourceStep(next(o for o in program.ops if o.output == b_name), b),
        CellwiseStep(cellwise, a, b, c),
        CellwiseStep(conflicting, a, b, c),
    ]
    bad = Plan(program=program, steps=steps, outputs={c_name: c}, predicted_bytes=0)
    return bad, context


def _corrupt_unfused_chain(plan: Plan, context: LintContext):
    """Replace the plan outright: a two-rung cellwise ladder whose
    intermediate is needlessly published as a program output, so the
    optimizer's fusion pass must leave the chain unfused.  The plan is
    genuinely optimized -- it carries the pipeline's certificates, the
    fusion evidence DM401 gates on -- and the needless publish is the
    defect."""
    from repro.planopt.pipeline import optimize_plan

    pb = ProgramBuilder()
    A = pb.random("A", (16, 16))
    B = pb.random("B", (16, 16))
    C = pb.assign("C", A * B)
    pb.output(C)  # the needless publish that blocks fusion
    pb.output(pb.assign("D", C / B))
    bad = optimize_plan(
        plan_for(pb.build(), context),
        num_workers=context.num_workers,
        estimation_mode=context.estimation_mode,
    )
    return bad, context


CORRUPTIONS: tuple[Corruption, ...] = (
    Corruption("transposed declared dimensions", "DM101", _corrupt_shape),
    Corruption("mutated matmul strategy", "DM102", _corrupt_scheme),
    Corruption("injected wide edge", "DM103", _corrupt_stage),
    Corruption("forged communication total", "DM104", _corrupt_ledger),
    Corruption("oversized block size", "DM105", _corrupt_block_size),
    Corruption("starved memory budget", "DM106", _corrupt_memory_budget),
    Corruption("ghost output instance", "DM107", _corrupt_output),
    Corruption("redundant repartition", "DM201", _corrupt_redundant_partition),
    Corruption("dead transpose", "DM202", _corrupt_dead_operator),
    Corruption("transpose round-trip", "DM203", _corrupt_transpose_pair),
    Corruption("cpmm on a tall-thin product", "DM204", _corrupt_cpmm_choice),
    Corruption("duplicated broadcast", "DM205", _corrupt_rebroadcast),
    Corruption("overweight cache pin set", "DM206", _corrupt_cache_pins),
    Corruption("reordered scalar producer", "DM301", _corrupt_scalar_order),
    Corruption("conflicting double publish", "DM302", _corrupt_conflicting_publish),
    Corruption("needlessly published intermediate", "DM401", _corrupt_unfused_chain),
)

assert {c.rule for c in CORRUPTIONS} == set(RULES), "every rule needs a corruption"


def run_selftest(context: LintContext | None = None) -> list[SelftestResult]:
    """Corrupt a fresh reference plan once per rule; each lint must report
    exactly the expected rule.  The first entry is the clean baseline."""
    context = context or LintContext()
    results = []

    clean_report = lint_plan(reference_program_plan(context), context)
    results.append(
        SelftestResult(
            corruption="(clean reference plan)",
            expected_rule="-",
            fired_rules=tuple(sorted(clean_report.rule_ids())),
            passed=len(clean_report) == 0,
            report=clean_report,
        )
    )

    for corruption in CORRUPTIONS:
        plan = reference_program_plan(context)
        bad_plan, bad_context = corruption.apply(plan, context)
        report = lint_plan(bad_plan, bad_context)
        fired = report.rule_ids()
        results.append(
            SelftestResult(
                corruption=corruption.name,
                expected_rule=corruption.rule,
                fired_rules=tuple(sorted(fired)),
                passed=fired == {corruption.rule},
                report=report,
            )
        )
    return results


def reference_program_plan(context: LintContext) -> Plan:
    """A fresh clean plan for the reference program (fresh program too, so
    corruptions that mutate declared dimensions stay isolated)."""
    return plan_for(reference_program(), context)


def format_selftest(results: list[SelftestResult]) -> str:
    lines = []
    for result in results:
        status = "ok" if result.passed else "FAIL"
        fired = ", ".join(result.fired_rules) or "(none)"
        lines.append(
            f"[{status}] {result.corruption}: expected {result.expected_rule}, "
            f"fired {fired}"
        )
    failures = sum(1 for r in results if not r.passed)
    lines.append(
        f"{len(results)} checks, {failures} failure(s)"
        if failures
        else f"{len(results)} checks, all rules fire on their corruption"
    )
    return "\n".join(lines)

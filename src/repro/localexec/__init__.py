"""Per-worker local execution engine (paper Section 5.3).

Task queue + thread pool + result-buffer pool, with the In-Place and Buffer
aggregation strategies for block matrix multiplication and model-byte memory
metering.
"""

from repro.localexec.engine import EngineStats, Grid, LocalEngine
from repro.localexec.pool import MemoryTracker, ResultBufferPool
from repro.localexec.tasks import (
    BlockKey,
    BlockTask,
    MultiplyAccumulateTask,
    MultiplyTask,
    TaskResult,
    buffered_matmul_tasks,
    inplace_matmul_tasks,
)

__all__ = [
    "BlockKey",
    "BlockTask",
    "EngineStats",
    "Grid",
    "LocalEngine",
    "MemoryTracker",
    "MultiplyAccumulateTask",
    "MultiplyTask",
    "ResultBufferPool",
    "TaskResult",
    "buffered_matmul_tasks",
    "inplace_matmul_tasks",
]

"""The per-worker block execution engine (paper Section 5.3, Figure 4).

Each worker turns a grid-level operation into independent per-block tasks,
pushes them through a thread pool, and meters flops and (model) memory.
Two aggregation strategies are provided for block matrix multiplication:

* ``inplace=True`` -- the paper's **In-Place** strategy.  One task per
  result block; every partial product is folded straight into a pooled
  result block, so at any instant only the transient partial of each
  *active* task exists.
* ``inplace=False`` -- the traditional **Buffer** strategy.  One task per
  partial product; all ``M_A x N_A x N_B`` partial blocks are buffered and
  aggregated at the end, which is what makes its peak memory blow up on
  dense-ish intermediates (Figure 7).

Memory is metered with the paper's byte model (Equation 2) through a
:class:`~repro.localexec.pool.MemoryTracker`.  Input grids are charged via
:meth:`LocalEngine.register_grid`; operation outputs stay charged until the
caller invokes :meth:`LocalEngine.release_grid`.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Mapping

from repro.blocks import ops
from repro.blocks.dense import DenseBlock
from repro.blocks.ops import Block
from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError
from repro.localexec.pool import MemoryTracker, ResultBufferPool
from repro.localexec.tasks import (
    BlockKey,
    BlockTask,
    MultiplyAccumulateTask,
    MultiplyTask,
    TaskResult,
    buffered_matmul_tasks,
    inplace_matmul_tasks,
)
from repro.runtime.metering import active_meter
from repro.trace.emit import active_tracer, current_stage

Grid = dict[BlockKey, Block]


@dataclasses.dataclass
class EngineStats:
    """Counters accumulated across all operations run by one engine.

    Internally locked: primitives and block tasks report from arbitrary
    threads (the engine's own pool, and concurrently running stages).  Each
    ``record`` also notifies the active
    :class:`~repro.runtime.metering.StageMeter`, if one is installed, so
    the stage scheduler can attribute flops to the stage that caused them.
    """

    tasks: int = 0
    flops: int = 0
    sparse_flops: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, flops: int, sparse: bool) -> None:
        with self._lock:
            self.flops += flops
            if sparse:
                self.sparse_flops += flops
        meter = active_meter()
        if meter is not None:
            meter.record_flops(self, flops, sparse)

    def add_tasks(self, count: int) -> None:
        with self._lock:
            self.tasks += count

    @property
    def dense_flops(self) -> int:
        return self.flops - self.sparse_flops


class LocalEngine:
    """Block-parallel executor for one worker node."""

    def __init__(
        self,
        threads: int = 1,
        inplace: bool = True,
        memory_limit_bytes: int | None = None,
        pool_max_per_shape: int = 16,
    ) -> None:
        if threads < 1:
            raise BlockError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.inplace = inplace
        self.tracker = MemoryTracker(memory_limit_bytes)
        self.pool = ResultBufferPool(self.tracker, pool_max_per_shape)
        self.stats = EngineStats()

    # -- memory bookkeeping --------------------------------------------------

    def register_grid(self, grid: Mapping[BlockKey, Block]) -> None:
        """Charge an input grid to this worker's memory."""
        self.tracker.allocate(sum(block.model_nbytes for block in grid.values()))

    def release_grid(self, grid: Mapping[BlockKey, Block]) -> None:
        """Discharge a grid previously charged (input or returned result)."""
        self.tracker.release(sum(block.model_nbytes for block in grid.values()))

    # -- grid operations -------------------------------------------------------

    def matmul_grids(self, a_grid: Grid, b_grid: Grid) -> Grid:
        """Block product of two local grids: ``C[i,j] = sum_k A[i,k] @ B[k,j]``.

        Only inner indices present in both grids contribute (absent blocks
        are all-zero).  Aggregation strategy is In-Place or Buffer per the
        engine configuration.
        """
        if self.inplace:
            tasks = inplace_matmul_tasks(a_grid, b_grid)
            results = self._run(tasks, self._run_inplace_task)
            return {r.result_key: r.block for r in results}
        return self._buffered_matmul(a_grid, b_grid)

    def cellwise_grids(self, op: str, a_grid: Grid, b_grid: Grid) -> Grid:
        """Cell-wise binary operation over two aligned grids.

        Key policy mirrors zero-block semantics: ``multiply`` intersects the
        key sets (zero times anything is zero), ``add``/``subtract`` union
        them, ``divide`` iterates the numerator's keys and requires the
        denominator block to be present.
        """
        tasks = list(self._cellwise_tasks(op, a_grid, b_grid))
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def scalar_grids(self, op: str, grid: Grid, scalar: float) -> Grid:
        """Apply ``block <op> scalar`` to every block of a grid."""
        tasks = [
            BlockTask(key, self._bind_scalar(op, block, scalar))
            for key, block in sorted(grid.items())
        ]
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def transpose_grid(self, grid: Grid) -> Grid:
        """Locally transpose a grid: block ``(i, j)`` becomes ``(j, i)``
        transposed.  No communication is involved (paper Section 4.2.1)."""
        tasks = [
            BlockTask((j, i), self._bind_transpose(block))
            for (i, j), block in sorted(grid.items())
        ]
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def sum_grid(self, grid: Grid) -> float:
        """Sum of all entries across the grid's blocks."""
        return sum(ops.block_sum(block) for block in grid.values())

    def sq_sum_grid(self, grid: Grid) -> float:
        """Sum of squared entries across the grid's blocks."""
        return sum(ops.block_sq_sum(block) for block in grid.values())

    # -- task plumbing ---------------------------------------------------------

    def _run(
        self,
        tasks: Iterable,
        runner: Callable,
    ) -> list[TaskResult]:
        tasks = list(tasks)
        self.stats.add_tasks(len(tasks))
        runner = _traced(runner)
        if self.threads == 1 or len(tasks) <= 1:
            return [runner(task) for task in tasks]
        with ThreadPoolExecutor(max_workers=self.threads) as executor:
            return _map_in_copied_contexts(executor, runner, tasks)

    def _run_inplace_task(self, task: MultiplyAccumulateTask) -> TaskResult:
        target = self.pool.acquire(*task.result_shape)
        for left, right in task.pairs:
            flops = ops.matmul_flops(left, right)
            partial = ops.matmul(left, right)
            # The transient partial exists only while it is being folded in.
            self.tracker.allocate(partial.model_nbytes)
            ops.accumulate(target, partial)
            self.tracker.release(partial.model_nbytes)
            self._record(flops, left.is_sparse or right.is_sparse)
        return TaskResult(task.result_key, target, pooled=True)

    def _buffered_matmul(self, a_grid: Grid, b_grid: Grid) -> Grid:
        tasks = buffered_matmul_tasks(a_grid, b_grid)
        self.stats.add_tasks(len(tasks))

        def multiply(task: MultiplyTask) -> tuple[BlockKey, DenseBlock]:
            flops = ops.matmul_flops(task.left, task.right)
            partial = ops.matmul(task.left, task.right)
            self.tracker.allocate(partial.model_nbytes)
            self._record(flops, task.left.is_sparse or task.right.is_sparse)
            return task.result_key, partial

        multiply = _traced(multiply)
        if self.threads == 1 or len(tasks) <= 1:
            partials = [multiply(task) for task in tasks]
        else:
            with ThreadPoolExecutor(max_workers=self.threads) as executor:
                partials = _map_in_copied_contexts(executor, multiply, tasks)

        # All partials are alive here -- this is the Buffer strategy's peak.
        grouped: dict[BlockKey, list[DenseBlock]] = {}
        for key, partial in partials:
            grouped.setdefault(key, []).append(partial)
        result: Grid = {}
        for key, blocks in sorted(grouped.items()):
            target = self.pool.acquire(*blocks[0].shape)
            for partial in blocks:
                ops.accumulate(target, partial)
                self._record(partial.shape[0] * partial.shape[1], sparse=False)
            result[key] = target
        for __, partial in partials:
            self.tracker.release(partial.model_nbytes)
        return result

    def _cellwise_tasks(self, op: str, a_grid: Grid, b_grid: Grid):
        if op not in ops.CELLWISE_OPS:
            raise BlockError(f"unknown cell-wise operator {op!r}")
        if op == "multiply":
            keys = sorted(set(a_grid) & set(b_grid))
        elif op == "divide":
            keys = sorted(a_grid)
            missing = [key for key in keys if key not in b_grid]
            if missing:
                raise BlockError(
                    f"cell-wise divide: denominator grid lacks blocks {missing[:3]}"
                )
        else:
            keys = sorted(set(a_grid) | set(b_grid))
        for key in keys:
            yield BlockTask(key, self._bind_cellwise(op, a_grid.get(key), b_grid.get(key)))

    def _bind_cellwise(self, op: str, left: Block | None, right: Block | None):
        def compute() -> Block:
            if left is None:
                assert right is not None
                result = right.copy() if op == "add" else ops.scalar_op("multiply", right, -1.0)
            elif right is None:
                result = left.copy()
            else:
                result = ops.cellwise(op, left, right)
            self._record(
                ops.cellwise_flops(left or right, right or left),
                (left is not None and left.is_sparse)
                or (right is not None and right.is_sparse),
            )
            return result

        return compute

    def _bind_scalar(self, op: str, block: Block, scalar: float):
        def compute() -> Block:
            result = ops.scalar_op(op, block, scalar)
            self._record(
                block.nnz if isinstance(block, CSCBlock) else block.shape[0] * block.shape[1],
                block.is_sparse,
            )
            return result

        return compute

    def _bind_transpose(self, block: Block):
        def compute() -> Block:
            return ops.transpose(block)

        return compute

    def _run_block_task(self, task: BlockTask) -> TaskResult:
        return TaskResult(task.result_key, task.compute())

    def _collect_allocated(self, results: list[TaskResult]) -> Grid:
        grid: Grid = {}
        for result in results:
            self.tracker.allocate(result.block.model_nbytes)
            grid[result.result_key] = result.block
        return grid

    def _record(self, flops: int, sparse: bool) -> None:
        self.stats.record(flops, sparse)


def _map_in_copied_contexts(
    executor: ThreadPoolExecutor, runner: Callable, tasks: list
) -> list:
    """``executor.map(runner, tasks)``, with each task run under a fresh
    copy of the submitting thread's :mod:`contextvars` context.

    Context variables do not propagate into :class:`ThreadPoolExecutor`
    workers by default, so without this the pool threads would lose the
    submitting stage's entire execution context: its
    :class:`~repro.runtime.metering.StageMeter`, the
    :class:`~repro.rdd.ledger.CommunicationLedger` scope stack (block
    tasks used to record transfers under an *empty* scope), and the
    tracer's stage position.  Each task gets its own copy because a single
    ``Context`` object cannot be entered by two threads at once.
    """
    contexts = [contextvars.copy_context() for _ in tasks]
    futures = [
        executor.submit(context.run, runner, task)
        for context, task in zip(contexts, tasks)
    ]
    return [future.result() for future in futures]


def _traced(runner: Callable) -> Callable:
    """Wrap a task runner in a block-task span when a tracer is active
    (the common no-tracer case returns ``runner`` untouched)."""
    tracer = active_tracer()
    if tracer is None:
        return runner

    def run(task):
        stage = current_stage()
        attrs = {"node": stage[0], "stage": stage[1]} if stage is not None else {}
        with tracer.span("block-task", type(task).__name__, **attrs):
            return runner(task)

    return run

"""The per-worker block execution engine (paper Section 5.3, Figure 4).

Each worker turns a grid-level operation into independent per-block tasks,
pushes them through a thread pool, and meters flops and (model) memory.
Two aggregation strategies are provided for block matrix multiplication:

* ``inplace=True`` -- the paper's **In-Place** strategy.  One task per
  result block; every partial product is folded straight into a pooled
  result block, so at any instant only the transient partial of each
  *active* task exists.
* ``inplace=False`` -- the traditional **Buffer** strategy.  One task per
  partial product; all ``M_A x N_A x N_B`` partial blocks are buffered and
  aggregated at the end, which is what makes its peak memory blow up on
  dense-ish intermediates (Figure 7).

Memory is metered with the paper's byte model (Equation 2) through a
:class:`~repro.localexec.pool.MemoryTracker`.  Input grids are charged via
:meth:`LocalEngine.register_grid`; operation outputs stay charged until the
caller invokes :meth:`LocalEngine.release_grid`.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.blocks import ops
from repro.blocks.dense import DenseBlock
from repro.blocks.ops import Block
from repro.blocks.sparse import CSCBlock
from repro.errors import BlockError
from repro.kernels import batch as kernel_batch
from repro.kernels import fused as kernel_fused
from repro.kernels.strassen import recursion_base, strassen_matmul
from repro.localexec.pool import MemoryTracker, ResultBufferPool
from repro.localexec.tasks import (
    BlockKey,
    BlockTask,
    MultiplyAccumulateTask,
    MultiplyTask,
    TaskResult,
    buffered_matmul_tasks,
    inplace_matmul_tasks,
)
from repro.runtime.metering import active_meter
from repro.trace.emit import active_tracer, current_stage

Grid = dict[BlockKey, Block]


@dataclasses.dataclass
class EngineStats:
    """Counters accumulated across all operations run by one engine.

    Internally locked: primitives and block tasks report from arbitrary
    threads (the engine's own pool, and concurrently running stages).  Each
    ``record`` also notifies the active
    :class:`~repro.runtime.metering.StageMeter`, if one is installed, so
    the stage scheduler can attribute flops to the stage that caused them.
    """

    tasks: int = 0
    flops: int = 0
    sparse_flops: int = 0
    #: Block pairs dispatched through the batched BLAS path (a subset of
    #: the pairs behind ``tasks``); the observable that batching engaged.
    batched_pairs: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, flops: int, sparse: bool) -> None:
        with self._lock:
            self.flops += flops
            if sparse:
                self.sparse_flops += flops
        meter = active_meter()
        if meter is not None:
            meter.record_flops(self, flops, sparse)

    def add_tasks(self, count: int) -> None:
        with self._lock:
            self.tasks += count

    def add_batched_pairs(self, count: int) -> None:
        with self._lock:
            self.batched_pairs += count

    @property
    def dense_flops(self) -> int:
        return self.flops - self.sparse_flops


class LocalEngine:
    """Block-parallel executor for one worker node."""

    def __init__(
        self,
        threads: int = 1,
        inplace: bool = True,
        memory_limit_bytes: int | None = None,
        pool_max_per_shape: int = 16,
        batched_matmul: bool = True,
        strassen: bool = False,
        strassen_min_size: int = 128,
    ) -> None:
        if threads < 1:
            raise BlockError(f"threads must be >= 1, got {threads}")
        if strassen_min_size < 2:
            raise BlockError(
                f"strassen_min_size must be >= 2, got {strassen_min_size}"
            )
        self.threads = threads
        self.inplace = inplace
        self.batched_matmul = batched_matmul
        self.strassen = strassen
        self.strassen_min_size = strassen_min_size
        self._strassen_base = recursion_base(strassen_min_size)
        self._stack_cache = kernel_batch.StackBufferCache()
        self.tracker = MemoryTracker(memory_limit_bytes)
        self.pool = ResultBufferPool(self.tracker, pool_max_per_shape)
        self.stats = EngineStats()

    # -- memory bookkeeping --------------------------------------------------

    def register_grid(self, grid: Mapping[BlockKey, Block]) -> None:
        """Charge an input grid to this worker's memory."""
        self.tracker.allocate(sum(block.model_nbytes for block in grid.values()))

    def release_grid(self, grid: Mapping[BlockKey, Block]) -> None:
        """Discharge a grid previously charged (input or returned result)."""
        self.tracker.release(sum(block.model_nbytes for block in grid.values()))

    # -- grid operations -------------------------------------------------------

    def matmul_grids(self, a_grid: Grid, b_grid: Grid) -> Grid:
        """Block product of two local grids: ``C[i,j] = sum_k A[i,k] @ B[k,j]``.

        Only inner indices present in both grids contribute (absent blocks
        are all-zero).  Aggregation strategy is In-Place or Buffer per the
        engine configuration.
        """
        if self.inplace:
            batch_plan = self._grid_batch_plan(a_grid, b_grid)
            if batch_plan is not None:
                results = self._run_grid_batched(a_grid, b_grid, batch_plan)
            else:
                tasks = inplace_matmul_tasks(a_grid, b_grid)
                results = self._run(tasks, self._run_inplace_task)
            return {r.result_key: r.block for r in results}
        return self._buffered_matmul(a_grid, b_grid)

    def fused_cellwise_grids(
        self, chain: kernel_fused.FusedChain, grids: tuple[Grid, ...]
    ) -> Grid:
        """Run a fused cellwise chain as one composed kernel per block key.

        Block-key sets of every chain value are derived symbolically first
        (raising the same divide-coverage error the step-by-step execution
        would), then one task per *final* key composes the whole chain with
        :func:`repro.kernels.fused.compose_key`.  No intermediate grid is
        registered or published.
        """
        key_sets = kernel_fused.chain_key_sets(
            chain, tuple(frozenset(grid) for grid in grids)
        )
        tasks = [
            BlockTask(key, self._bind_fused(chain, key, grids))
            for key in sorted(key_sets[-1])
        ]
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def cellwise_grids(self, op: str, a_grid: Grid, b_grid: Grid) -> Grid:
        """Cell-wise binary operation over two aligned grids.

        Key policy mirrors zero-block semantics: ``multiply`` intersects the
        key sets (zero times anything is zero), ``add``/``subtract`` union
        them, ``divide`` iterates the numerator's keys and requires the
        denominator block to be present.
        """
        tasks = list(self._cellwise_tasks(op, a_grid, b_grid))
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def scalar_grids(self, op: str, grid: Grid, scalar: float) -> Grid:
        """Apply ``block <op> scalar`` to every block of a grid."""
        tasks = [
            BlockTask(key, self._bind_scalar(op, block, scalar))
            for key, block in sorted(grid.items())
        ]
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def transpose_grid(self, grid: Grid) -> Grid:
        """Locally transpose a grid: block ``(i, j)`` becomes ``(j, i)``
        transposed.  No communication is involved (paper Section 4.2.1)."""
        tasks = [
            BlockTask((j, i), self._bind_transpose(block))
            for (i, j), block in sorted(grid.items())
        ]
        results = self._run(tasks, self._run_block_task)
        return self._collect_allocated(results)

    def sum_grid(self, grid: Grid) -> float:
        """Sum of all entries across the grid's blocks."""
        return sum(ops.block_sum(block) for block in grid.values())

    def sq_sum_grid(self, grid: Grid) -> float:
        """Sum of squared entries across the grid's blocks."""
        return sum(ops.block_sq_sum(block) for block in grid.values())

    # -- task plumbing ---------------------------------------------------------

    def _run(
        self,
        tasks: Iterable,
        runner: Callable,
    ) -> list[TaskResult]:
        tasks = list(tasks)
        self.stats.add_tasks(len(tasks))
        runner = _traced(runner)
        if self.threads == 1 or len(tasks) <= 1:
            return [runner(task) for task in tasks]
        with ThreadPoolExecutor(max_workers=self.threads) as executor:
            return _map_in_copied_contexts(executor, runner, tasks)

    def _run_inplace_task(self, task: MultiplyAccumulateTask) -> TaskResult:
        target = self.pool.acquire(*task.result_shape)
        for left, right in task.pairs:
            flops, partial = self._pair_product(left, right)
            # The transient partial exists only while it is being folded in.
            self.tracker.allocate(partial.model_nbytes)
            ops.accumulate(target, partial)
            self.tracker.release(partial.model_nbytes)
            self._record(flops, left.is_sparse or right.is_sparse)
        return TaskResult(task.result_key, target, pooled=True)

    def _pair_product(self, left: Block, right: Block) -> tuple[int, DenseBlock]:
        """One block product, via the priced local matmul strategy."""
        strategy = self._strassen_strategy(left, right)
        if strategy is not None:
            data = strassen_matmul(left.data, right.data, self._strassen_base)
            return strategy.flops, DenseBlock(data)
        return ops.matmul_flops(left, right), ops.matmul(left, right)

    def _strassen_strategy(self, left: Block, right: Block):
        """The priced :class:`~repro.core.strategies.LocalMatmulStrategy`
        for this pair if it is Strassen, or ``None`` for naive."""
        if not self.strassen or left.is_sparse or right.is_sparse:
            return None
        # Imported here: core.strategies pulls in the scheme/partitioner
        # stack, which imports this module back at package init.
        from repro.core.strategies import choose_local_matmul

        chosen = choose_local_matmul(
            left.shape[0],
            left.shape[1],
            right.shape[1],
            strassen=True,
            crossover=self.strassen_min_size,
        )
        return chosen if chosen.name == "strassen" else None

    def _grid_batch_plan(
        self, a_grid: Grid, b_grid: Grid
    ) -> kernel_batch.GridProductPlan | None:
        # Under a memory limit the serial path's exact transient accounting
        # is the experiment being run (Figures 7/8), so batching is off.
        # Strassen outprices the naive dgemm only above its crossover,
        # which always exceeds BATCH_MAX_DIM, so the two never compete.
        if not self.batched_matmul or self.tracker.limit_bytes is not None:
            return None
        return kernel_batch.plan_grid_product(a_grid, b_grid)

    def _run_grid_batched(
        self, a_grid: Grid, b_grid: Grid, plan: kernel_batch.GridProductPlan
    ) -> list[TaskResult]:
        """In-Place aggregation with stage-level batched BLAS dispatch.

        The stage is a regular grid product (per ``plan``), so each
        distinct block is copied into a warm stacking buffer exactly once
        and every ascending-``k`` level runs as one broadcast
        ``np.matmul`` -- the same per-slice dgemm the serial path calls --
        folded into the accumulator plane with plain elementwise adds.
        Per-element that is the exact float sequence of the serial fold
        (zeroed target, ``+=`` partial in ascending ``k``), so results are
        byte-identical.  Block rows are slabbed across the engine's
        threads.

        The warm stacking buffers live *outside* the paper's byte model:
        the model (and :mod:`repro.verify.memory`'s predictions) meters
        the aggregation strategy's block buffers, and every model-memory
        experiment runs under a limit, where batching is off.  Charging
        the cache here would make measured peaks diverge from the
        predictor for a pure wall-clock detail.
        """
        rows, inner, cols = plan.rows, plan.inner, plan.cols
        num_rows, depth, num_cols = len(rows), len(inner), len(cols)
        m, k, n = plan.m, plan.k, plan.n
        self.stats.add_tasks(plan.tasks)
        self.stats.add_batched_pairs(plan.pairs)

        cache = self._stack_cache
        a_base = cache.checkout(num_rows * depth, (m, k))
        b_base = cache.checkout(depth * num_cols, (k, n))
        acc_base = cache.checkout(num_rows * num_cols, (m, n))
        a_stack = a_base[: num_rows * depth].reshape(num_rows, depth, m, k)
        b_stack = b_base[: depth * num_cols].reshape(depth, num_cols, k, n)
        acc = acc_base[: num_rows * num_cols].reshape(num_rows, num_cols, m, n)
        try:
            for ri, i in enumerate(rows):
                for ti, key in enumerate(inner):
                    a_stack[ri, ti] = a_grid[i, key].data
            for ti, key in enumerate(inner):
                for cj, j in enumerate(cols):
                    b_stack[ti, cj] = b_grid[key, j].data

            def run_slab(slab: tuple[int, int]) -> list[TaskResult]:
                start, stop = slab
                span = stop - start
                prod_base = cache.checkout(span * num_cols, (m, n))
                prod = prod_base[: span * num_cols].reshape(
                    span, num_cols, m, n
                )
                acc_slab = acc[start:stop]
                acc_slab[...] = 0.0
                for level in range(depth):
                    np.matmul(
                        a_stack[start:stop, level][:, None],
                        b_stack[level],
                        out=prod,
                    )
                    np.add(acc_slab, prod, out=acc_slab)
                results: list[TaskResult] = []
                for ri in range(start, stop):
                    for cj in range(num_cols):
                        target = self.pool.acquire(m, n)
                        np.copyto(target.data, acc[ri, cj])
                        self._record(plan.flops_per_task, False)
                        results.append(
                            TaskResult((rows[ri], cols[cj]), target, pooled=True)
                        )
                cache.checkin(prod_base)
                return results

            slabs = _row_slabs(num_rows, self.threads)
            run_slab = _traced(run_slab)
            if len(slabs) == 1:
                return run_slab(slabs[0])
            with ThreadPoolExecutor(max_workers=self.threads) as executor:
                chunked = _map_in_copied_contexts(executor, run_slab, slabs)
            return [result for chunk in chunked for result in chunk]
        finally:
            cache.checkin(a_base, b_base, acc_base)

    def _buffered_matmul(self, a_grid: Grid, b_grid: Grid) -> Grid:
        tasks = buffered_matmul_tasks(a_grid, b_grid)
        self.stats.add_tasks(len(tasks))

        def multiply(task: MultiplyTask) -> tuple[BlockKey, DenseBlock]:
            flops, partial = self._pair_product(task.left, task.right)
            self.tracker.allocate(partial.model_nbytes)
            self._record(flops, task.left.is_sparse or task.right.is_sparse)
            return task.result_key, partial

        multiply = _traced(multiply)
        if self.threads == 1 or len(tasks) <= 1:
            partials = [multiply(task) for task in tasks]
        else:
            with ThreadPoolExecutor(max_workers=self.threads) as executor:
                partials = _map_in_copied_contexts(executor, multiply, tasks)

        # All partials are alive here -- this is the Buffer strategy's peak.
        grouped: dict[BlockKey, list[DenseBlock]] = {}
        for key, partial in partials:
            grouped.setdefault(key, []).append(partial)
        result: Grid = {}
        for key, blocks in sorted(grouped.items()):
            target = self.pool.acquire(*blocks[0].shape)
            for partial in blocks:
                ops.accumulate(target, partial)
                self._record(partial.shape[0] * partial.shape[1], sparse=False)
            result[key] = target
        for __, partial in partials:
            self.tracker.release(partial.model_nbytes)
        return result

    def _cellwise_tasks(self, op: str, a_grid: Grid, b_grid: Grid):
        if op not in ops.CELLWISE_OPS:
            raise BlockError(f"unknown cell-wise operator {op!r}")
        if op == "multiply":
            keys = sorted(set(a_grid) & set(b_grid))
        elif op == "divide":
            keys = sorted(a_grid)
            missing = [key for key in keys if key not in b_grid]
            if missing:
                raise BlockError(
                    f"cell-wise divide: denominator grid lacks blocks {missing[:3]}"
                )
        else:
            keys = sorted(set(a_grid) | set(b_grid))
        for key in keys:
            yield BlockTask(key, self._bind_cellwise(op, a_grid.get(key), b_grid.get(key)))

    def _bind_cellwise(self, op: str, left: Block | None, right: Block | None):
        def compute() -> Block:
            if left is None:
                assert right is not None
                result = right.copy() if op == "add" else ops.scalar_op("multiply", right, -1.0)
            elif right is None:
                result = left.copy()
            else:
                result = ops.cellwise(op, left, right)
            self._record(
                ops.cellwise_flops(left or right, right or left),
                (left is not None and left.is_sparse)
                or (right is not None and right.is_sparse),
            )
            return result

        return compute

    def _bind_fused(
        self, chain: kernel_fused.FusedChain, key: BlockKey, grids: tuple[Grid, ...]
    ):
        def compute() -> Block:
            block = kernel_fused.compose_key(chain, key, grids, self._record)
            # Keys come from the final key set, where a block always exists.
            assert block is not None
            return block

        return compute

    def _bind_scalar(self, op: str, block: Block, scalar: float):
        def compute() -> Block:
            result = ops.scalar_op(op, block, scalar)
            self._record(
                block.nnz if isinstance(block, CSCBlock) else block.shape[0] * block.shape[1],
                block.is_sparse,
            )
            return result

        return compute

    def _bind_transpose(self, block: Block):
        def compute() -> Block:
            return ops.transpose(block)

        return compute

    def _run_block_task(self, task: BlockTask) -> TaskResult:
        return TaskResult(task.result_key, task.compute())

    def _collect_allocated(self, results: list[TaskResult]) -> Grid:
        grid: Grid = {}
        for result in results:
            self.tracker.allocate(result.block.model_nbytes)
            grid[result.result_key] = result.block
        return grid

    def _record(self, flops: int, sparse: bool) -> None:
        self.stats.record(flops, sparse)


def _row_slabs(num_rows: int, threads: int) -> list[tuple[int, int]]:
    """Split ``range(num_rows)`` into at most ``threads`` contiguous
    near-equal ``(start, stop)`` slabs."""
    count = max(1, min(threads, num_rows))
    bounds = [round(num_rows * part / count) for part in range(count + 1)]
    return [
        (start, stop)
        for start, stop in zip(bounds, bounds[1:])
        if stop > start
    ]


def _map_in_copied_contexts(
    executor: ThreadPoolExecutor, runner: Callable, tasks: list
) -> list:
    """``executor.map(runner, tasks)``, with each task run under a fresh
    copy of the submitting thread's :mod:`contextvars` context.

    Context variables do not propagate into :class:`ThreadPoolExecutor`
    workers by default, so without this the pool threads would lose the
    submitting stage's entire execution context: its
    :class:`~repro.runtime.metering.StageMeter`, the
    :class:`~repro.rdd.ledger.CommunicationLedger` scope stack (block
    tasks used to record transfers under an *empty* scope), and the
    tracer's stage position.  Each task gets its own copy because a single
    ``Context`` object cannot be entered by two threads at once.
    """
    contexts = [contextvars.copy_context() for _ in tasks]
    futures = [
        executor.submit(context.run, runner, task)
        for context, task in zip(contexts, tasks)
    ]
    return [future.result() for future in futures]


def _traced(runner: Callable) -> Callable:
    """Wrap a task runner in a block-task span when a tracer is active
    (the common no-tracer case returns ``runner`` untouched)."""
    tracer = active_tracer()
    if tracer is None:
        return runner

    def run(task):
        stage = current_stage()
        attrs = {"node": stage[0], "stage": stage[1]} if stage is not None else {}
        with tracer.span("block-task", type(task).__name__, **attrs):
            return runner(task)

    return run

"""Memory tracking and the result-buffer pool (paper Section 5.3, Figure 4).

The paper's local engine reuses inter-thread memory through a *result buffer
pool*: a task acquires a clean result block at start and returns it to the
pool when its output has been emitted.  :class:`MemoryTracker` meters every
allocation against the paper's byte model so the In-Place-vs-Buffer memory
experiment (Figure 7) and the block-size experiment (Figure 8b) can be
reproduced; it optionally enforces a budget, which reproduces the paper's
observation that the Buffer strategy cannot complete the Wikipedia workload
within 48 GB per node.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.blocks.dense import DenseBlock
from repro.errors import MemoryLimitExceeded


class MemoryTracker:
    """Thread-safe current/peak byte counter with an optional hard limit."""

    def __init__(self, limit_bytes: int | None = None) -> None:
        self._lock = threading.Lock()
        self._limit = limit_bytes
        self._current = 0
        self._peak = 0

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current

    @property
    def peak_bytes(self) -> int:
        with self._lock:
            return self._peak

    @property
    def limit_bytes(self) -> int | None:
        return self._limit

    def allocate(self, nbytes: int) -> None:
        """Record an allocation; raises :class:`MemoryLimitExceeded` when the
        budget would be exceeded (the allocation is not recorded then)."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {nbytes}")
        with self._lock:
            new_current = self._current + nbytes
            if self._limit is not None and new_current > self._limit:
                raise MemoryLimitExceeded(
                    f"allocation of {nbytes} B exceeds limit "
                    f"({new_current} > {self._limit} B)"
                )
            self._current = new_current
            self._peak = max(self._peak, new_current)

    def release(self, nbytes: int) -> None:
        """Record a deallocation."""
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes: {nbytes}")
        with self._lock:
            self._current = max(0, self._current - nbytes)

    def reset_peak(self) -> None:
        """Reset the peak to the current level (between experiment phases)."""
        with self._lock:
            self._peak = self._current


class ResultBufferPool:
    """A pool of reusable zeroed dense result blocks, keyed by shape.

    The pool keeps at most ``max_per_shape`` free blocks per shape.  Pooled
    blocks stay charged to the tracker while cached (they still occupy
    memory); blocks evicted beyond the cap are released.
    """

    def __init__(self, tracker: MemoryTracker, max_per_shape: int = 16) -> None:
        if max_per_shape < 0:
            raise ValueError(f"max_per_shape must be >= 0, got {max_per_shape}")
        self._tracker = tracker
        self._max_per_shape = max_per_shape
        self._lock = threading.Lock()
        self._free: dict[tuple[int, int], list[DenseBlock]] = defaultdict(list)

    def acquire(self, rows: int, cols: int) -> DenseBlock:
        """Get a clean (all-zero) dense block of the requested shape."""
        with self._lock:
            free = self._free.get((rows, cols))
            if free:
                block = free.pop()
                block.data[:] = 0.0
                return block
        block = DenseBlock.zeros(rows, cols)
        self._tracker.allocate(block.model_nbytes)
        return block

    def release(self, block: DenseBlock) -> None:
        """Return a block to the pool (or free it past the per-shape cap)."""
        with self._lock:
            free = self._free[block.shape]
            if len(free) < self._max_per_shape:
                free.append(block)
                return
        self._tracker.release(block.model_nbytes)

    def drain(self) -> None:
        """Free every pooled block and release its memory charge."""
        with self._lock:
            pooled = [b for blocks in self._free.values() for b in blocks]
            self._free.clear()
        for block in pooled:
            self._tracker.release(block.model_nbytes)

    @property
    def cached_blocks(self) -> int:
        with self._lock:
            return sum(len(blocks) for blocks in self._free.values())

"""Task objects for the local block engine (paper Section 5.3, Figure 4).

A *task* packages the metadata of operations that can run independently and
produce exactly one result block.  The two matmul aggregation strategies of
the paper differ only in how tasks are cut:

* **In-Place** -- one :class:`MultiplyAccumulateTask` per *result* block; all
  ``A[i,k] @ B[k,j]`` partial products contributing to result ``(i, j)`` are
  folded into a single pooled block, so no intermediate buffer exists.
* **Buffer** -- one :class:`MultiplyTask` per *partial* product; every
  ``A[i,k] @ B[k,j]`` is materialised, buffered, and aggregated at the end.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.blocks.ops import Block

BlockKey = tuple[int, int]


@dataclasses.dataclass(frozen=True)
class MultiplyAccumulateTask:
    """In-Place task: all partial products of one result block."""

    result_key: BlockKey
    result_shape: tuple[int, int]
    pairs: tuple[tuple[Block, Block], ...]


@dataclasses.dataclass(frozen=True)
class MultiplyTask:
    """Buffer task: a single block multiplication ``left @ right``."""

    result_key: BlockKey
    left: Block
    right: Block


@dataclasses.dataclass(frozen=True)
class BlockTask:
    """Generic per-block task: apply ``compute`` to produce one result block.

    Used for cell-wise, scalar and transpose grid operations where each
    result block depends on a fixed set of input blocks and no aggregation
    is involved.
    """

    result_key: BlockKey
    compute: Callable[[], Block]


@dataclasses.dataclass(frozen=True)
class TaskResult:
    """The output of a completed task."""

    result_key: BlockKey
    block: Block
    pooled: bool = False  # True when the block was drawn from the buffer pool


def inplace_matmul_tasks(
    a_grid: dict[BlockKey, Block],
    b_grid: dict[BlockKey, Block],
) -> list[MultiplyAccumulateTask]:
    """Cut In-Place tasks for the block product of two local grids.

    For every result coordinate ``(i, j)`` with at least one matching inner
    index ``k`` present in both grids, one task carries all its pairs --
    accumulated in ascending ``k`` order, so the float summation order is a
    function of the block coordinates alone, never of grid insertion order
    (partitions arriving from a shuffle and natively produced ones hold the
    same blocks in different record orders).
    """
    by_result: dict[BlockKey, list[tuple[int, Block, Block]]] = {}
    b_by_k: dict[int, list[tuple[int, Block]]] = {}
    for (k, j), block in b_grid.items():
        b_by_k.setdefault(k, []).append((j, block))
    for (i, k), a_block in a_grid.items():
        for j, b_block in b_by_k.get(k, ()):
            by_result.setdefault((i, j), []).append((k, a_block, b_block))
    tasks = []
    for (i, j), triples in sorted(by_result.items()):
        triples.sort(key=lambda triple: triple[0])
        pairs = tuple((a, b) for __, a, b in triples)
        rows = pairs[0][0].shape[0]
        cols = pairs[0][1].shape[1]
        tasks.append(
            MultiplyAccumulateTask((i, j), (rows, cols), pairs)
        )
    return tasks


def buffered_matmul_tasks(
    a_grid: dict[BlockKey, Block],
    b_grid: dict[BlockKey, Block],
) -> list[MultiplyTask]:
    """Cut Buffer tasks: one task per individual block multiplication."""
    b_by_k: dict[int, list[tuple[int, Block]]] = {}
    for (k, j), block in b_grid.items():
        b_by_k.setdefault(k, []).append((j, block))
    tasks = []
    for (i, k), a_block in sorted(a_grid.items()):
        for j, b_block in sorted(b_by_k.get(k, ()), key=lambda item: item[0]):
            tasks.append(MultiplyTask((i, j), a_block, b_block))
    return tasks

"""Distributed matrices: schemes, placement, and physical operators."""

from repro.matrix.distributed import DistributedMatrix
from repro.matrix.primitives import (
    broadcast_matrix,
    cellwise_op,
    col_sums,
    cpmm,
    extract,
    local_transpose,
    matrix_sq_sum,
    matrix_sum,
    repartition,
    rmm1,
    rmm2,
    row_sums,
    scalar_op_matrix,
)
from repro.matrix.schemes import Scheme, contain, equal_b, equal_rc, oppose

__all__ = [
    "DistributedMatrix",
    "Scheme",
    "broadcast_matrix",
    "cellwise_op",
    "col_sums",
    "contain",
    "cpmm",
    "equal_b",
    "equal_rc",
    "extract",
    "local_transpose",
    "matrix_sq_sum",
    "matrix_sum",
    "oppose",
    "repartition",
    "rmm1",
    "rmm2",
    "row_sums",
    "scalar_op_matrix",
]

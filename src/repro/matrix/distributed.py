"""Distributed matrices: a block grid spread over the cluster by a scheme.

A :class:`DistributedMatrix` wraps an RDD of ``((block_row, block_col),
Block)`` records together with the matrix dimensions, the block size, and
the :class:`~repro.matrix.schemes.Scheme` describing where blocks live:

* Row/Column scheme -- each block sits in exactly one partition, determined
  by the scheme's partitioner; partition ``p`` lives on worker ``p % K``.
* Broadcast scheme -- every one of the ``K`` partitions carries the full
  block set (a physical replica per worker).

Blocks that are entirely zero may be absent from the RDD (sparse layers
drop them); assembly treats missing blocks as zero.
"""

from __future__ import annotations

import numpy as np

from repro.blocks import assemble, grid_shape, split
from repro.errors import ShapeError
from repro.localexec.engine import Grid
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.sizeof import model_sizeof

BlockKey = tuple[int, int]


class DistributedMatrix:
    """A matrix partitioned over the simulated cluster."""

    def __init__(
        self,
        context: ClusterContext,
        rdd: RDD,
        rows: int,
        cols: int,
        block_size: int,
        scheme: Scheme,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ShapeError(f"matrix dimensions must be >= 1, got {rows}x{cols}")
        if block_size < 1:
            raise ShapeError(f"block_size must be >= 1, got {block_size}")
        self.context = context
        self.rdd = rdd
        self.rows = rows
        self.cols = cols
        self.block_size = block_size
        self.scheme = scheme

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        context: ClusterContext,
        array: np.ndarray,
        block_size: int,
        scheme: Scheme = Scheme.ROW,
        storage: str = "auto",
    ) -> "DistributedMatrix":
        """Load a driver-side matrix into the cluster.

        Loading into a Row or Column scheme is free (the distributed
        filesystem read is not cluster communication); loading straight into
        Broadcast charges the replication like a broadcast operator would.
        """
        arr = np.asarray(array, dtype=np.float64)
        grid = split(arr, block_size, storage=storage)
        items = [(key, block) for key, block in sorted(grid.items()) if block.nnz > 0]
        rows, cols = arr.shape
        if scheme.is_one_dimensional:
            rdd = context.parallelize(items, scheme.partitioner(context.num_workers))
            return cls(context, rdd, rows, cols, block_size, scheme)
        nbytes = sum(model_sizeof(block) for __, block in items)
        context.transfer("broadcast", (context.num_workers - 1) * nbytes)
        partitions = [list(items) for __ in range(context.num_workers)]
        rdd = RDD(context, partitions, partitioner=None)
        return cls(context, rdd, rows, cols, block_size, Scheme.BROADCAST)

    @classmethod
    def random(
        cls,
        context: ClusterContext,
        rows: int,
        cols: int,
        block_size: int,
        scheme: Scheme = Scheme.ROW,
        seed: int = 0,
    ) -> "DistributedMatrix":
        """A uniform(0, 1) dense random matrix, generated in place (each
        worker draws its own blocks from a key-derived stream), so no
        communication is charged for Row/Column schemes."""
        rng = np.random.default_rng(seed)
        array = rng.random((rows, cols))
        return cls.from_numpy(context, array, block_size, scheme, storage="dense")

    # -- grid geometry -----------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def block_grid_shape(self) -> tuple[int, int]:
        return grid_shape(self.rows, self.cols, self.block_size)

    # -- worker-local views ------------------------------------------------

    def worker_grid(self, worker: int) -> Grid:
        """The blocks physically present on one worker.

        For a Broadcast matrix this is the full block set; for Row/Column it
        is the worker's shard.  Under Broadcast, each worker's replica lives
        in its own partition, so duplicates never mix.
        """
        return dict(self.rdd.worker_partitions(worker))

    def driver_grid(self) -> Grid:
        """One logical copy of all blocks (replicas deduplicated)."""
        if self.scheme is Scheme.BROADCAST:
            return self.worker_grid(0)
        return dict(self.rdd.collect())

    # -- statistics ----------------------------------------------------------

    def nnz(self) -> int:
        """Stored non-zeros of one logical copy."""
        return sum(block.nnz for block in self.driver_grid().values())

    def sparsity(self) -> float:
        return self.nnz() / (self.rows * self.cols)

    def model_nbytes(self) -> int:
        """Bytes of one logical copy under the paper's memory model."""
        return sum(model_sizeof(block) for block in self.driver_grid().values())

    def is_sparse(self) -> bool:
        """True when any stored block is sparse (or blocks were dropped)."""
        grid = self.driver_grid()
        block_rows, block_cols = self.block_grid_shape
        if len(grid) < block_rows * block_cols:
            return True
        return any(block.is_sparse for block in grid.values())

    # -- materialisation ----------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Gather and assemble the full matrix at the driver."""
        return assemble(self.driver_grid(), self.shape, self.block_size)

    def value(self) -> float:
        """The single entry of a 1x1 matrix (paper programs use ``.value``)."""
        if self.shape != (1, 1):
            raise ShapeError(f".value requires a 1x1 matrix, got {self.shape}")
        return float(self.to_numpy()[0, 0])

    def with_scheme_rdd(self, rdd: RDD, scheme: Scheme) -> "DistributedMatrix":
        """A sibling matrix: same geometry, new payload/scheme."""
        return DistributedMatrix(
            self.context, rdd, self.rows, self.cols, self.block_size, scheme
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedMatrix({self.rows}x{self.cols}, block={self.block_size}, "
            f"scheme={self.scheme})"
        )

"""Distributed-matrix persistence: save/load via compressed ``.npz`` files.

The on-disk format is coordinate triples of one logical copy plus the
matrix geometry, so sparse matrices stay small on disk and a saved matrix
can be reloaded into any cluster size, scheme, or block size (the load
re-partitions, mirroring a DFS read -- no cluster traffic is charged, like
:meth:`DistributedMatrix.from_numpy`).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import ReproError
from repro.matrix.distributed import DistributedMatrix
from repro.matrix.schemes import Scheme
from repro.rdd.context import ClusterContext

#: Format marker stored inside every file.
FORMAT_TAG = "repro.distributed-matrix.v1"


def save_matrix(path: str | pathlib.Path, matrix: DistributedMatrix) -> None:
    """Write one logical copy of the matrix to ``path`` (``.npz``)."""
    rows_idx: list[np.ndarray] = []
    cols_idx: list[np.ndarray] = []
    values: list[np.ndarray] = []
    block = matrix.block_size
    for (bi, bj), blk in sorted(matrix.driver_grid().items()):
        dense = blk.to_numpy()
        local_rows, local_cols = np.nonzero(dense)
        rows_idx.append(local_rows + bi * block)
        cols_idx.append(local_cols + bj * block)
        values.append(dense[local_rows, local_cols])
    empty_i = np.empty(0, dtype=np.int64)
    empty_v = np.empty(0, dtype=np.float64)
    np.savez_compressed(
        path,
        format=np.array(FORMAT_TAG),
        shape=np.array(matrix.shape, dtype=np.int64),
        rows=np.concatenate(rows_idx) if rows_idx else empty_i,
        cols=np.concatenate(cols_idx) if cols_idx else empty_i,
        values=np.concatenate(values) if values else empty_v,
    )


def load_matrix(
    context: ClusterContext,
    path: str | pathlib.Path,
    block_size: int,
    scheme: Scheme = Scheme.ROW,
    storage: str = "auto",
) -> DistributedMatrix:
    """Load a matrix previously written by :func:`save_matrix`."""
    path = pathlib.Path(path)
    if not path.exists():
        # numpy appends .npz when saving a bare name; mirror that on load.
        with_suffix = path.with_suffix(path.suffix + ".npz")
        if with_suffix.exists():
            path = with_suffix
        else:
            raise ReproError(f"no matrix file at {path}")
    with np.load(path, allow_pickle=False) as payload:
        if "format" not in payload or str(payload["format"]) != FORMAT_TAG:
            raise ReproError(f"{path} is not a {FORMAT_TAG} file")
        rows, cols = (int(v) for v in payload["shape"])
        array = np.zeros((rows, cols), dtype=np.float64)
        array[payload["rows"], payload["cols"]] = payload["values"]
    return DistributedMatrix.from_numpy(context, array, block_size, scheme, storage)

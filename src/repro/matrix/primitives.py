"""Physical operators over distributed matrices.

These are the *execution-level* operations DMac's plans (and the baselines)
are lowered to.  They come in two families, mirroring the paper's dependency
categories (Section 3.2):

Communicating -- routed through the metered substrate:
    * :func:`repartition`       -- the ``partition`` extended operator,
    * :func:`broadcast_matrix`  -- the ``broadcast`` extended operator,
    * :func:`cpmm`              -- cross-product multiplication, whose
      aggregation shuffles partial result blocks.

Communication-free -- purely worker-local:
    * :func:`extract`           -- keep the locally-owned slice of a replica,
    * :func:`local_transpose`   -- Row <-> Column by transposing local blocks,
    * :func:`rmm1` / :func:`rmm2` -- replication-based multiplication
      (the replication itself is a separate ``broadcast`` step),
    * :func:`cellwise_op`, :func:`scalar_multiply` etc.

Every primitive runs its block work through the hosting worker's
:class:`~repro.localexec.engine.LocalEngine`, so flops and memory peaks are
attributed to the right node for the simulated clock.  Input and output
grids are charged to the worker for the duration of the operation (the
high-water mark is what the memory experiments read); the charge is dropped
when the operation completes.
"""

from __future__ import annotations

from typing import Callable

from repro.blocks import ops as block_ops
from repro.blocks.dense import DenseBlock
from repro.blocks.ops import Block
from repro.errors import SchemeError, ShapeError
from repro.kernels.fused import FusedChain
from repro.matrix.distributed import BlockKey, DistributedMatrix
from repro.matrix.schemes import Scheme
from repro.rdd.rdd import RDD
from repro.rdd.shuffle import shuffle
from repro.rdd.sizeof import model_sizeof


# ---------------------------------------------------------------------------
# Scheme-changing primitives
# ---------------------------------------------------------------------------


def repartition(matrix: DistributedMatrix, target: Scheme) -> DistributedMatrix:
    """Re-shuffle a Row/Column matrix into another one-dimensional scheme.

    This realises the ``partition`` extended operator; its traffic (roughly
    ``|A|``) is metered by the shuffle service.  Repartitioning a Broadcast
    matrix is a planner bug -- that case is a free :func:`extract`.
    """
    if not target.is_one_dimensional:
        raise SchemeError(f"repartition target must be Row or Column, got {target}")
    if matrix.scheme is Scheme.BROADCAST:
        raise SchemeError("repartitioning a Broadcast matrix: use extract() instead")
    if matrix.scheme is target:
        return matrix
    partitioner = target.partitioner(matrix.context.num_workers)
    return matrix.with_scheme_rdd(matrix.rdd.partition_by(partitioner), target)


def broadcast_matrix(matrix: DistributedMatrix) -> DistributedMatrix:
    """Replicate a Row/Column matrix to every worker (``broadcast`` operator).

    Charges ``(K - 1) * |A|`` of broadcast traffic, matching the paper's
    ``N x |A|``-order cost for Broadcast dependencies.
    """
    if matrix.scheme is Scheme.BROADCAST:
        return matrix
    items = sorted(matrix.rdd.collect())
    nbytes = sum(model_sizeof(block) for __, block in items)
    context = matrix.context
    context.transfer("broadcast", (context.num_workers - 1) * nbytes)
    partitions = [list(items) for __ in range(context.num_workers)]
    rdd = RDD(context, partitions, partitioner=None)
    return matrix.with_scheme_rdd(rdd, Scheme.BROADCAST)


def extract(matrix: DistributedMatrix, target: Scheme) -> DistributedMatrix:
    """From a Broadcast replica, keep only the locally-owned blocks.

    Realises the ``extract`` extended operator (Extract dependency): each
    worker filters its full copy down to the blocks the target scheme
    assigns to it.  Purely local -- no bytes move.
    """
    if matrix.scheme is not Scheme.BROADCAST:
        raise SchemeError(f"extract requires a Broadcast matrix, got {matrix.scheme}")
    if not target.is_one_dimensional:
        raise SchemeError(f"extract target must be Row or Column, got {target}")
    context = matrix.context
    partitioner = target.partitioner(context.num_workers)
    partitions = [
        [
            (key, block)
            for key, block in matrix.rdd.partition(p)
            if partitioner.partition_for(key) == p
        ]
        for p in range(context.num_workers)
    ]
    rdd = RDD(context, partitions, partitioner)
    return matrix.with_scheme_rdd(rdd, target)


def local_transpose(matrix: DistributedMatrix) -> DistributedMatrix:
    """Transpose without communication (``transpose`` extended operator).

    A Row-scheme matrix becomes the Column-scheme transpose (and vice
    versa): block ``(i, j)`` on its worker becomes block ``(j, i)`` of the
    transpose, which the complementary scheme assigns to the *same* worker.
    A Broadcast matrix stays Broadcast.
    """
    context = matrix.context
    new_scheme = matrix.scheme.opposite
    partitions = [
        [((j, i), block.transpose()) for (i, j), block in matrix.rdd.partition(p)]
        for p in range(matrix.rdd.num_partitions)
    ]
    partitioner = (
        new_scheme.partitioner(context.num_workers)
        if new_scheme.is_one_dimensional
        else None
    )
    rdd = RDD(context, partitions, partitioner)
    return DistributedMatrix(
        context, rdd, matrix.cols, matrix.rows, matrix.block_size, new_scheme
    )


# ---------------------------------------------------------------------------
# Multiplication strategies (paper Figure 2)
# ---------------------------------------------------------------------------


def _check_matmul(a: DistributedMatrix, b: DistributedMatrix) -> None:
    if a.cols != b.rows:
        raise ShapeError(f"matmul inner dimensions differ: {a.shape} @ {b.shape}")
    if a.block_size != b.block_size:
        raise ShapeError(
            f"matmul operands must share a block size: {a.block_size} vs {b.block_size}"
        )


def _require_scheme(matrix: DistributedMatrix, scheme: Scheme, strategy: str) -> None:
    if matrix.scheme is not scheme:
        raise SchemeError(
            f"{strategy} requires a {scheme}-scheme operand, got {matrix.scheme}"
        )


def _per_worker_compute(
    a: DistributedMatrix,
    compute: Callable[[int], list[tuple[BlockKey, Block]]],
) -> list[list[tuple[BlockKey, Block]]]:
    """Run a worker-indexed computation on every worker, in worker order."""
    return [compute(worker) for worker in range(a.context.num_workers)]


def rmm1(a: DistributedMatrix, b: DistributedMatrix) -> DistributedMatrix:
    """Replication-based multiplication, variant 1: ``A(b) @ B(c) -> AB(c)``.

    Each worker multiplies the full replica of ``A`` against its column
    strip of ``B``; the result is born Column-partitioned with zero traffic.
    """
    _check_matmul(a, b)
    _require_scheme(a, Scheme.BROADCAST, "RMM1")
    _require_scheme(b, Scheme.COL, "RMM1")
    context = a.context

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        ga, gb = a.worker_grid(worker), b.worker_grid(worker)
        engine.register_grid(ga)
        engine.register_grid(gb)
        gc = engine.matmul_grids(ga, gb)
        engine.release_grid(ga)
        engine.release_grid(gb)
        engine.release_grid(gc)
        return sorted(gc.items())

    partitions = _per_worker_compute(a, compute)
    rdd = RDD(context, partitions, Scheme.COL.partitioner(context.num_workers))
    return DistributedMatrix(context, rdd, a.rows, b.cols, a.block_size, Scheme.COL)


def rmm2(a: DistributedMatrix, b: DistributedMatrix) -> DistributedMatrix:
    """Replication-based multiplication, variant 2: ``A(r) @ B(b) -> AB(r)``."""
    _check_matmul(a, b)
    _require_scheme(a, Scheme.ROW, "RMM2")
    _require_scheme(b, Scheme.BROADCAST, "RMM2")
    context = a.context

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        ga, gb = a.worker_grid(worker), b.worker_grid(worker)
        engine.register_grid(ga)
        engine.register_grid(gb)
        gc = engine.matmul_grids(ga, gb)
        engine.release_grid(ga)
        engine.release_grid(gb)
        engine.release_grid(gc)
        return sorted(gc.items())

    partitions = _per_worker_compute(a, compute)
    rdd = RDD(context, partitions, Scheme.ROW.partitioner(context.num_workers))
    return DistributedMatrix(context, rdd, a.rows, b.cols, a.block_size, Scheme.ROW)


def cpmm(
    a: DistributedMatrix,
    b: DistributedMatrix,
    output_scheme: Scheme = Scheme.ROW,
) -> DistributedMatrix:
    """Cross-product multiplication: ``A(c) @ B(r) -> AB(r | c)``.

    Worker ``w`` holds the inner-index slices ``A[:, k]`` and ``B[k, :]``
    for its ``k``'s and computes a full-size partial product locally; the
    partials are then shuffled and summed into the requested output scheme.
    The shuffle is what gives CPMM its ``N x |AB|``-order output cost
    (paper Section 4.1).  Per Section 5.4 the aggregation runs with Spark's
    map-side combine *off* -- the In-Place engine already emits one combined
    partial per worker.
    """
    _check_matmul(a, b)
    _require_scheme(a, Scheme.COL, "CPMM")
    _require_scheme(b, Scheme.ROW, "CPMM")
    if not output_scheme.is_one_dimensional:
        raise SchemeError(f"CPMM output scheme must be Row or Column, got {output_scheme}")
    context = a.context

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        ga, gb = a.worker_grid(worker), b.worker_grid(worker)
        engine.register_grid(ga)
        engine.register_grid(gb)
        partial = engine.matmul_grids(ga, gb)
        engine.release_grid(ga)
        engine.release_grid(gb)
        engine.release_grid(partial)
        return sorted(partial.items())

    partial_partitions = _per_worker_compute(a, compute)
    partitioner = output_scheme.partitioner(context.num_workers)
    shuffled = shuffle(context, partial_partitions, partitioner)

    partitions: list[list[tuple[BlockKey, Block]]] = []
    for index, part in enumerate(shuffled):
        engine = context.engine_for_partition(index)
        merged: dict[BlockKey, DenseBlock] = {}
        for key, block in part:
            if key in merged:
                block_ops.accumulate(merged[key], block)
                engine.stats.record(block.shape[0] * block.shape[1], sparse=False)
            else:
                merged[key] = block if isinstance(block, DenseBlock) else block.to_dense_block()
        partitions.append(sorted(merged.items()))
    rdd = RDD(context, partitions, partitioner)
    return DistributedMatrix(
        context, rdd, a.rows, b.cols, a.block_size, output_scheme
    )


# ---------------------------------------------------------------------------
# Cell-wise and scalar operators
# ---------------------------------------------------------------------------


def cellwise_op(
    op: str,
    a: DistributedMatrix,
    b: DistributedMatrix,
) -> DistributedMatrix:
    """Aligned cell-wise binary operator: both operands must share shape
    *and* scheme; the result inherits that scheme with zero traffic."""
    if a.shape != b.shape:
        raise ShapeError(f"cell-wise {op} requires equal shapes, got {a.shape} / {b.shape}")
    if a.block_size != b.block_size:
        raise ShapeError("cell-wise operands must share a block size")
    if a.scheme is not b.scheme:
        raise SchemeError(
            f"cell-wise {op} requires aligned schemes, got {a.scheme} / {b.scheme}"
        )
    context = a.context

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        ga, gb = a.worker_grid(worker), b.worker_grid(worker)
        engine.register_grid(ga)
        engine.register_grid(gb)
        gc = engine.cellwise_grids(op, ga, gb)
        engine.release_grid(ga)
        engine.release_grid(gb)
        engine.release_grid(gc)
        return sorted(gc.items())

    partitions = _per_worker_compute(a, compute)
    partitioner = (
        a.scheme.partitioner(context.num_workers) if a.scheme.is_one_dimensional else None
    )
    rdd = RDD(context, partitions, partitioner)
    return a.with_scheme_rdd(rdd, a.scheme)


def fused_cellwise_op(
    chain: FusedChain,
    operands: tuple[DistributedMatrix, ...],
) -> DistributedMatrix:
    """Fused cell-wise chain over aligned operands: one composed kernel per
    block, no intermediate distributed materialisation.

    All operands must share shape, block size and scheme (each fused inner
    step was an aligned cell-wise operator, so the chain inherits the same
    alignment requirement); the result inherits that scheme with zero
    traffic, exactly like :func:`cellwise_op`.
    """
    first = operands[0]
    for other in operands[1:]:
        if other.shape != first.shape:
            raise ShapeError(
                f"fused cell-wise chain requires equal shapes, "
                f"got {first.shape} / {other.shape}"
            )
        if other.block_size != first.block_size:
            raise ShapeError("cell-wise operands must share a block size")
        if other.scheme is not first.scheme:
            raise SchemeError(
                f"fused cell-wise chain requires aligned schemes, "
                f"got {first.scheme} / {other.scheme}"
            )
    context = first.context

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        grids = tuple(operand.worker_grid(worker) for operand in operands)
        for grid in grids:
            engine.register_grid(grid)
        gc = engine.fused_cellwise_grids(chain, grids)
        for grid in grids:
            engine.release_grid(grid)
        engine.release_grid(gc)
        return sorted(gc.items())

    partitions = _per_worker_compute(first, compute)
    partitioner = (
        first.scheme.partitioner(context.num_workers)
        if first.scheme.is_one_dimensional
        else None
    )
    rdd = RDD(context, partitions, partitioner)
    return first.with_scheme_rdd(rdd, first.scheme)


def scalar_op_matrix(
    op: str,
    matrix: DistributedMatrix,
    scalar: float,
) -> DistributedMatrix:
    """Element-wise ``matrix <op> scalar``; scheme preserved, no traffic.

    Adding or subtracting a non-zero constant also shifts the *implicit*
    zeros, so dropped all-zero blocks are materialised first (like
    :func:`unary_op_matrix` for densifying functions).
    """
    context = matrix.context
    densifies = op in ("add", "subtract") and scalar != 0.0

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        grid = dict(matrix.worker_grid(worker))
        if densifies:
            for key in _owned_block_keys(matrix, worker):
                if key not in grid:
                    grid[key] = _zero_block(matrix, key)
        engine.register_grid(grid)
        result = engine.scalar_grids(op, grid, scalar)
        engine.release_grid(grid)
        engine.release_grid(result)
        return sorted(result.items())

    partitions = _per_worker_compute(matrix, compute)
    partitioner = (
        matrix.scheme.partitioner(context.num_workers)
        if matrix.scheme.is_one_dimensional
        else None
    )
    rdd = RDD(context, partitions, partitioner)
    return matrix.with_scheme_rdd(rdd, matrix.scheme)


def _owned_block_keys(matrix: DistributedMatrix, worker: int) -> list[BlockKey]:
    """Every block coordinate the matrix's scheme assigns to ``worker``
    (including blocks absent from the RDD because they are all-zero)."""
    block_rows, block_cols = matrix.block_grid_shape
    if matrix.scheme is Scheme.BROADCAST:
        return [(i, j) for i in range(block_rows) for j in range(block_cols)]
    partitioner = matrix.scheme.partitioner(matrix.context.num_workers)
    return [
        (i, j)
        for i in range(block_rows)
        for j in range(block_cols)
        if matrix.context.worker_for_partition(partitioner.partition_for((i, j)))
        == worker
    ]


def _zero_block(matrix: DistributedMatrix, key: BlockKey) -> DenseBlock:
    from repro.blocks.conversion import block_extent

    r0, r1 = block_extent(key[0], matrix.rows, matrix.block_size)
    c0, c1 = block_extent(key[1], matrix.cols, matrix.block_size)
    return DenseBlock.zeros(r1 - r0, c1 - c0)


def unary_op_matrix(func: str, matrix: DistributedMatrix) -> DistributedMatrix:
    """Element-wise unary function; scheme preserved, no traffic.

    Densifying functions (``f(0) != 0``: exp, sigmoid, ...) must also map
    the *implicit* zeros: blocks dropped from the RDD because they were
    all-zero are materialised as explicit zero blocks before applying
    ``func``, so e.g. ``sigmoid`` of a dropped block correctly yields 0.5s.
    """
    context = matrix.context
    densifies = func not in block_ops.ZERO_PRESERVING_UNARY

    def compute(worker: int) -> list[tuple[BlockKey, Block]]:
        engine = context.engines[worker]
        grid = dict(matrix.worker_grid(worker))
        if densifies:
            for key in _owned_block_keys(matrix, worker):
                if key not in grid:
                    grid[key] = _zero_block(matrix, key)
        out: list[tuple[BlockKey, Block]] = []
        for key, block in sorted(grid.items()):
            engine.stats.record(block_ops.unary_flops(block, func), block.is_sparse)
            out.append((key, block_ops.unary_op(func, block)))
        return out

    partitions = _per_worker_compute(matrix, compute)
    partitioner = (
        matrix.scheme.partitioner(context.num_workers)
        if matrix.scheme.is_one_dimensional
        else None
    )
    rdd = RDD(context, partitions, partitioner)
    return matrix.with_scheme_rdd(rdd, matrix.scheme)


# ---------------------------------------------------------------------------
# Row / column aggregations (matrix -> vector)
# ---------------------------------------------------------------------------


def row_sums(
    matrix: DistributedMatrix, output_scheme: Scheme = Scheme.ROW
) -> DistributedMatrix:
    """Per-row sums as an ``M x 1`` matrix.

    Free on a Row-scheme input (each worker owns whole block-rows) and on a
    Broadcast replica; a Column-scheme input yields per-worker partial sums
    that must be shuffled and combined -- the aggregation is metered, like
    CPMM's.
    """
    return _axis_sums(matrix, axis=0, output_scheme=output_scheme)


def col_sums(
    matrix: DistributedMatrix, output_scheme: Scheme = Scheme.COL
) -> DistributedMatrix:
    """Per-column sums as a ``1 x N`` matrix (mirror of :func:`row_sums`)."""
    return _axis_sums(matrix, axis=1, output_scheme=output_scheme)


def _axis_sums(
    matrix: DistributedMatrix, axis: int, output_scheme: Scheme
) -> DistributedMatrix:
    context = matrix.context
    kernel = block_ops.block_row_sums if axis == 0 else block_ops.block_col_sums
    out_rows = matrix.rows if axis == 0 else 1
    out_cols = 1 if axis == 0 else matrix.cols
    aligned_scheme = Scheme.ROW if axis == 0 else Scheme.COL

    def local_partials(worker: int) -> dict[BlockKey, DenseBlock]:
        engine = context.engines[worker]
        partials: dict[BlockKey, DenseBlock] = {}
        for (bi, bj), block in matrix.worker_grid(worker).items():
            key = (bi, 0) if axis == 0 else (0, bj)
            summed = kernel(block)
            engine.stats.record(block.nnz if block.is_sparse else
                                block.shape[0] * block.shape[1], block.is_sparse)
            if key in partials:
                block_ops.accumulate(partials[key], summed)
            else:
                partials[key] = summed
        return partials

    if matrix.scheme is Scheme.BROADCAST:
        # Every worker holds the full matrix: replicate the full result.
        partitions = [
            sorted(local_partials(worker).items())
            for worker in range(context.num_workers)
        ]
        rdd = RDD(context, partitions, partitioner=None)
        return DistributedMatrix(
            context, rdd, out_rows, out_cols, matrix.block_size, Scheme.BROADCAST
        )

    if matrix.scheme is aligned_scheme:
        # The reduced axis is entirely worker-local: no communication.
        partitions = [
            sorted(local_partials(worker).items())
            for worker in range(context.num_workers)
        ]
        partitioner = aligned_scheme.partitioner(context.num_workers)
        rdd = RDD(context, partitions, partitioner)
        return DistributedMatrix(
            context, rdd, out_rows, out_cols, matrix.block_size, aligned_scheme
        )

    # Opposed scheme: per-worker partials are shuffled and combined.
    if not output_scheme.is_one_dimensional:
        raise SchemeError(f"aggregated output scheme must be Row or Column, got {output_scheme}")
    partial_partitions = [
        sorted(local_partials(worker).items())
        for worker in range(context.num_workers)
    ]
    partitioner = output_scheme.partitioner(context.num_workers)
    shuffled = shuffle(matrix.context, partial_partitions, partitioner)
    partitions: list[list[tuple[BlockKey, Block]]] = []
    for index, part in enumerate(shuffled):
        engine = context.engine_for_partition(index)
        merged: dict[BlockKey, DenseBlock] = {}
        for key, block in part:
            if key in merged:
                block_ops.accumulate(merged[key], block)
                engine.stats.record(block.shape[0] * block.shape[1], sparse=False)
            else:
                merged[key] = block
        partitions.append(sorted(merged.items()))
    rdd = RDD(context, partitions, partitioner)
    return DistributedMatrix(
        context, rdd, out_rows, out_cols, matrix.block_size, output_scheme
    )


# ---------------------------------------------------------------------------
# Aggregations to driver scalars
# ---------------------------------------------------------------------------


def matrix_sum(matrix: DistributedMatrix) -> float:
    """Sum of all entries; the per-worker partials that travel to the driver
    are a few bytes each and, like the paper, not charged as cluster
    communication."""
    return sum(block_ops.block_sum(b) for b in matrix.driver_grid().values())


def matrix_sq_sum(matrix: DistributedMatrix) -> float:
    """Sum of squared entries (Frobenius norm squared)."""
    return sum(block_ops.block_sq_sum(b) for b in matrix.driver_grid().values())

"""Partition schemes and the four scheme constraints (paper Section 3.1).

DMac places distributed matrices with three one-dimensional schemes:

* **Row** (``r``)       -- blocks of the same block-row share a partition,
* **Column** (``c``)    -- blocks of the same block-column share a partition,
* **Broadcast** (``b``) -- every worker holds a replica of every block.

Table 1 of the paper defines four constraints between two schemes, used by
the dependency classifier (Table 2):

* ``EqualB(pi, pj)``   -- both are Broadcast,
* ``EqualRC(pi, pj)``  -- equal, and Row or Column,
* ``Oppose(pi, pj)``   -- one Row and the other Column,
* ``Contain(pi, pj)``  -- ``pi`` is Broadcast while ``pj`` is Row or Column
  (a broadcast replica *contains* every one-dimensional layout).
"""

from __future__ import annotations

import enum

from repro.errors import SchemeError
from repro.rdd.partitioner import ColumnPartitioner, Partitioner, RowPartitioner


class Scheme(enum.Enum):
    """A matrix partition scheme."""

    ROW = "r"
    COL = "c"
    BROADCAST = "b"

    def __str__(self) -> str:
        return self.value

    @property
    def is_one_dimensional(self) -> bool:
        return self in (Scheme.ROW, Scheme.COL)

    @property
    def opposite(self) -> "Scheme":
        """Row <-> Column (the scheme a local transpose produces)."""
        if self is Scheme.ROW:
            return Scheme.COL
        if self is Scheme.COL:
            return Scheme.ROW
        return Scheme.BROADCAST

    def partitioner(self, num_partitions: int) -> Partitioner:
        """The RDD partitioner realising this scheme; Broadcast has none."""
        if self is Scheme.ROW:
            return RowPartitioner(num_partitions)
        if self is Scheme.COL:
            return ColumnPartitioner(num_partitions)
        raise SchemeError("Broadcast is a replication, not a partitioning")


def equal_b(pi: Scheme, pj: Scheme) -> bool:
    """Both schemes are Broadcast."""
    return pi is Scheme.BROADCAST and pj is Scheme.BROADCAST


def equal_rc(pi: Scheme, pj: Scheme) -> bool:
    """The schemes are the same one-dimensional scheme."""
    return pi is pj and pi.is_one_dimensional


def oppose(pi: Scheme, pj: Scheme) -> bool:
    """One scheme is Row and the other Column."""
    return {pi, pj} == {Scheme.ROW, Scheme.COL}


def contain(pi: Scheme, pj: Scheme) -> bool:
    """``pi`` is Broadcast while ``pj`` is one-dimensional."""
    return pi is Scheme.BROADCAST and pj.is_one_dimensional

"""Plan-level optimizer: the rewrite layer between planner and runtime.

See :mod:`repro.planopt.pipeline` for the pass pipeline and
:func:`optimize_plan`, the entry point ``DMacSession`` and the CLI use.
"""

from repro.planopt.coalesce import coalesce_repartitions
from repro.planopt.common import (
    AppliedRewrite,
    clone_plan,
    recompute_predicted_bytes,
    toposort_steps,
)
from repro.planopt.cse import eliminate_common_steps
from repro.planopt.dce import eliminate_dead_steps
from repro.planopt.hoist import pin_loop_invariants
from repro.planopt.pipeline import (
    DEFAULT_PASSES,
    CoalescePass,
    CSEPass,
    DeadStepPass,
    HoistPass,
    Pass,
    PassContext,
    optimize_plan,
)
from repro.planopt.structural import (
    plan_structural_hash,
    program_fingerprint,
    step_structural_key,
    step_structural_key as structural_key,  # historical name
)

__all__ = [
    "AppliedRewrite",
    "CSEPass",
    "CoalescePass",
    "DEFAULT_PASSES",
    "DeadStepPass",
    "HoistPass",
    "Pass",
    "PassContext",
    "clone_plan",
    "coalesce_repartitions",
    "eliminate_common_steps",
    "eliminate_dead_steps",
    "optimize_plan",
    "pin_loop_invariants",
    "plan_structural_hash",
    "program_fingerprint",
    "recompute_predicted_bytes",
    "step_structural_key",
    "structural_key",
    "toposort_steps",
]

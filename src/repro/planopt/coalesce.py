"""Repartition coalescing: scheme-flip rewrites that shed conversions.

The planner lowers one operator at a time, so a value is often produced in
one scheme and immediately repartitioned into another (``A -> Row ->
Column``) -- or shuffled every iteration when producing it in the
consumer's scheme directly would have been free.  This pass searches for
such rewrites with an *apply-and-evaluate* loop:

* enumerate candidates -- flip a 1-D element-wise step to the opposite
  scheme, make a ``partition`` step's producer emit the target scheme
  natively, or merge a back-to-back conversion chain into one hop;
* apply each candidate to a clone of the plan.  A flip *cascades*: the
  flipped step demands its inputs in the new scheme (satisfied by flipping
  flexible producers -- sources, element-wise steps, rmm1<->rmm2,
  CPMM/row-agg output rebinds -- or by an explicit conversion chain), and
  every consumer of the old output is either re-derived from the new one,
  cascade-flipped (element-wise), or fed through a chain back to the old
  scheme.  Aggregations are always chained back: re-ordering their driver
  reduction would change floating-point summation order;
* re-sort, CSE, DCE, then re-cost the clone with the dependency-oriented
  cost model (`recompute_predicted_bytes`) and keep the best candidate only
  if ``(predicted_bytes, step_count)`` strictly decreases -- the merge is
  provably never costlier under the model.

Value-safety: every rewrite used here re-binds *where* blocks live, never
the per-block arithmetic or its order, so outputs stay byte-identical
(property-tested in ``tests/planopt/test_equivalence.py``).
"""

from __future__ import annotations

import collections

from repro.core.plan import (
    CellwiseStep,
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)
from repro.core.planner import _lowering_targets
from repro.errors import PlanError
from repro.matrix.schemes import Scheme
from repro.planopt.common import (
    AppliedRewrite,
    clone_plan,
    predicted_bytes_under,
    producer_map,
    recompute_predicted_bytes,
    toposort_steps,
)
from repro.planopt.cse import eliminate_common_steps
from repro.planopt.dce import eliminate_dead_steps

#: Element-wise step kinds: scheme-agnostic per-block arithmetic, so their
#: output scheme may be flipped freely (inputs follow).
ELEMENTWISE = (CellwiseStep, ScalarMatrixStep, UnaryStep)

#: Cap on accepted rewrite rounds (each strictly reduces the cost tuple,
#: so this only guards against pathological plans).
MAX_ROUNDS = 8


class _FlipSession:
    """One candidate application: tracks flipped steps and emits chains."""

    def __init__(self, plan: Plan) -> None:
        self.plan = plan
        self._done: set[int] = set()  # id(step) already rewritten
        self._demanding: set[MatrixInstance] = set()  # recursion guard

    # -- queries ------------------------------------------------------------

    def _producers(self) -> dict[MatrixInstance, Step]:
        return producer_map(self.plan)

    def _siblings(self, instance: MatrixInstance) -> list[MatrixInstance]:
        return [
            produced
            for produced in self._producers()
            if produced.name == instance.name
            and produced.transposed == instance.transposed
        ]

    # -- demand: make sure an instance exists -------------------------------

    def demand(self, instance: MatrixInstance) -> None:
        """Ensure some step produces ``instance``, preferring free producer
        flips over explicit conversion chains."""
        if instance in self._producers():
            return
        if instance in self._demanding:
            self._chain_to(instance)  # cycle: break it with a conversion
            return
        self._demanding.add(instance)
        try:
            if instance.scheme.is_one_dimensional:
                for sibling in self._siblings(instance):
                    producer = self._producers().get(sibling)
                    if producer is not None and self._can_flip(
                        producer, instance.scheme
                    ):
                        self._flip(producer, instance.scheme)
                        if instance in self._producers():
                            return
            self._chain_to(instance)
        finally:
            self._demanding.discard(instance)

    def _chain_to(self, instance: MatrixInstance) -> None:
        siblings = self._siblings(instance)
        if not siblings:
            raise PlanError(f"cannot satisfy demand for {instance}: "
                            f"nothing produces {instance.name}")

        def chain_cost(sibling: MatrixInstance) -> tuple[int, int]:
            chain = _lowering_targets(
                sibling, instance.name, instance.transposed, instance.scheme
            )
            comm = sum(1 for kind, __ in chain if kind in ("partition", "broadcast"))
            return (comm, len(chain))

        best = min(siblings, key=chain_cost)
        self.emit_chain(best, instance)

    def emit_chain(self, source: MatrixInstance, target: MatrixInstance) -> None:
        """Append the extended-operator chain ``source -> ... -> target``,
        reusing any hop some step already produces."""
        chain = _lowering_targets(
            source, target.name, target.transposed, target.scheme
        )
        current = source
        producers = self._producers()
        for kind, hop in chain:
            if hop in producers:
                current = hop
                continue
            step = ExtendedStep(kind=kind, source=current, target=hop)
            self.plan.steps.append(step)
            producers[hop] = step
            current = hop

    # -- flips --------------------------------------------------------------

    def _can_flip(self, step: Step, required: Scheme) -> bool:
        if id(step) in self._done or not required.is_one_dimensional:
            return False
        output = step.output_instance()
        if output is None or output.scheme is required:
            return False
        if isinstance(step, SourceStep):
            return output.scheme.is_one_dimensional  # Row-or-Column for free
        if isinstance(step, ELEMENTWISE):
            return output.scheme.is_one_dimensional
        if isinstance(step, MatMulStep):
            return step.strategy in ("rmm1", "rmm2", "cpmm")
        if isinstance(step, RowAggStep):
            return step.strategy.endswith("-opposed")  # flexible output
        return False

    def _flip(self, step: Step, required: Scheme) -> None:
        """Rewrite ``step`` to produce its output under ``required``."""
        if id(step) in self._done:
            return
        self._done.add(id(step))
        old = step.output_instance()
        new = MatrixInstance(old.name, old.transposed, required)
        if isinstance(step, SourceStep):
            step.output = new
        elif isinstance(step, ELEMENTWISE):
            for field in ("left", "right", "source"):
                value = getattr(step, field, None)
                if isinstance(value, MatrixInstance):
                    want = MatrixInstance(value.name, value.transposed, required)
                    self.demand(want)
                    setattr(step, field, want)
            step.output = new
        elif isinstance(step, MatMulStep) and step.strategy == "cpmm":
            step.output = new  # CPMM's shuffled output is Row-or-Column
        elif isinstance(step, MatMulStep):
            # rmm1: A(b) @ B(c) -> C(c)  <->  rmm2: A(r) @ B(b) -> C(r).
            # Both fold per output block over the same per-block sequence,
            # so the swap is bit-identical; only operand layouts change.
            if required is Scheme.ROW:
                step.strategy = "rmm2"
                left = MatrixInstance(step.left.name, step.left.transposed, Scheme.ROW)
                right = MatrixInstance(
                    step.right.name, step.right.transposed, Scheme.BROADCAST
                )
            else:
                step.strategy = "rmm1"
                left = MatrixInstance(
                    step.left.name, step.left.transposed, Scheme.BROADCAST
                )
                right = MatrixInstance(step.right.name, step.right.transposed, Scheme.COL)
            self.demand(left)
            self.demand(right)
            step.left, step.right = left, right
            step.output = new
        elif isinstance(step, RowAggStep):
            step.output = new  # "-opposed" shuffles partials; output flexible
        else:  # pragma: no cover - guarded by _can_flip
            raise PlanError(f"cannot flip {step}")
        self._replace_output(old, new)

    def _replace_output(self, old: MatrixInstance, new: MatrixInstance) -> None:
        """Rewire everything that read ``old`` now that only ``new`` exists."""
        for name, instance in self.plan.outputs.items():
            if instance == old:
                self.plan.outputs[name] = new
        consumers = [
            step
            for step in self.plan.steps
            if id(step) not in self._done and old in step.inputs()
        ]
        for consumer in consumers:
            if isinstance(consumer, ExtendedStep) and consumer.source == old:
                # Re-derive the conversion from the new layout; if the
                # conversion's whole purpose was producing `new`, drop it.
                self.plan.steps.remove(consumer)
                self._done.add(id(consumer))
                if consumer.target != new:
                    self.emit_chain(new, consumer.target)
            elif (
                isinstance(consumer, ELEMENTWISE)
                and new.scheme.is_one_dimensional
                and self._can_flip(consumer, new.scheme)
            ):
                self._flip(consumer, new.scheme)  # cascade
            else:
                # Chain back: aggregations (driver reduction order is
                # float-sensitive) and rigid operands keep reading `old`,
                # now re-derived from `new`.
                self.emit_chain(new, old)


# -- candidate enumeration ----------------------------------------------------


def _candidates(plan: Plan) -> list[tuple]:
    producers = producer_map(plan)
    found: list[tuple] = []
    for index, step in enumerate(plan.steps):
        output = step.output_instance()
        if (
            isinstance(step, ELEMENTWISE)
            and output is not None
            and output.scheme.is_one_dimensional
        ):
            found.append(("flip", index, output.scheme.opposite))
        if isinstance(step, ExtendedStep):
            if step.kind == "partition":
                found.append(("flip-producer", index))
            producer = producers.get(step.source)
            if isinstance(producer, ExtendedStep):
                found.append(("merge", index))
    return found


def _apply_candidate(
    plan: Plan, candidate: tuple, num_workers: int, estimation_mode: str
) -> tuple[Plan, str]:
    clone = clone_plan(plan)
    kind, index = candidate[0], candidate[1]
    step = clone.steps[index]
    session = _FlipSession(clone)
    if kind == "flip":
        description = f"flipped {step} to scheme {candidate[2]}"
        session._flip(step, candidate[2])
    elif kind == "flip-producer":
        producer = producer_map(clone).get(step.source)
        if producer is None or not session._can_flip(producer, step.target.scheme):
            raise PlanError("partition producer is not flippable")
        description = (
            f"produced {step.target} natively instead of repartitioning"
        )
        session._flip(producer, step.target.scheme)
    elif kind == "merge":
        producer = producer_map(clone).get(step.source)
        if not isinstance(producer, ExtendedStep):
            raise PlanError("conversion source is not itself a conversion")
        description = (
            f"coalesced {producer} ; {step} into a direct conversion"
        )
        clone.steps.remove(step)
        session.emit_chain(producer.source, step.target)
    else:  # pragma: no cover
        raise PlanError(f"unknown candidate {kind}")
    toposort_steps(clone)
    eliminate_common_steps(clone)
    eliminate_dead_steps(clone)
    toposort_steps(clone)
    recompute_predicted_bytes(clone, num_workers, estimation_mode)
    return clone, description


def _diff(before: Plan, after: Plan) -> tuple[tuple[str, ...], tuple[str, ...]]:
    old = collections.Counter(str(step) for step in before.steps)
    new = collections.Counter(str(step) for step in after.steps)
    removed = tuple(sorted((old - new).elements()))
    added = tuple(sorted((new - old).elements()))
    return removed, added


def coalesce_repartitions(
    plan: Plan, *, num_workers: int, estimation_mode: str = "worst"
) -> list[AppliedRewrite]:
    """Greedy best-first coalescing on ``plan`` (mutated in place)."""
    recompute_predicted_bytes(plan, num_workers, estimation_mode)
    # A candidate must win under the planning mode *without* losing under
    # the opposite sparsity model: worst-case and average-case disagree on
    # matmul-output sizes, and a rewrite that only wins in one model can
    # regress the measured ledger on real data.
    other_mode = "average" if estimation_mode == "worst" else "worst"
    rewrites: list[AppliedRewrite] = []
    for __ in range(MAX_ROUNDS):
        base_cost = (plan.predicted_bytes, len(plan.steps))
        base_other = predicted_bytes_under(plan, num_workers, other_mode)
        best = None
        for candidate in _candidates(plan):
            try:
                clone, description = _apply_candidate(
                    plan, candidate, num_workers, estimation_mode
                )
            except PlanError:
                continue  # candidate does not yield a valid plan
            cost = (clone.predicted_bytes, len(clone.steps))
            if (
                cost < base_cost
                and predicted_bytes_under(clone, num_workers, other_mode)
                <= base_other
                and (best is None or cost < best[0])
            ):
                best = (cost, clone, description)
        if best is None:
            return rewrites
        __, clone, description = best
        removed, added = _diff(plan, clone)
        rewrites.append(AppliedRewrite(
            "coalesce",
            f"{description} "
            f"(predicted bytes {plan.predicted_bytes} -> {clone.predicted_bytes})",
            removed=removed,
            added=added,
        ))
        plan.steps = clone.steps
        plan.outputs = clone.outputs
        plan.predicted_bytes = clone.predicted_bytes
    return rewrites

"""Shared infrastructure for the plan-optimizer passes.

Passes rewrite a :class:`~repro.core.plan.Plan` *in place on a clone* --
:func:`clone_plan` shallow-copies every step (instances are frozen, so
sharing them is safe) and the original plan is never mutated.  The helpers
here answer the structural questions every pass asks: who produces an
instance, who consumes it, what is a valid topological order, and what
communication the rewritten plan predicts.

``recompute_predicted_bytes`` re-derives ``plan.predicted_bytes`` with the
exact per-step accounting the dependency-oriented cost model (paper
Section 4.1) uses -- the same decomposition ``repro.lint``'s DM104 rule
checks -- so an optimized plan always lints clean.
"""

from __future__ import annotations

import copy
import dataclasses

from repro.core.estimator import SizeEstimator
from repro.core.plan import (
    ExtendedStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    Step,
)
from repro.errors import PlanError


@dataclasses.dataclass(frozen=True)
class AppliedRewrite:
    """One optimizer rewrite, for the ``--show-rewrites`` audit trail."""

    pass_name: str
    description: str
    removed: tuple[str, ...] = ()  # human-readable steps deleted/merged away
    added: tuple[str, ...] = ()  # steps or pins introduced

    def format_human(self) -> str:
        lines = [f"[{self.pass_name}] {self.description}"]
        lines.extend(f"  - {step}" for step in self.removed)
        lines.extend(f"  + {step}" for step in self.added)
        return "\n".join(lines)


def clone_plan(plan: Plan) -> Plan:
    """A mutation-safe copy: fresh step objects, shared frozen instances."""
    return Plan(
        program=plan.program,
        steps=[copy.copy(step) for step in plan.steps],
        outputs=dict(plan.outputs),
        predicted_bytes=plan.predicted_bytes,
        num_stages=0,
        cache_pins=tuple(plan.cache_pins),
        rewrites=tuple(plan.rewrites),
        certificates=tuple(plan.certificates),
    )


def producer_map(plan: Plan) -> dict[MatrixInstance, Step]:
    """Instance -> the step that materialises it."""
    producers: dict[MatrixInstance, Step] = {}
    for step in plan.steps:
        output = step.output_instance()
        if output is not None:
            producers[output] = step
    return producers


def consumer_map(plan: Plan) -> dict[MatrixInstance, list[Step]]:
    """Instance -> every step that reads it (one entry per reading step)."""
    consumers: dict[MatrixInstance, list[Step]] = {}
    for step in plan.steps:
        for instance in step.inputs():
            consumers.setdefault(instance, []).append(step)
    return consumers


def toposort_steps(plan: Plan) -> None:
    """Re-order ``plan.steps`` into a stable topological order.

    Stable Kahn over matrix *and* scalar dependencies: among ready steps the
    original relative order is kept, so a plan that is already sorted comes
    back unchanged.  Raises :class:`PlanError` on a dependency cycle or a
    step consuming an instance nothing produces (both indicate an optimizer
    bug -- callers treat it as "abort this candidate").
    """
    produced: dict[MatrixInstance, int] = {}
    scalar_produced: dict[str, int] = {}
    for index, step in enumerate(plan.steps):
        output = step.output_instance()
        if output is not None:
            produced[output] = index
        scalar = step.scalar_output()
        if scalar is not None:
            scalar_produced[scalar] = index

    dependents: dict[int, list[int]] = {i: [] for i in range(len(plan.steps))}
    indegree = [0] * len(plan.steps)
    for index, step in enumerate(plan.steps):
        deps = set()
        for instance in step.inputs():
            if instance not in produced:
                raise PlanError(
                    f"rewritten plan consumes {instance} but nothing produces it"
                )
            deps.add(produced[instance])
        for name in step.scalar_inputs():
            if name in scalar_produced:  # program-level scalars need no step
                deps.add(scalar_produced[name])
        for dep in deps:
            dependents[dep].append(index)
            indegree[index] += 1

    import heapq

    ready = [i for i in range(len(plan.steps)) if indegree[i] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        index = heapq.heappop(ready)
        order.append(index)
        for succ in dependents[index]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)
    if len(order) != len(plan.steps):
        raise PlanError("rewritten plan has a dependency cycle")
    plan.steps = [plan.steps[i] for i in order]


def predicted_bytes_under(
    plan: Plan, num_workers: int, estimation_mode: str
) -> int:
    """The plan's communication under one estimation mode (pure; does not
    touch ``plan.predicted_bytes``)."""
    estimator = SizeEstimator(plan.program, estimation_mode)
    total = 0
    for step in plan.steps:
        if isinstance(step, ExtendedStep) and step.communicates:
            nbytes = estimator.nbytes(step.source.name)
            total += (num_workers - 1) * nbytes if step.kind == "broadcast" else nbytes
        elif isinstance(step, (MatMulStep, RowAggStep)) and step.communicates:
            total += (num_workers - 1) * estimator.nbytes(step.output.name)
    return total


def recompute_predicted_bytes(
    plan: Plan, num_workers: int, estimation_mode: str = "worst"
) -> None:
    """Re-derive ``plan.predicted_bytes`` from the rewritten step list."""
    plan.predicted_bytes = predicted_bytes_under(
        plan, num_workers, estimation_mode
    )


# -- iteration structure ------------------------------------------------------


def version_of(name: str) -> int:
    """The SSA version of a program name (``X@3`` -> 3, unversioned -> 0)."""
    __, sep, version = name.partition("@")
    return int(version) if sep else 0


def epoch_map(plan: Plan) -> dict[MatrixInstance, int]:
    """Instance -> the highest SSA version among its transitive ancestors.

    Epoch 0 instances depend only on loop-invariant data: they are exactly
    the values an unrolled loop recomputes verbatim each iteration (until
    CSE merges them), hence the hoisting pass's pin candidates.
    """
    epochs: dict[MatrixInstance, int] = {}
    scalar_epochs: dict[str, int] = {}
    for step in plan.steps:  # steps are topologically ordered
        epoch = 0
        for instance in step.inputs():
            epoch = max(epoch, version_of(instance.name), epochs.get(instance, 0))
        for name in step.scalar_inputs():
            epoch = max(epoch, version_of(name), scalar_epochs.get(name, 0))
        output = step.output_instance()
        if output is not None:
            epochs[output] = max(epoch, version_of(output.name))
        scalar = step.scalar_output()
        if scalar is not None:
            scalar_epochs[scalar] = max(epoch, version_of(scalar))
    return epochs


def step_version(step: Step) -> int:
    """The highest SSA version named anywhere in a step -- a cheap proxy
    for which unrolled iteration the step belongs to."""
    versions = [version_of(instance.name) for instance in step.inputs()]
    versions.extend(version_of(name) for name in step.scalar_inputs())
    output = step.output_instance()
    if output is not None:
        versions.append(version_of(output.name))
    scalar = step.scalar_output()
    if scalar is not None:
        versions.append(version_of(scalar))
    return max(versions, default=0)

"""Common-subexpression elimination over plan steps.

Two steps are *structurally identical* when they apply the same operator
(same kind, same parameters) to the same input instances and produce their
output under the same layout (transposed flag + scheme).  Unrolled loops
emit such duplicates freely -- PageRank recomputes ``D * (1 - d)/N`` every
iteration -- and the planner's per-operator lowering cannot see across
iterations.  This pass keeps the first occurrence, deletes the rest, and
renames every reference to a deleted step's output (including derived
conversion instances and program outputs) to the kept name.

Renaming can itself create *exact* duplicates (two ``partition`` steps now
converting the same kept instance to the same target); those are plain
removals -- same output instance, no renaming needed.  The pass loops to a
fixpoint so cascades resolve in one call.
"""

from __future__ import annotations

from repro.core.plan import MatrixInstance, Plan, Step
from repro.planopt.common import AppliedRewrite
from repro.planopt.structural import step_structural_key as structural_key

#: Step fields that hold matrix instances (for renaming).
INSTANCE_FIELDS = ("source", "target", "left", "right", "output")


def rename_instances(plan: Plan, old_name: str, new_name: str) -> None:
    """Replace every instance named ``old_name`` (any layout) with the same
    layout under ``new_name``, across all steps and the output table."""

    def renamed(instance: MatrixInstance) -> MatrixInstance:
        if instance.name != old_name:
            return instance
        return MatrixInstance(new_name, instance.transposed, instance.scheme)

    for step in plan.steps:
        for field in INSTANCE_FIELDS:
            value = getattr(step, field, None)
            if isinstance(value, MatrixInstance):
                setattr(step, field, renamed(value))
    for output_name, instance in plan.outputs.items():
        plan.outputs[output_name] = renamed(instance)


def _find_duplicate(plan: Plan) -> tuple[Step, Step] | None:
    seen: dict[tuple, Step] = {}
    for step in plan.steps:
        key = structural_key(step)
        if key is None:
            continue
        if key in seen:
            return seen[key], step
        seen[key] = step
    return None


def eliminate_common_steps(plan: Plan) -> list[AppliedRewrite]:
    """Run CSE to a fixpoint on ``plan`` (mutated in place)."""
    rewrites: list[AppliedRewrite] = []
    while True:
        found = _find_duplicate(plan)
        if found is None:
            return rewrites
        kept, dup = found
        plan.steps.remove(dup)
        dup_out = dup.output_instance()
        kept_out = kept.output_instance()
        if dup_out == kept_out:
            rewrites.append(AppliedRewrite(
                "cse", f"removed exact duplicate of {kept}",
                removed=(str(dup),),
            ))
            continue
        # Distinct output names computing the same value: fold the
        # duplicate's whole name (all derived layouts) onto the kept name.
        rename_instances(plan, dup_out.name, kept_out.name)
        rewrites.append(AppliedRewrite(
            "cse",
            f"merged {dup_out.name} into {kept_out.name} "
            f"(identical computation)",
            removed=(str(dup),),
        ))

"""Dead-step elimination: drop steps whose value never reaches an output.

Backward liveness from the plan's matrix outputs and the program's scalar
outputs, through each step's ``inputs()`` / ``scalar_inputs()``.  Other
passes create the garbage this one collects: CSE leaves conversion chains
of merged names dangling, repartition coalescing strands the intermediate
hop of a merged ``A -> Row -> Column`` chain.
"""

from __future__ import annotations

from repro.core.plan import Plan
from repro.planopt.common import AppliedRewrite


def eliminate_dead_steps(plan: Plan) -> list[AppliedRewrite]:
    """Remove unreachable steps from ``plan`` (mutated in place)."""
    live_instances = set(plan.outputs.values())
    live_scalars = set(plan.program.scalar_outputs)
    kept_reversed = []
    removed = []
    for step in reversed(plan.steps):
        output = step.output_instance()
        scalar = step.scalar_output()
        alive = (
            (output is not None and output in live_instances)
            or (scalar is not None and scalar in live_scalars)
        )
        if not alive:
            removed.append(str(step))
            continue
        kept_reversed.append(step)
        live_instances.update(step.inputs())
        live_scalars.update(step.scalar_inputs())
    if not removed:
        return []
    plan.steps = list(reversed(kept_reversed))
    removed.reverse()
    return [AppliedRewrite(
        "dce",
        f"removed {len(removed)} step(s) whose value never reaches an output",
        removed=tuple(removed),
    )]

"""Elementwise fusion: collapse cellwise chains into one composed kernel.

GNMF's multiplicative updates are ladders of cell-wise steps -- e.g.
``H * (W^T V) / (W^T W H)`` multiplies and divides three aligned matrices
-- and the unfused plan materialises every rung as a full distributed
matrix that is registered, published and released just to feed the next
rung.  This pass merges each maximal chain of cellwise steps whose
intermediates have exactly one consumer into a single
:class:`~repro.core.plan.FusedCellwiseStep`, which the engine executes as
one composed numpy kernel per block (:mod:`repro.kernels.fused`): no
intermediate grid is ever built.

An intermediate is fusable only when nothing else can observe it: it must
not be a plan output, not a cache pin, and its sole reader must itself be
a cellwise step.  The pass runs *last* in the pipeline (after the
CSE/coalesce/DCE rounds and hoisting), because instance-renaming passes
cannot see inside a fused step's chain payload.

Every fusion is translation-validated: :mod:`repro.verify.certify` replays
the chain symbolically and proves the fused output's value term identical
to the unfused plan's, and its ``fusion-chain-equivalence`` obligation
re-derives each fused step's term from its own chain payload.  An
uncertifiable fusion aborts optimization.
"""

from __future__ import annotations

from repro.core.plan import CellwiseStep, FusedCellwiseStep, Plan, Step
from repro.planopt.common import AppliedRewrite, consumer_map


def fuse_cellwise_chains(plan: Plan) -> list[AppliedRewrite]:
    """Merge fusable cellwise chains in place; one rewrite per chain."""
    outputs = set(plan.outputs.values())
    pins = set(plan.cache_pins)
    consumers = consumer_map(plan)
    index_of = {id(step): index for index, step in enumerate(plan.steps)}

    # A cellwise step is absorbed into its consumer when its output is
    # invisible to everything else: single reading step, itself cellwise,
    # and the instance is neither a plan output nor a cache pin.
    merged_into: dict[int, CellwiseStep] = {}
    for step in plan.steps:
        if not isinstance(step, CellwiseStep):
            continue
        if step.output in outputs or step.output in pins:
            continue
        readers = {id(reader): reader for reader in consumers.get(step.output, [])}
        if len(readers) != 1:
            continue
        (consumer,) = readers.values()
        if isinstance(consumer, CellwiseStep):
            merged_into[id(step)] = consumer

    producers_of: dict[int, list[CellwiseStep]] = {}
    for step in plan.steps:
        consumer = merged_into.get(id(step))
        if consumer is not None:
            assert isinstance(step, CellwiseStep)
            producers_of.setdefault(id(consumer), []).append(step)

    rewrites: list[AppliedRewrite] = []
    replaced: dict[int, FusedCellwiseStep] = {}
    absorbed: set[int] = set()
    for step in plan.steps:
        if not isinstance(step, CellwiseStep):
            continue
        if id(step) in merged_into or id(step) not in producers_of:
            continue  # absorbed elsewhere, or nothing feeds it fusably
        members: list[CellwiseStep] = []
        frontier: list[CellwiseStep] = [step]
        while frontier:
            current = frontier.pop()
            members.append(current)
            frontier.extend(producers_of.get(id(current), []))
        members.sort(key=lambda member: index_of[id(member)])
        fused = FusedCellwiseStep(chain=tuple(members), output=step.output)
        replaced[id(step)] = fused
        absorbed.update(id(member) for member in members if member is not step)
        rewrites.append(
            AppliedRewrite(
                pass_name="fuse",
                description=(
                    f"fused {len(members)} cellwise steps into one "
                    f"composed kernel for {fused.output}"
                ),
                removed=tuple(str(member) for member in members),
                added=(str(fused),),
            )
        )
    if not rewrites:
        return []
    plan.steps = [
        replaced.get(id(step), step)
        for step in plan.steps
        if id(step) not in absorbed
    ]
    return rewrites


def unfused_chain_heads(plan: Plan) -> list[tuple[CellwiseStep, Step, str]]:
    """Cellwise steps feeding a sole cellwise consumer that are *not* inside
    a fused step -- i.e. chains :func:`fuse_cellwise_chains` would merge or
    nearly merged.  Each entry is ``(producer, consumer, blocker)`` where
    ``blocker`` is ``"output"`` (the intermediate is published as a plan
    output), ``"pin"`` (it is cache-pinned), or ``"fusable"`` (nothing
    blocks it -- on an optimized plan that means the pass never ran).  Used
    by the lint's DM401 rule."""
    outputs = set(plan.outputs.values())
    pins = set(plan.cache_pins)
    consumers = consumer_map(plan)
    heads: list[tuple[CellwiseStep, Step, str]] = []
    for step in plan.steps:
        if not isinstance(step, CellwiseStep):
            continue
        readers = {id(reader): reader for reader in consumers.get(step.output, [])}
        if len(readers) != 1:
            continue
        (consumer,) = readers.values()
        if not isinstance(consumer, CellwiseStep):
            continue
        if step.output in outputs:
            blocker = "output"
        elif step.output in pins:
            blocker = "pin"
        else:
            blocker = "fusable"
        heads.append((step, consumer, blocker))
    return heads

"""Loop-invariant hoisting: pin iteration-invariant instances for caching.

Programs arrive with loops unrolled into SSA versions (``rank@1`` ...
``rank@10``), so "hoisting" a loop-invariant computation out of the loop
is two separate obligations:

* *compute it once* -- already guaranteed after CSE has merged the
  per-iteration duplicates into a single producing step;
* *keep it resident across iterations* -- the runtime's job.  This pass
  marks which instances deserve that treatment (``plan.cache_pins``); the
  executor hosts them in the :class:`~repro.runtime.resources.BlockCache`,
  which charges their bytes to the per-worker memory model and can spill /
  lineage-recompute them under pressure.

An instance is pinned when it is *iteration-invariant* (epoch 0: no SSA
version anywhere in its ancestry) and *reused across iterations* (its
consumer steps span at least two distinct iteration versions).  This is
the reproduction's analogue of the paper's Reference-dependency caching
(Figure 9a): PageRank's Column-partitioned ``link`` matrix stays resident
while only the small rank vector moves each round.
"""

from __future__ import annotations

from repro.core.plan import Plan
from repro.planopt.common import (
    AppliedRewrite,
    consumer_map,
    epoch_map,
    producer_map,
    step_version,
)


def pin_loop_invariants(plan: Plan) -> list[AppliedRewrite]:
    """Fill ``plan.cache_pins`` with the loop-invariant, cross-iteration
    instances (mutated in place; idempotent)."""
    epochs = epoch_map(plan)
    consumers = consumer_map(plan)
    producers = producer_map(plan)
    pins = []
    for instance, consuming_steps in consumers.items():
        if instance not in producers:
            continue  # inputs the plan never materialises itself
        if epochs.get(instance, 0) != 0:
            continue  # depends on a loop-carried version
        versions = {step_version(step) for step in consuming_steps}
        if len(versions) < 2:
            continue  # used inside a single iteration only
        pins.append(instance)
    pins.sort(key=str)
    plan.cache_pins = tuple(pins)
    if not pins:
        return []
    return [AppliedRewrite(
        "hoist",
        f"pinned {len(pins)} loop-invariant instance(s) in the block cache "
        f"(computed once, resident across iterations)",
        added=tuple(str(pin) for pin in pins),
    )]

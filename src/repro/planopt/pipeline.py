"""The optimizer pipeline: ordered passes over a cloned plan.

:func:`optimize_plan` is the one entry point the session and CLI use.  It
never mutates the plan it is given: passes run on a clone, and the clone
comes back stage-scheduled with a fresh ``predicted_bytes`` (recomputed
with the cost model's own per-step accounting, so DM104 stays silent) and
an ``AppliedRewrite`` audit trail in ``plan.rewrites``.

The default pipeline interleaves CSE, repartition coalescing and dead-step
elimination to a fixpoint -- coalescing exposes new common subexpressions
and strands dead conversions, so one round is rarely enough -- then runs
loop-invariant hoisting last, once the surviving step set is final.

Custom rewrites plug in through the :class:`Pass` protocol; later PRs add
passes by appending to ``DEFAULT_PASSES`` or handing ``optimize_plan`` an
explicit sequence.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, runtime_checkable

from repro.core.plan import Plan
from repro.core.stages import schedule_stages
from repro.planopt.coalesce import coalesce_repartitions
from repro.planopt.common import (
    AppliedRewrite,
    clone_plan,
    recompute_predicted_bytes,
    toposort_steps,
)
from repro.planopt.cse import eliminate_common_steps
from repro.planopt.dce import eliminate_dead_steps
from repro.planopt.hoist import pin_loop_invariants

#: Cap on CSE/coalesce/DCE fixpoint rounds.
MAX_PIPELINE_ROUNDS = 3


@dataclasses.dataclass(frozen=True)
class PassContext:
    """What a pass may assume about the target cluster."""

    num_workers: int
    estimation_mode: str = "worst"


@runtime_checkable
class Pass(Protocol):
    """One plan rewrite: mutate ``plan`` in place, report what changed."""

    name: str

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]: ...


class CSEPass:
    name = "cse"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return eliminate_common_steps(plan)


class CoalescePass:
    name = "coalesce"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return coalesce_repartitions(
            plan,
            num_workers=context.num_workers,
            estimation_mode=context.estimation_mode,
        )


class DeadStepPass:
    name = "dce"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return eliminate_dead_steps(plan)


class HoistPass:
    name = "hoist"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return pin_loop_invariants(plan)


DEFAULT_PASSES: tuple[Pass, ...] = (
    CSEPass(),
    CoalescePass(),
    DeadStepPass(),
    HoistPass(),
)


def optimize_plan(
    plan: Plan,
    *,
    num_workers: int,
    estimation_mode: str = "worst",
    passes: tuple[Pass, ...] | None = None,
) -> Plan:
    """Run the pass pipeline; returns a new, stage-scheduled plan."""
    context = PassContext(num_workers=num_workers, estimation_mode=estimation_mode)
    optimized = clone_plan(plan)
    pipeline = DEFAULT_PASSES if passes is None else tuple(passes)
    rewrites: list[AppliedRewrite] = list(optimized.rewrites)
    hoisters = [p for p in pipeline if isinstance(p, HoistPass)]
    rounds = [p for p in pipeline if not isinstance(p, HoistPass)]
    for __ in range(MAX_PIPELINE_ROUNDS):
        changed = False
        for the_pass in rounds:
            applied = the_pass.run(optimized, context)
            if applied:
                changed = True
                rewrites.extend(applied)
        if not changed:
            break
    for the_pass in hoisters:
        rewrites.extend(the_pass.run(optimized, context))
    toposort_steps(optimized)
    recompute_predicted_bytes(optimized, num_workers, estimation_mode)
    optimized.rewrites = tuple(rewrites)
    return schedule_stages(optimized)

"""The optimizer pipeline: ordered passes over a cloned plan.

:func:`optimize_plan` is the one entry point the session and CLI use.  It
never mutates the plan it is given: passes run on a clone, and the clone
comes back stage-scheduled with a fresh ``predicted_bytes`` (recomputed
with the cost model's own per-step accounting, so DM104 stays silent) and
an ``AppliedRewrite`` audit trail in ``plan.rewrites``.

The default pipeline interleaves CSE, repartition coalescing and dead-step
elimination to a fixpoint -- coalescing exposes new common subexpressions
and strands dead conversions, so one round is rarely enough -- then runs
loop-invariant hoisting once the surviving step set is final, and finally
cellwise fusion (:mod:`repro.planopt.fuse`), which must see the final
cache-pin set and whose fused chain payloads no renaming pass may touch.

Custom rewrites plug in through the :class:`Pass` protocol; later PRs add
passes by appending to ``DEFAULT_PASSES`` or handing ``optimize_plan`` an
explicit sequence.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, runtime_checkable

from repro.core.plan import Plan
from repro.core.stages import schedule_stages
from repro.planopt.coalesce import coalesce_repartitions
from repro.planopt.common import (
    AppliedRewrite,
    clone_plan,
    recompute_predicted_bytes,
    toposort_steps,
)
from repro.planopt.cse import eliminate_common_steps
from repro.planopt.dce import eliminate_dead_steps
from repro.planopt.fuse import fuse_cellwise_chains
from repro.planopt.hoist import pin_loop_invariants

#: Cap on CSE/coalesce/DCE fixpoint rounds.
MAX_PIPELINE_ROUNDS = 3


@dataclasses.dataclass(frozen=True)
class PassContext:
    """What a pass may assume about the target cluster."""

    num_workers: int
    estimation_mode: str = "worst"


@runtime_checkable
class Pass(Protocol):
    """One plan rewrite: mutate ``plan`` in place, report what changed."""

    name: str

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]: ...


class CSEPass:
    name = "cse"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return eliminate_common_steps(plan)


class CoalescePass:
    name = "coalesce"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return coalesce_repartitions(
            plan,
            num_workers=context.num_workers,
            estimation_mode=context.estimation_mode,
        )


class DeadStepPass:
    name = "dce"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return eliminate_dead_steps(plan)


class HoistPass:
    name = "hoist"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return pin_loop_invariants(plan)


class FusePass:
    name = "fuse"

    def run(self, plan: Plan, context: PassContext) -> list[AppliedRewrite]:
        return fuse_cellwise_chains(plan)


DEFAULT_PASSES: tuple[Pass, ...] = (
    CSEPass(),
    CoalescePass(),
    DeadStepPass(),
    HoistPass(),
    FusePass(),
)


def optimize_plan(
    plan: Plan,
    *,
    num_workers: int,
    estimation_mode: str = "worst",
    passes: tuple[Pass, ...] | None = None,
    validate: bool = True,
) -> Plan:
    """Run the pass pipeline; returns a new, stage-scheduled plan.

    With ``validate=True`` (the default) every pass application is
    *translation-validated*: :func:`repro.verify.certify` proves the pre-
    and post-rewrite plans equivalent (symbolic value keys on every output,
    well-ordered dataflow, stable shape facts) and issues a certificate
    recorded on ``plan.certificates``; an uncertifiable rewrite aborts
    optimization with :class:`~repro.errors.TranslationValidationError`
    before the broken plan can reach the executor.  A final end-to-end
    certificate covers the whole pipeline, snapshots included.
    """
    context = PassContext(num_workers=num_workers, estimation_mode=estimation_mode)
    if validate:
        from repro.verify.certify import certify
    original = clone_plan(plan) if validate else plan
    optimized = clone_plan(plan)
    pipeline = DEFAULT_PASSES if passes is None else tuple(passes)
    rewrites: list[AppliedRewrite] = list(optimized.rewrites)
    certificates: list = list(optimized.certificates)
    hoisters = [p for p in pipeline if isinstance(p, HoistPass)]
    # Fusion runs dead last: it must see the final cache-pin set, and the
    # instance-renaming passes cannot see inside a fused chain payload.
    fusers = [p for p in pipeline if isinstance(p, FusePass)]
    rounds = [
        p for p in pipeline if not isinstance(p, (HoistPass, FusePass))
    ]

    def run_validated(the_pass: Pass) -> list[AppliedRewrite]:
        snapshot = clone_plan(optimized) if validate else None
        applied = the_pass.run(optimized, context)
        if applied and snapshot is not None:
            certificates.append(
                certify(
                    snapshot,
                    optimized,
                    pass_name=the_pass.name,
                    rewrites=len(applied),
                )
            )
        return applied

    for __ in range(MAX_PIPELINE_ROUNDS):
        changed = False
        for the_pass in rounds:
            applied = run_validated(the_pass)
            if applied:
                changed = True
                rewrites.extend(applied)
        if not changed:
            break
    for the_pass in hoisters:
        rewrites.extend(run_validated(the_pass))
    for the_pass in fusers:
        rewrites.extend(run_validated(the_pass))
    toposort_steps(optimized)
    recompute_predicted_bytes(optimized, num_workers, estimation_mode)
    if validate:
        certificates.append(
            certify(
                original,
                optimized,
                pass_name="pipeline",
                rewrites=len(rewrites) - len(plan.rewrites),
            )
        )
    optimized.rewrites = tuple(rewrites)
    optimized.certificates = tuple(certificates)
    return schedule_stages(optimized)

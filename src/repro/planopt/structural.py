"""Structural plan identity: one place that says "these compute the same".

Before this module, plan identity lived in two near-duplicate key
functions: the CSE pass's per-step structural keys (``repro.planopt.cse``)
and the translation validator's hash-consed symbolic values
(``repro.verify.certify``).  Both answer "does this step/plan compute the
same value under the same layout", but neither was usable as a *cache
key* for whole plans.  This module centralises all three granularities:

* :func:`step_structural_key` -- the CSE pass's per-step identity, moved
  here verbatim (``repro.planopt.cse.structural_key`` is now an alias).
* :func:`plan_structural_hash` -- a deterministic digest of a whole
  plan's structure: canonical step tokens in topological order, the
  output table, the cache pins, and the symbolic values of every program
  output as computed by the validator's interned
  :class:`~repro.verify.certify.Term` DAG.  Two plans with equal hashes
  compute the same outputs by the same steps under the same layouts; the
  digest is stable across processes (sha256 over canonical text, never
  Python's salted ``hash``), which is what lets ``repro serve`` publish
  it in byte-identical service reports.
* :func:`program_fingerprint` -- the *pre-planning* identity the
  :class:`~repro.serve.plancache.PlanCache` keys on: a digest of the
  serialised program (``repro.lang.serialize``) plus the planner knobs
  that change the resulting plan.  Computing it costs one JSON encode --
  orders of magnitude cheaper than planning -- so a cache hit genuinely
  skips planning and optimization.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    MatMulStep,
    Plan,
    RowAggStep,
    ScalarComputeStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)


def step_structural_key(step: Step) -> tuple | None:
    """A hashable identity for "computes the same value, same layout".

    ``None`` marks steps the CSE pass never merges: sources (merging two
    loads/randoms is the planner's job, and random seeds differ), and
    scalar-producing steps (driver scalars are cheap and name-keyed).
    """
    if isinstance(step, ExtendedStep):
        return ("ext", step.kind, step.source, step.target)
    if isinstance(step, MatMulStep):
        return ("mm", step.strategy, step.left, step.right,
                step.output.transposed, step.output.scheme)
    if isinstance(step, CellwiseStep):
        return ("cw", step.op.op, step.left, step.right,
                step.output.transposed, step.output.scheme)
    if isinstance(step, ScalarMatrixStep):
        return ("sm", step.op.op, step.op.scalar, step.source,
                step.output.transposed, step.output.scheme)
    if isinstance(step, UnaryStep):
        return ("un", step.op.func, step.source,
                step.output.transposed, step.output.scheme)
    if isinstance(step, RowAggStep):
        return ("ra", step.op.kind, step.strategy, step.source,
                step.output.transposed, step.output.scheme)
    if isinstance(step, (SourceStep, AggregateStep, ScalarComputeStep)):
        return None
    return None  # unknown step kinds are left alone


def _step_token(step: Step) -> str:
    """A canonical, per-step text token covering *every* step kind.

    The CSE key covers the six mergeable kinds; sources and scalar steps
    fall back to their (deterministic) ``str`` form, which carries the
    operator parameters -- including random seeds, so two programs that
    differ only in initialisation hash differently.
    """
    key = step_structural_key(step)
    if key is not None:
        return repr(tuple(str(part) for part in key))
    return str(step)


def _serialise_terms(values: dict[str, object]) -> list[str]:
    """Linearise interned Term DAGs into numbered, shared-node lines.

    Hash-consing makes structurally-equal terms *identical* objects, so a
    memoised walk is linear in the DAG size even when the denoted tree is
    exponential (the validator's SVD observation).  Nodes are numbered in
    first-visit order, which is deterministic given the sorted name order.
    """
    from repro.verify.certify import Term

    node_ids: dict[int, int] = {}
    lines: list[str] = []

    def visit(value: object) -> str:
        if not isinstance(value, Term):
            return repr(value)
        known = node_ids.get(id(value))
        if known is not None:
            return f"#{known}"
        args = [visit(arg) for arg in value.args]
        index = node_ids[id(value)] = len(node_ids)
        lines.append(f"#{index}=({value.head!r} {' '.join(args)})")
        return f"#{index}"

    for name in sorted(values):
        lines.append(f"{name}->{visit(values[name])}")
    return lines


def plan_structural_hash(plan: Plan) -> str:
    """A stable 16-hex-char digest of a plan's structure.

    Folds in, in order: every step's canonical token (topological step
    order -- the planner and optimizer emit deterministically ordered
    steps), the program-output table, the optimizer's cache pins, and the
    symbolic value of every output under the translation validator's
    interned Term semantics.  Stage numbers are deliberately excluded:
    stage assignment is derived from the step list, not structure.
    """
    from repro.verify.certify import value_summary

    digest = hashlib.sha256()
    for step in plan.steps:
        digest.update(_step_token(step).encode())
        digest.update(b"\n")
    for name in sorted(plan.outputs):
        digest.update(f"out {name}={plan.outputs[name]}\n".encode())
    for pin in plan.cache_pins:
        digest.update(f"pin {pin}\n".encode())
    summary = value_summary(plan)
    outputs = {
        name: summary.matrices[instance.name]
        for name, instance in plan.outputs.items()
        if instance.name in summary.matrices
    }
    for line in _serialise_terms(outputs):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def program_fingerprint(program: object, **knobs: object) -> str:
    """The pre-planning cache key: program structure + planner knobs.

    Accepts a :class:`~repro.lang.program.MatrixProgram` or a
    :class:`~repro.frontend.staged.StagedProgram` (fingerprinted as its
    prologue + body + condition + carry wiring).  ``knobs`` should carry
    everything that changes the plan for a fixed program: worker count,
    heuristic toggles, estimation mode, optimize flag, block size.
    Raises :class:`~repro.errors.ProgramError` for objects that cannot be
    serialised (callers treat that as "bypass the cache").
    """
    from repro.frontend.staged import StagedProgram
    from repro.lang.serialize import program_to_json

    digest = hashlib.sha256()
    if isinstance(program, StagedProgram):
        digest.update(b"staged\n")
        digest.update(program.name.encode())
        for label, segment in program.segments():
            digest.update(f"\n[{label}]\n".encode())
            digest.update(program_to_json(segment).encode())
        digest.update(f"\nwhile {program.condition.describe()}\n".encode())
        digest.update(repr(program.carried).encode())
        digest.update(repr(program.matrix_outputs).encode())
        digest.update(repr(program.scalar_outputs).encode())
        digest.update(f"\nmax_segments={program.max_segments}\n".encode())
    else:
        digest.update(program_to_json(program).encode())  # type: ignore[arg-type]
    digest.update(json.dumps(knobs, sort_keys=True, default=repr).encode())
    return digest.hexdigest()[:16]

"""The paper's benchmark applications as matrix programs (Appendix A)."""

from repro.programs.cf import build_cf_program
from repro.programs.gnmf import build_gnmf_program
from repro.programs.jacobi import build_jacobi_program, split_system
from repro.programs.linreg import DEFAULT_LAMBDA, build_linreg_program
from repro.programs.logreg import build_logreg_program
from repro.programs.pagerank import DAMPING, build_pagerank_program
from repro.programs.power_iteration import build_power_iteration_program
from repro.programs.ridge import build_ridge_program
from repro.programs.svd import (
    LanczosScalars,
    build_svd_program,
    singular_values,
    tridiagonal_matrix,
)

__all__ = [
    "DAMPING",
    "DEFAULT_LAMBDA",
    "LanczosScalars",
    "build_cf_program",
    "build_gnmf_program",
    "build_jacobi_program",
    "build_linreg_program",
    "build_logreg_program",
    "build_pagerank_program",
    "build_power_iteration_program",
    "build_ridge_program",
    "build_svd_program",
    "singular_values",
    "split_system",
    "tridiagonal_matrix",
]

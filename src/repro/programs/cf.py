"""Item-based collaborative filtering (paper Code 3, Appendix A.2).

``R`` records ratings with ``R[i, j]`` the rating of user ``j`` for item
``i``.  The item-item similarity matrix is ``R @ R^T``; predicted ratings
are ``R @ R^T @ R``, followed by a normalisation.  The paper's point
(Figure 9b, Section 6.4): both systems pick RMM strategies for the two
multiplies, but SystemML-S "needs to broadcast matrix R twice in each task
and partition the intermediate result R R^T" -- a dense ~300M-non-zero
matrix on Netflix -- while DMac's total communication is ``n x |R|``.

Defined through the :mod:`repro.frontend` compiler.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, matrix_input, matrix_program
from repro.frontend.dsl import output, sqrt, sum
from repro.lang.program import MatrixProgram


@matrix_program
def cf(R: Matrix):
    result = R @ R.T @ R
    norm = sqrt(sum(result * result))
    predict = result * (1.0 / norm)
    output(predict)


def build_cf_program(
    r_shape: tuple[int, int],
    r_sparsity: float,
) -> MatrixProgram:
    """Compile the collaborative-filtering program.

    Args:
        r_shape: ``(items, users)`` of the rating matrix ``R``.
        r_sparsity: declared non-zero fraction of ``R``.

    The paper's ``result.normalize`` is realised as scaling by the inverse
    Frobenius norm (any data-dependent rescaling exercises the same plan:
    an aggregate followed by a scalar-matrix multiply).
    """
    items, users = r_shape
    if items < 1 or users < 1:
        raise ProgramError(f"rating matrix must be non-empty, got {r_shape}")
    program = cf.compile(R=matrix_input((items, users), r_sparsity))
    assert isinstance(program, MatrixProgram)
    return program

"""Gaussian Non-Negative Matrix Factorisation (paper Code 1).

Finds ``W (d x k)`` and ``H (k x w)`` with ``V ~= W @ H`` via the
multiplicative updates of Lee & Seung::

    H = H * (W^T V) / (W^T W H)
    W = W * (V H^T) / (W H H^T)

This is the paper's primary benchmark (Figures 6 and 10): each iteration
touches ``W`` four times and ``W^T`` twice, so a dependency-blind planner
repartitions ``W`` four times per iteration while DMac partitions it once.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.lang.program import MatrixProgram, ProgramBuilder


def build_gnmf_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    factors: int = 200,
    iterations: int = 10,
    seed: int = 0,
) -> MatrixProgram:
    """Build the GNMF program for a ``d x w`` input of given sparsity.

    Args:
        v_shape: dimensions of the input matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V`` (Section 5.1: user
            supplied or pre-computed).
        factors: the factorisation rank (paper: 200 for Netflix).
        iterations: multiplicative-update iterations (paper: 10).
        seed: seed for the random initial factors.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    if factors < 1:
        raise ProgramError(f"factors must be >= 1, got {factors}")
    rows, cols = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (rows, cols), sparsity=v_sparsity)
    w = pb.random("W", (rows, factors), seed=seed)
    h = pb.random("H", (factors, cols), seed=seed + 1)
    for __ in range(iterations):
        h = pb.assign("H", h * (w.T @ v) / (w.T @ w @ h))
        w = pb.assign("W", w * (v @ h.T) / (w @ h @ h.T))
    pb.output(w)
    pb.output(h)
    return pb.build()

"""Gaussian Non-Negative Matrix Factorisation (paper Code 1).

Finds ``W (d x k)`` and ``H (k x w)`` with ``V ~= W @ H`` via the
multiplicative updates of Lee & Seung::

    H = H * (W^T V) / (W^T W H)
    W = W * (V H^T) / (W H H^T)

This is the paper's primary benchmark (Figures 6 and 10): each iteration
touches ``W`` four times and ``W^T`` twice, so a dependency-blind planner
repartitions ``W`` four times per iteration while DMac partitions it once.

Defined through the :mod:`repro.frontend` compiler: the decorated function
below *is* the program; :func:`build_gnmf_program` keeps the historical
factory signature and compiles it.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, matrix_input, matrix_program
from repro.frontend.dsl import output, random
from repro.lang.program import MatrixProgram


@matrix_program
def gnmf(V: Matrix, factors: int, iterations: int, seed: int = 0):
    W = random(V.rows, factors, seed=seed)
    H = random(factors, V.cols, seed=seed + 1)
    for _ in range(iterations):
        H = H * (W.T @ V) / (W.T @ W @ H)
        W = W * (V @ H.T) / (W @ H @ H.T)
    output(W)
    output(H)


def build_gnmf_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    factors: int = 200,
    iterations: int = 10,
    seed: int = 0,
) -> MatrixProgram:
    """Compile the GNMF program for a ``d x w`` input of given sparsity.

    Args:
        v_shape: dimensions of the input matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V`` (Section 5.1: user
            supplied or pre-computed).
        factors: the factorisation rank (paper: 200 for Netflix).
        iterations: multiplicative-update iterations (paper: 10).
        seed: seed for the random initial factors.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    if factors < 1:
        raise ProgramError(f"factors must be >= 1, got {factors}")
    program = gnmf.compile(
        V=matrix_input(v_shape, v_sparsity),
        factors=factors,
        iterations=iterations,
        seed=seed,
    )
    assert isinstance(program, MatrixProgram)
    return program

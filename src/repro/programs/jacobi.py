"""Jacobi iteration for linear systems (extension application).

Solves ``A x = b`` for diagonally-dominant ``A = D + R`` (diagonal plus
remainder) with the fixpoint iteration::

    x_{k+1} = D^{-1} (b - R x_k)

Complementary to the CG solver (Code 4): the loop body is a single
``R @ x`` plus cell-wise work, and -- unlike every paper program -- it never
reads a transpose, so the plan exercises pure Reference dependencies: after
the first iteration nothing but the small iterate vector ever moves.

Inputs: ``R`` (the off-diagonal part), ``dinv`` (the element-wise inverse
diagonal, ``n x 1``) and ``b`` (the right-hand side, ``n x 1``).
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.lang.program import MatrixProgram, ProgramBuilder


def build_jacobi_program(
    n: int,
    r_sparsity: float,
    iterations: int = 25,
) -> MatrixProgram:
    """Build the Jacobi solver program for an ``n x n`` system.

    Args:
        n: system size.
        r_sparsity: declared non-zero fraction of the off-diagonal part.
        iterations: fixpoint iterations.

    Outputs the iterate ``x`` and the final squared residual
    ``||dinv (b - R x) - x||^2`` as the driver scalar ``delta2`` (the
    natural Jacobi stopping quantity).
    """
    if n < 1:
        raise ProgramError(f"system size must be >= 1, got {n}")
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    pb = ProgramBuilder()
    remainder = pb.load("R", (n, n), sparsity=r_sparsity)
    dinv = pb.load("dinv", (n, 1), sparsity=1.0)
    rhs = pb.load("b", (n, 1), sparsity=1.0)
    x = pb.full("x", (n, 1), 0.0)

    for __ in range(iterations):
        x = pb.assign("x", dinv * (rhs - remainder @ x))

    step = pb.assign("step", dinv * (rhs - remainder @ x) - x)
    delta2 = pb.scalar("delta2", (step * step).sum())
    pb.scalar_output(delta2)
    pb.output(x)
    return pb.build()


def split_system(matrix, rhs):
    """Split a dense system ``A x = b`` into Jacobi inputs
    ``(R, dinv, b)`` -- a driver-side convenience for examples/tests."""
    import numpy as np

    a = np.asarray(matrix, dtype=np.float64)
    diagonal = np.diag(a).copy()
    if np.any(diagonal == 0):
        raise ProgramError("Jacobi needs a zero-free diagonal")
    remainder = a - np.diag(diagonal)
    dinv = (1.0 / diagonal).reshape(-1, 1)
    return remainder, dinv, np.asarray(rhs, dtype=np.float64).reshape(-1, 1)

"""Jacobi iteration for linear systems (extension application).

Solves ``A x = b`` for diagonally-dominant ``A = D + R`` (diagonal plus
remainder) with the fixpoint iteration::

    x_{k+1} = D^{-1} (b - R x_k)

Complementary to the CG solver (Code 4): the loop body is a single
``R @ x`` plus cell-wise work, and -- unlike every paper program -- it never
reads a transpose, so the plan exercises pure Reference dependencies: after
the first iteration nothing but the small iterate vector ever moves.

Inputs: ``R`` (the off-diagonal part), ``dinv`` (the element-wise inverse
diagonal, ``n x 1``) and ``b`` (the right-hand side, ``n x 1``).
Defined through the :mod:`repro.frontend` compiler.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, matrix_input, matrix_program
from repro.frontend.dsl import full, output, output_scalar, sum
from repro.lang.program import MatrixProgram


@matrix_program
def jacobi(R: Matrix, dinv: Matrix, b: Matrix, iterations: int):
    x = full(R.rows, 1, 0.0)
    for _ in range(iterations):
        x = dinv * (b - R @ x)
    step = dinv * (b - R @ x) - x
    delta2 = sum(step * step)
    output_scalar(delta2)
    output(x)


def build_jacobi_program(
    n: int,
    r_sparsity: float,
    iterations: int = 25,
) -> MatrixProgram:
    """Compile the Jacobi solver program for an ``n x n`` system.

    Args:
        n: system size.
        r_sparsity: declared non-zero fraction of the off-diagonal part.
        iterations: fixpoint iterations.

    Outputs the iterate ``x`` and the final squared residual
    ``||dinv (b - R x) - x||^2`` as the driver scalar ``delta2`` (the
    natural Jacobi stopping quantity).
    """
    if n < 1:
        raise ProgramError(f"system size must be >= 1, got {n}")
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    program = jacobi.compile(
        R=matrix_input((n, n), r_sparsity),
        dinv=matrix_input((n, 1)),
        b=matrix_input((n, 1)),
        iterations=iterations,
    )
    assert isinstance(program, MatrixProgram)
    return program


def split_system(matrix, rhs):
    """Split a dense system ``A x = b`` into Jacobi inputs
    ``(R, dinv, b)`` -- a driver-side convenience for examples/tests."""
    import numpy as np

    a = np.asarray(matrix, dtype=np.float64)
    diagonal = np.diag(a).copy()
    if np.any(diagonal == 0):
        raise ProgramError("Jacobi needs a zero-free diagonal")
    remainder = a - np.diag(diagonal)
    dinv = (1.0 / diagonal).reshape(-1, 1)
    return remainder, dinv, np.asarray(rhs, dtype=np.float64).reshape(-1, 1)

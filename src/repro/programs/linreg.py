"""Linear regression by conjugate gradient (paper Code 4, Appendix A.3).

Solves the ridge-regularised normal equations
``(V^T V + lambda I) w = V^T y`` with CG.  Each iteration's dominant work is
``q = V^T (V p)``; the paper's point (Figures 9b and 10b/d): DMac partitions
``V`` once for the *whole* program -- ``V^T``'s Column scheme comes free from
``V``'s Row scheme via the Transpose dependency -- while SystemML-S
repartitions ``V`` twice per iteration.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.lang.program import MatrixProgram, ProgramBuilder

#: The paper's regularisation constant (Code 4, line 5).
DEFAULT_LAMBDA = 1e-6


def build_linreg_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    seed: int = 0,
    ridge: float = DEFAULT_LAMBDA,
) -> MatrixProgram:
    """Build the CG linear-regression program.

    Args:
        v_shape: ``(examples, features)`` of the design matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V``.
        iterations: CG iterations (paper: 10).
        seed: seed for the initial weight vector.
        ridge: the ``lambda`` regulariser.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    examples, features = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (examples, features), sparsity=v_sparsity)
    y = pb.load("y", (examples, 1), sparsity=1.0)
    # Code 4 initialises ``w`` randomly but seeds CG with the w=0 residual
    # ``r = -V^T y``; with a random start the output would be offset by w0.
    # We start at zero so the program actually solves the normal equations.
    w = pb.full("w", (features, 1), 0.0)

    r = pb.assign("r", (v.T @ y) * -1.0)
    p = pb.assign("p", r * -1.0)
    norm_r2 = pb.scalar("norm_r2", (r * r).sum())

    for __ in range(iterations):
        q = pb.assign("q", (v.T @ (v @ p)) + p * ridge)
        alpha = pb.scalar("alpha", norm_r2 / (p.T @ q).value())
        w = pb.assign("w", w + p * alpha)
        old_norm_r2 = norm_r2
        r = pb.assign("r", r + q * alpha)
        norm_r2 = pb.scalar("norm_r2", (r * r).sum())
        beta = pb.scalar("beta", norm_r2 / old_norm_r2)
        p = pb.assign("p", r * -1.0 + p * beta)

    pb.output(w)
    pb.scalar_output(norm_r2)
    return pb.build()

"""Linear regression by conjugate gradient (paper Code 4, Appendix A.3).

Solves the ridge-regularised normal equations
``(V^T V + lambda I) w = V^T y`` with CG.  Each iteration's dominant work is
``q = V^T (V p)``; the paper's point (Figures 9b and 10b/d): DMac partitions
``V`` once for the *whole* program -- ``V^T``'s Column scheme comes free from
``V``'s Row scheme via the Transpose dependency -- while SystemML-S
repartitions ``V`` twice per iteration.

Defined through the :mod:`repro.frontend` compiler; note the bare-name
scalar alias ``old_norm_r2 = norm_r2``, which binds a second name to the
same driver scalar without emitting an operator.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import full, output, output_scalar, sum, value
from repro.lang.program import MatrixProgram

#: The paper's regularisation constant (Code 4, line 5).
DEFAULT_LAMBDA = 1e-6


@matrix_program
def linreg(V: Matrix, y: Matrix, iterations: int, ridge: Scalar = DEFAULT_LAMBDA):
    # Code 4 initialises ``w`` randomly but seeds CG with the w=0 residual
    # ``r = -V^T y``; with a random start the output would be offset by w0.
    # We start at zero so the program actually solves the normal equations.
    w = full(V.cols, 1, 0.0)
    r = (V.T @ y) * -1.0
    p = r * -1.0
    norm_r2 = sum(r * r)
    for _ in range(iterations):
        q = (V.T @ (V @ p)) + p * ridge
        alpha = norm_r2 / value(p.T @ q)
        w = w + p * alpha
        old_norm_r2 = norm_r2
        r = r + q * alpha
        norm_r2 = sum(r * r)
        beta = norm_r2 / old_norm_r2
        p = r * -1.0 + p * beta
    output(w)
    output_scalar(norm_r2)


def build_linreg_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    seed: int = 0,
    ridge: float = DEFAULT_LAMBDA,
) -> MatrixProgram:
    """Compile the CG linear-regression program.

    Args:
        v_shape: ``(examples, features)`` of the design matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V``.
        iterations: CG iterations (paper: 10).
        seed: kept for signature compatibility (the zero start ignores it).
        ridge: the ``lambda`` regulariser.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    examples, features = v_shape
    program = linreg.compile(
        V=matrix_input((examples, features), v_sparsity),
        y=matrix_input((examples, 1)),
        iterations=iterations,
        ridge=ridge,
    )
    assert isinstance(program, MatrixProgram)
    return program

"""Logistic regression by gradient descent (extension application).

Not one of the paper's five appendix programs, but exactly the class of
workload the paper's introduction motivates -- an iterative ML algorithm
whose inner loop is ``V^T (sigmoid(V w) - y)``.  Like linear regression it
touches ``V`` and ``V^T`` every iteration, so DMac's Transpose dependency
keeps the design matrix partitioned once for the whole program; it also
exercises the element-wise unary operator (``sigmoid``) end to end.

Defined through the :mod:`repro.frontend` compiler.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import full, output, output_scalar, sigmoid, sum
from repro.lang.program import MatrixProgram


@matrix_program
def logreg(V: Matrix, y: Matrix, iterations: int, learning_rate: Scalar = 0.5):
    w = full(V.cols, 1, 0.0)
    step = learning_rate / V.rows
    for _ in range(iterations):
        p = sigmoid(V @ w)
        r = p - y
        g = V.T @ r
        w = w - g * step
    sq_err = sum(r * r)
    output_scalar(sq_err)
    output(w)


def build_logreg_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    learning_rate: float = 0.5,
) -> MatrixProgram:
    """Compile the gradient-descent logistic-regression program.

    Args:
        v_shape: ``(examples, features)`` of the design matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V``.
        iterations: gradient steps.
        learning_rate: step size (applied to the mean gradient).

    Outputs the weight vector ``w`` and reports the final squared
    prediction error as the driver scalar ``sq_err``.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    if learning_rate <= 0:
        raise ProgramError(f"learning_rate must be positive, got {learning_rate}")
    examples, features = v_shape
    program = logreg.compile(
        V=matrix_input((examples, features), v_sparsity),
        y=matrix_input((examples, 1)),
        iterations=iterations,
        learning_rate=learning_rate,
    )
    assert isinstance(program, MatrixProgram)
    return program

"""Logistic regression by gradient descent (extension application).

Not one of the paper's five appendix programs, but exactly the class of
workload the paper's introduction motivates -- an iterative ML algorithm
whose inner loop is ``V^T (sigmoid(V w) - y)``.  Like linear regression it
touches ``V`` and ``V^T`` every iteration, so DMac's Transpose dependency
keeps the design matrix partitioned once for the whole program; it also
exercises the element-wise unary operator (``sigmoid``) end to end.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.lang.program import MatrixProgram, ProgramBuilder


def build_logreg_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    learning_rate: float = 0.5,
) -> MatrixProgram:
    """Build the gradient-descent logistic-regression program.

    Args:
        v_shape: ``(examples, features)`` of the design matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V``.
        iterations: gradient steps.
        learning_rate: step size (applied to the mean gradient).

    Outputs the weight vector ``w`` and reports the final squared
    prediction error as the driver scalar ``sq_err``.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    if learning_rate <= 0:
        raise ProgramError(f"learning_rate must be positive, got {learning_rate}")
    examples, features = v_shape
    pb = ProgramBuilder()
    v = pb.load("V", (examples, features), sparsity=v_sparsity)
    y = pb.load("y", (examples, 1), sparsity=1.0)
    w = pb.full("w", (features, 1), 0.0)

    step = learning_rate / examples
    for __ in range(iterations):
        predictions = pb.assign("p", (v @ w).sigmoid())
        residual = pb.assign("r", predictions - y)
        gradient = pb.assign("g", v.T @ residual)
        w = pb.assign("w", w - gradient * step)

    sq_err = pb.scalar("sq_err", (residual * residual).sum())
    pb.scalar_output(sq_err)
    pb.output(w)
    return pb.build()

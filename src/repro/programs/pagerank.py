"""PageRank (paper Code 2, Appendix A.1).

``rank`` is a ``1 x N`` vector, ``link`` the row-normalised adjacency
matrix; each iteration computes::

    rank = (rank @ link) * 0.85 + D * 0.15

where ``D`` is the uniform teleport vector.  The paper's point (Figure 9a):
DMac caches the Column scheme of ``link`` across iterations (Reference
dependency) so only the tiny ``rank`` vector is broadcast each round, while
SystemML-S repartitions the big ``link`` matrix every iteration.

Defined through the :mod:`repro.frontend` compiler; the ``normalize``
variant is a compile-time ``bool`` parameter whose ``if`` branch is
resolved during lowering.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import full, output, random, row_sums
from repro.lang.program import MatrixProgram

#: The standard damping factor used in the paper's program.
DAMPING = 0.85


@matrix_program
def pagerank(
    link: Matrix,
    iterations: int,
    seed: int = 0,
    damping: Scalar = DAMPING,
    normalize: bool = False,
):
    nodes = link.cols
    if normalize:
        ones = full(1, nodes, 1.0)
        link_n = link / (row_sums(link) @ ones)
        link = link_n
    rank = random(1, nodes, seed=seed)
    D = full(1, nodes, 1.0 / nodes)
    for _ in range(iterations):
        rank = (rank @ link) * damping + D * (1.0 - damping)
    output(rank)


def build_pagerank_program(
    nodes: int,
    link_sparsity: float,
    iterations: int = 10,
    seed: int = 0,
    damping: float = DAMPING,
    normalize: bool = False,
) -> MatrixProgram:
    """Compile the PageRank program over an ``N x N`` link matrix.

    Args:
        nodes: node count ``N``.
        link_sparsity: non-zero fraction of the link matrix (edges / N^2).
        iterations: power iterations (paper: 10).
        seed: seed for the random initial rank vector.
        damping: the jump probability (paper: 0.85).
        normalize: when True the program row-normalises a raw adjacency
            matrix itself (``link / (rowSums(link) @ ones)``) instead of
            expecting a pre-normalised input -- a one-off distributed
            pre-processing stage in front of the paper's Code 2.
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    if not 0 < damping < 1:
        raise ProgramError(f"damping must lie in (0, 1), got {damping}")
    program = pagerank.compile(
        link=matrix_input((nodes, nodes), link_sparsity),
        iterations=iterations,
        seed=seed,
        damping=damping,
        normalize=normalize,
    )
    assert isinstance(program, MatrixProgram)
    return program

"""Power iteration with a data-dependent convergence loop (frontend demo).

The first program in the repo whose iteration count is decided *at run
time*: the ``while`` loop below compiles to a
:class:`~repro.frontend.staged.StagedProgram` -- prologue plus a loop body
compiled once -- and :meth:`repro.session.DMacSession.run_staged` keeps
appending body segments, each one a fully planned/linted/verified plan,
until the residual ``||A x - lambda x||`` drops below ``eps``.

The carried matrices show both dependency kinds the staging machinery
supports: ``y`` is loop-carried (each segment reads the previous
segment's iterate) while ``A`` is loop-invariant (every segment re-reads
the runtime input).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProgramError
from repro.frontend import Matrix, Scalar, StagedProgram, matrix_input, matrix_program
from repro.frontend.dsl import full, norm2, output, output_scalar, value


@matrix_program(max_segments=500)
def power_iteration(A: Matrix, eps: Scalar):
    x = full(A.rows, 1, 1.0 / A.rows)
    y = A @ x
    lam = value(x.T @ y)
    while norm2(y - x * lam) > eps:
        nrm = norm2(y)
        x = y / nrm
        y = A @ x
        lam = value(x.T @ y)
    output(x)
    output_scalar(lam)


def build_power_iteration_program(n: int, eps: float = 1e-4) -> StagedProgram:
    """Compile the convergence-loop power iteration for an ``n x n`` input.

    Args:
        n: matrix dimension.
        eps: stop once ``||A x - lambda x||_2 < eps``.
    """
    if n < 1:
        raise ProgramError(f"matrix dimension must be >= 1, got {n}")
    if eps <= 0:
        raise ProgramError(f"eps must be positive, got {eps}")
    staged = power_iteration.compile(A=matrix_input((n, n)), eps=eps)
    assert isinstance(staged, StagedProgram)
    return staged


def dominant_eigen_dataset(n: int, seed: int = 0, gap: float = 3.0) -> np.ndarray:
    """A symmetric ``n x n`` matrix with a planted dominant eigenpair.

    ``gap`` scales the planted eigenvalue against the ~0.05-magnitude
    symmetric noise floor, so power iteration converges in a handful of
    segments -- small enough for tests, large enough to need more than one.
    """
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, 1))
    u /= np.linalg.norm(u)
    noise = rng.standard_normal((n, n)) * 0.05
    return gap * (u @ u.T) + (noise + noise.T) / 2.0

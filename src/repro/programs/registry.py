"""Declarative program registry: one table from app name to workload.

Previously the CLI owned a hardcoded ``APPS`` tuple plus an if/elif
``_workload`` chain, and the benchmarks and verification tests re-derived
the same app list from it.  This module is now the single source of
truth: each :class:`ProgramSpec` names a program, says which tier it
belongs to (``paper`` for the seven DMac applications, ``example`` for
frontend-only demos), whether it compiles to a staged convergence loop,
and how to build a runnable workload (program + input arrays) from one
shared :class:`WorkloadParams` record.

The CLI, ``benchmarks/harness.py`` and ``tests/verify/_workloads.py``
all consume this table; adding a program here makes it runnable
everywhere at once.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Union

import numpy as np

from repro.errors import ProgramError
from repro.frontend.staged import StagedProgram
from repro.lang.program import MatrixProgram

WorkloadProgram = Union[MatrixProgram, StagedProgram]

#: Registry tiers: the paper's seven applications vs. frontend demos.
TIER_PAPER = "paper"
TIER_EXAMPLE = "example"


@dataclasses.dataclass(frozen=True)
class WorkloadParams:
    """Scale knobs shared by every registered workload builder.

    Defaults mirror the CLI defaults; each builder reads only the fields
    that make sense for its program.
    """

    scale: float = 3e-3
    seed: int = 0
    factors: int = 16
    iterations: int = 5
    graph: str = "soc-pokec"
    rows: int = 2000
    features: int = 80
    sparsity: float = 0.1
    rank: int = 10
    eps: float = 1e-3
    ridge: float = 1e-3

    @classmethod
    def from_namespace(cls, args: object) -> "WorkloadParams":
        """Build params from any attribute bag (e.g. argparse.Namespace).

        Missing attributes keep their defaults, so callers only need to
        supply the knobs they expose.
        """
        kwargs = {
            field.name: getattr(args, field.name)
            for field in dataclasses.fields(cls)
            if hasattr(args, field.name)
        }
        return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class Workload:
    """A runnable parameterisation of a registered program."""

    program: WorkloadProgram
    inputs: dict[str, np.ndarray]
    #: Program-specific companion data (the SVD's Lanczos scalar names).
    extra: object = None


@dataclasses.dataclass(frozen=True)
class ProgramSpec:
    """One registry row."""

    name: str
    title: str
    tier: str
    staged: bool
    build: Callable[[WorkloadParams], Workload]


def _density(array: np.ndarray) -> float:
    return float(np.count_nonzero(array)) / array.size


# -- workload builders (datasets identical to the pre-registry CLI) ------


def _gnmf_workload(params: WorkloadParams) -> Workload:
    from repro.datasets import netflix_like
    from repro.programs.gnmf import build_gnmf_program

    data = netflix_like(scale=params.scale, seed=params.seed)
    program = build_gnmf_program(
        data.shape,
        _density(data),
        factors=params.factors,
        iterations=params.iterations,
    )
    return Workload(program, {"V": data})


def _pagerank_workload(params: WorkloadParams) -> Workload:
    from repro.datasets import graph_like, row_normalize
    from repro.programs.pagerank import build_pagerank_program

    link = row_normalize(
        graph_like(params.graph, scale=params.scale, seed=params.seed)
    )
    program = build_pagerank_program(
        link.shape[0], _density(link), iterations=params.iterations
    )
    return Workload(program, {"link": link})


def _regression_design(params: WorkloadParams) -> np.ndarray:
    from repro.datasets import sparse_random

    return sparse_random(
        params.rows, params.features, params.sparsity, seed=params.seed
    )


def _linreg_workload(params: WorkloadParams) -> Workload:
    from repro.datasets import sparse_random
    from repro.programs.linreg import build_linreg_program

    design = _regression_design(params)
    target = sparse_random(params.rows, 1, 1.0, seed=params.seed + 1)
    program = build_linreg_program(
        design.shape, _density(design), iterations=params.iterations
    )
    return Workload(program, {"V": design, "y": target})


def _logreg_workload(params: WorkloadParams) -> Workload:
    from repro.programs.logreg import build_logreg_program

    design = _regression_design(params)
    rng = np.random.default_rng(params.seed + 2)
    labels = (rng.random((params.rows, 1)) > 0.5).astype(float)
    program = build_logreg_program(
        design.shape, _density(design), iterations=params.iterations
    )
    return Workload(program, {"V": design, "y": labels})


def _jacobi_workload(params: WorkloadParams) -> Workload:
    from repro.programs.jacobi import build_jacobi_program, split_system

    rng = np.random.default_rng(params.seed)
    n = params.rows
    matrix = rng.random((n, n)) * (rng.random((n, n)) < params.sparsity)
    np.fill_diagonal(matrix, np.abs(matrix).sum(axis=1) + 1.0)
    remainder, dinv, rhs = split_system(matrix, rng.random((n, 1)))
    program = build_jacobi_program(
        n, _density(remainder), iterations=params.iterations
    )
    return Workload(program, {"R": remainder, "dinv": dinv, "b": rhs})


def _cf_workload(params: WorkloadParams) -> Workload:
    from repro.datasets import netflix_like
    from repro.programs.cf import build_cf_program

    ratings = netflix_like(scale=params.scale, seed=params.seed).T
    program = build_cf_program(ratings.shape, _density(ratings))
    return Workload(program, {"R": ratings})


def _svd_workload(params: WorkloadParams) -> Workload:
    from repro.datasets import netflix_like
    from repro.programs.svd import build_svd_program

    data = netflix_like(scale=params.scale, seed=params.seed)
    program, names = build_svd_program(
        data.shape, _density(data), rank=params.rank
    )
    return Workload(program, {"V": data}, extra=names)


def _powiter_workload(params: WorkloadParams) -> Workload:
    from repro.programs.power_iteration import (
        build_power_iteration_program,
        dominant_eigen_dataset,
    )

    n = params.rows
    staged = build_power_iteration_program(n, eps=params.eps)
    data = dominant_eigen_dataset(n, seed=params.seed)
    return Workload(staged, {"A": data})


def _ridge_workload(params: WorkloadParams) -> Workload:
    from repro.datasets import sparse_random
    from repro.programs.ridge import build_ridge_program

    design = _regression_design(params)
    target = sparse_random(params.rows, 1, 1.0, seed=params.seed + 1)
    program = build_ridge_program(
        design.shape,
        _density(design),
        iterations=params.iterations,
        lam=params.ridge,
    )
    return Workload(program, {"V": design, "y": target})


# -- the registry --------------------------------------------------------

SPECS: tuple[ProgramSpec, ...] = (
    ProgramSpec(
        "gnmf",
        "Gaussian non-negative matrix factorisation (paper Code 1)",
        TIER_PAPER,
        False,
        _gnmf_workload,
    ),
    ProgramSpec(
        "pagerank",
        "PageRank power iterations (paper Code 2)",
        TIER_PAPER,
        False,
        _pagerank_workload,
    ),
    ProgramSpec(
        "linreg",
        "Linear regression, conjugate gradient (paper Code 3)",
        TIER_PAPER,
        False,
        _linreg_workload,
    ),
    ProgramSpec(
        "logreg",
        "Logistic regression, gradient descent (paper Code 4)",
        TIER_PAPER,
        False,
        _logreg_workload,
    ),
    ProgramSpec(
        "jacobi",
        "Jacobi iteration for linear systems (paper Appendix A.2)",
        TIER_PAPER,
        False,
        _jacobi_workload,
    ),
    ProgramSpec(
        "cf",
        "Item-item collaborative filtering (paper Appendix A.3)",
        TIER_PAPER,
        False,
        _cf_workload,
    ),
    ProgramSpec(
        "svd",
        "Lanczos SVD (paper Code 5, Appendix A.4)",
        TIER_PAPER,
        False,
        _svd_workload,
    ),
    ProgramSpec(
        "powiter",
        "Power iteration with while-convergence loop (frontend demo)",
        TIER_EXAMPLE,
        True,
        _powiter_workload,
    ),
    ProgramSpec(
        "ridge",
        "Ridge regression, gradient descent (frontend demo)",
        TIER_EXAMPLE,
        False,
        _ridge_workload,
    ),
)

_BY_NAME = {spec.name: spec for spec in SPECS}

#: The paper's seven applications, in the paper's presentation order.
PAPER_APPS: tuple[str, ...] = tuple(
    spec.name for spec in SPECS if spec.tier == TIER_PAPER
)

#: Every registered program name, paper tier first.
ALL_APPS: tuple[str, ...] = tuple(spec.name for spec in SPECS)


def get_spec(name: str) -> ProgramSpec:
    """Look up a registry row, raising :class:`ProgramError` when absent."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(ALL_APPS)
        raise ProgramError(
            f"unknown application {name!r} (registered: {known})"
        ) from None


def registered_names(tier: str | None = None) -> tuple[str, ...]:
    """Registered program names, optionally restricted to one tier."""
    if tier is None:
        return ALL_APPS
    return tuple(spec.name for spec in SPECS if spec.tier == tier)


def build_workload(name: str, params: WorkloadParams | None = None) -> Workload:
    """Instantiate a registered program with its canonical dataset."""
    return get_spec(name).build(params if params is not None else WorkloadParams())


#: Curated app rotations for the service layer (:mod:`repro.serve`): batch
#: generators and benchmarks draw jobs from one of these mixes.  Every name
#: must be registered above; ``mixed-staged`` deliberately includes the
#: staged ``powiter`` so service batches exercise dynamic plan extension.
SERVICE_MIXES: dict[str, tuple[str, ...]] = {
    "paper-small": ("pagerank", "linreg", "jacobi"),
    "mixed-staged": ("gnmf", "powiter", "ridge"),
    "cache-friendly": ("pagerank", "pagerank", "linreg"),
}

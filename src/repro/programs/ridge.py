"""Ridge regression by gradient descent (frontend-only application).

A deliberately frontend-native program: it has no hand-built
``ProgramBuilder`` ancestor and exists only as the decorated function
below.  The loop body ``V^T (V w - y) + lambda w`` is the same
touch-``V``-and-``V^T``-every-iteration pattern as linear/logistic
regression, so DMac's Transpose dependency keeps the design matrix
partitioned once across the unrolled plan.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.frontend import Matrix, Scalar, matrix_input, matrix_program
from repro.frontend.dsl import full, output, output_scalar, sum
from repro.lang.program import MatrixProgram


@matrix_program
def ridge(V: Matrix, y: Matrix, iterations: int, lam: Scalar, step: Scalar):
    w = full(V.cols, 1, 0.0)
    rate = step / V.rows
    for _ in range(iterations):
        g = V.T @ (V @ w - y) + w * lam
        w = w - g * rate
    r = V @ w - y
    sq_err = sum(r * r)
    output(w)
    output_scalar(sq_err)


def build_ridge_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    iterations: int = 10,
    lam: float = 1e-3,
    step: float = 0.5,
) -> MatrixProgram:
    """Compile the gradient-descent ridge-regression program.

    Args:
        v_shape: ``(examples, features)`` of the design matrix ``V``.
        v_sparsity: declared non-zero fraction of ``V``.
        iterations: gradient steps.
        lam: the L2 regulariser weight.
        step: step size (applied to the mean gradient).
    """
    if iterations < 1:
        raise ProgramError(f"iterations must be >= 1, got {iterations}")
    if step <= 0:
        raise ProgramError(f"step must be positive, got {step}")
    examples, features = v_shape
    program = ridge.compile(
        V=matrix_input((examples, features), v_sparsity),
        y=matrix_input((examples, 1)),
        iterations=iterations,
        lam=lam,
        step=step,
    )
    assert isinstance(program, MatrixProgram)
    return program

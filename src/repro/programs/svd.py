"""Singular value decomposition via Lanczos (paper Code 5, Appendix A.4).

The paper runs the Lanczos algorithm on the Gram matrix ``V^T V``: each
iteration's distributed work is ``w = V^T (V v_c)`` -- the same core as
linear regression, and the reason DMac avoids the redundant repartitions of
``V`` (Section 6.4).  The scalars ``alpha_i`` / ``beta_i`` accumulate into
a local tridiagonal matrix whose eigenvalues approximate those of
``V^T V``; singular values of ``V`` are their square roots.

The published pseudo-code has two slips (``alpha`` computed against ``vp``
and the vectors never normalised); this implementation follows the
standard three-term Lanczos recurrence, which is clearly what ran.

Defined through the :mod:`repro.frontend` compiler; the scalar version
names (``alpha``, ``alpha@2``, ...) are recovered from the compiled
program's ``scalar_outputs`` to rebuild :class:`LanczosScalars`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ProgramError
from repro.frontend import Matrix, matrix_input, matrix_program
from repro.frontend.dsl import full, norm2, output, output_scalar, random, value
from repro.lang.program import MatrixProgram


@dataclasses.dataclass(frozen=True)
class LanczosScalars:
    """The scalar version names the SVD program reports."""

    alphas: tuple[str, ...]
    betas: tuple[str, ...]  # betas[i] couples iterations i and i+1


@matrix_program
def svd(V: Matrix, rank: int, seed: int = 0):
    vc = random(V.cols, 1, seed=seed)
    start_norm = norm2(vc)
    vc = vc * (1.0 / start_norm)
    vp = full(V.cols, 1, 0.0)
    beta_prev = 0.0
    for i in range(rank):
        w = V.T @ (V @ vc)
        alpha = value(vc.T @ w)
        output_scalar(alpha)
        w = w - vp * beta_prev
        w = w - vc * alpha
        if i + 1 < rank:
            beta = norm2(w)
            output_scalar(beta)
            vp = vc
            vc = w * (1.0 / beta)
            beta_prev = beta
    output(vc)


def build_svd_program(
    v_shape: tuple[int, int],
    v_sparsity: float,
    rank: int = 10,
    seed: int = 0,
) -> tuple[MatrixProgram, LanczosScalars]:
    """Compile the Lanczos-SVD program.

    Args:
        v_shape: dimensions of the matrix to decompose.
        v_sparsity: declared non-zero fraction of ``V``.
        rank: desired rank of the approximation (Lanczos iterations).
        seed: seed for the start vector.

    Returns the program plus the scalar names holding the tridiagonal
    coefficients.
    """
    if rank < 1:
        raise ProgramError(f"rank must be >= 1, got {rank}")
    rows, cols = v_shape
    program = svd.compile(
        V=matrix_input((rows, cols), v_sparsity), rank=rank, seed=seed
    )
    assert isinstance(program, MatrixProgram)
    return program, lanczos_scalars(program)


def lanczos_scalars(program: MatrixProgram) -> LanczosScalars:
    """Recover the alpha/beta version names from a compiled SVD program."""
    alphas = tuple(
        name
        for name in program.scalar_outputs
        if name == "alpha" or name.startswith("alpha@")
    )
    betas = tuple(
        name
        for name in program.scalar_outputs
        if name == "beta" or name.startswith("beta@")
    )
    return LanczosScalars(alphas, betas)


def tridiagonal_matrix(
    scalars: dict[str, float], names: LanczosScalars
) -> np.ndarray:
    """Assemble the Lanczos tridiagonal ``T`` from computed scalars
    (the paper's driver-local ``triDiag``)."""
    rank = len(names.alphas)
    tri = np.zeros((rank, rank), dtype=np.float64)
    for i, alpha in enumerate(names.alphas):
        tri[i, i] = scalars[alpha]
    for i, beta in enumerate(names.betas):
        tri[i, i + 1] = scalars[beta]
        tri[i + 1, i] = scalars[beta]
    return tri


def singular_values(
    scalars: dict[str, float], names: LanczosScalars
) -> np.ndarray:
    """Approximate singular values of ``V``: square roots of the (clipped)
    eigenvalues of the tridiagonal matrix, descending."""
    tri = tridiagonal_matrix(scalars, names)
    eigenvalues = np.linalg.eigvalsh(tri)
    return np.sqrt(np.clip(eigenvalues, 0.0, None))[::-1]

"""In-process Spark-like substrate with metered communication.

Everything that crosses a (logical) worker boundary goes through the shuffle
service or the broadcast facility, both of which report to the single
:class:`CommunicationLedger` and advance the :class:`SimulatedClock` -- the
two instruments from which every benchmark series in this reproduction is
read.
"""

from repro.rdd.broadcast import Broadcast
from repro.rdd.clock import SimulatedClock, TimeBreakdown
from repro.rdd.context import ClusterContext
from repro.rdd.ledger import CommunicationLedger, TransferRecord
from repro.rdd.partitioner import (
    ColumnPartitioner,
    HashPartitioner,
    Partitioner,
    RowPartitioner,
)
from repro.rdd.rdd import RDD
from repro.rdd.shuffle import shuffle
from repro.rdd.sizeof import RECORD_OVERHEAD_BYTES, model_sizeof

__all__ = [
    "Broadcast",
    "ClusterContext",
    "ColumnPartitioner",
    "CommunicationLedger",
    "HashPartitioner",
    "Partitioner",
    "RDD",
    "RECORD_OVERHEAD_BYTES",
    "RowPartitioner",
    "SimulatedClock",
    "TimeBreakdown",
    "TransferRecord",
    "model_sizeof",
    "shuffle",
]

"""Broadcast variables: a read-only value replicated to every worker."""

from __future__ import annotations


class Broadcast:
    """Handle to a value that has been replicated to all workers.

    Created via :meth:`repro.rdd.context.ClusterContext.broadcast`, which
    meters the replication traffic; the handle itself is free to pass around.
    """

    __slots__ = ("_value", "nbytes")

    def __init__(self, value: object, nbytes: int) -> None:
        self._value = value
        self.nbytes = nbytes

    @property
    def value(self) -> object:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Broadcast(nbytes={self.nbytes})"

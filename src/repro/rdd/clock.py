"""Simulated wall clock for the in-process cluster.

The paper reports execution-time series measured on a physical 4--20 node
cluster.  This reproduction runs every byte and flop of the real computation
in one process, so wall-clock time would reflect the host laptop, not the
cluster.  The clock converts the *measured* traffic (from the communication
ledger) and the *measured* flops (from the per-worker engines) into seconds
under a simple linear hardware model:

* network time  = bytes / network_bandwidth            (serialised per stage)
* compute time  = max over workers of
                  (dense flops / dense rate + sparse flops / sparse rate) / L
* stage overhead = fixed scheduling latency per stage

The DMac-vs-baseline ratios the paper reports depend on bytes and flops,
which are measured; the hardware constants only scale absolute seconds.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.config import ClockConfig
from repro.runtime.metering import active_meter


@dataclasses.dataclass
class TimeBreakdown:
    """Accumulated simulated time, split by cause."""

    network_seconds: float = 0.0
    compute_seconds: float = 0.0
    overhead_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.network_seconds + self.compute_seconds + self.overhead_seconds

    @property
    def communication_share(self) -> float:
        """Fraction of total time spent on the network (paper Section 6.2:
        ~44 % for SystemML-S vs ~6 % for DMac on GNMF)."""
        total = self.total_seconds
        return self.network_seconds / total if total > 0 else 0.0


class SimulatedClock:
    """Accumulates simulated seconds from metered bytes and flops.

    Thread-safe.  When a :class:`~repro.runtime.metering.StageMeter` is
    installed on the calling thread (the concurrent stage scheduler runs
    each stage under one), charges are redirected to that meter instead of
    the global total: concurrently executing stages must not each add their
    full duration to a single serial timeline.  The scheduler later commits
    the critical-path total through :meth:`advance`.
    """

    def __init__(self, config: ClockConfig | None = None) -> None:
        self.config = config or ClockConfig()
        self._lock = threading.Lock()
        self._time = TimeBreakdown()
        self._windows: list[TimeBreakdown] = []

    def _charge(self, network: float = 0.0, compute: float = 0.0,
                overhead: float = 0.0) -> None:
        """Add to the global total and every open window.  Caller holds
        the lock."""
        self._time.network_seconds += network
        self._time.compute_seconds += compute
        self._time.overhead_seconds += overhead
        for window in self._windows:
            window.network_seconds += network
            window.compute_seconds += compute
            window.overhead_seconds += overhead

    def begin_window(self) -> TimeBreakdown:
        """Open an exact measurement window.

        Every subsequent charge is added to the returned breakdown as well
        as the global total.  Because the window starts from zero and sees
        the very same float additions, its totals are *bitwise* equal to
        the sum of the charges in the window -- unlike ``after - before``
        subtraction on the accumulated totals, which drifts by ulps once
        the clock carries earlier runs (e.g. prior segments of a staged
        program).  The trace reconciliation depends on this exactness.
        """
        window = TimeBreakdown()
        with self._lock:
            self._windows.append(window)
        return window

    def end_window(self, window: TimeBreakdown) -> TimeBreakdown:
        """Close a window opened by :meth:`begin_window` and return it."""
        with self._lock:
            self._windows.remove(window)
        return window

    def advance_network(self, nbytes: int) -> None:
        """Charge a cross-worker transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        seconds = nbytes / self.config.network_bytes_per_sec
        meter = active_meter()
        if meter is not None:
            meter.add_network(nbytes, seconds)
            return
        with self._lock:
            self._charge(network=seconds)

    def advance_compute(
        self,
        worker_dense_flops: dict[int, int],
        worker_sparse_flops: dict[int, int],
        threads_per_worker: int,
    ) -> None:
        """Charge one parallel compute phase.

        The phase lasts as long as its slowest worker; inside a worker, the
        flops are spread over ``threads_per_worker`` local threads.
        """
        workers = set(worker_dense_flops) | set(worker_sparse_flops)
        if not workers:
            return
        slowest = max(
            (
                worker_dense_flops.get(w, 0) / self.config.dense_flops_per_sec
                + worker_sparse_flops.get(w, 0) / self.config.sparse_flops_per_sec
            )
            / (threads_per_worker * self.config.worker_speed(w))
            for w in workers
        )
        meter = active_meter()
        if meter is not None:
            meter.add_compute(slowest)
            return
        with self._lock:
            self._charge(compute=slowest)

    def advance_disk(self, nbytes: int) -> None:
        """Charge a disk write/read of ``nbytes`` (checkpoint persistence).

        Disk time is booked under the overhead bucket: it is neither
        cross-worker network traffic nor compute, and the paper's time
        split has no separate disk series.
        """
        if nbytes < 0:
            raise ValueError(f"negative disk transfer size: {nbytes}")
        seconds = nbytes / self.config.disk_bytes_per_sec
        meter = active_meter()
        if meter is not None:
            meter.add_overhead(seconds)
            return
        with self._lock:
            self._charge(overhead=seconds)

    def advance_stage_overhead(self, stages: int = 1) -> None:
        """Charge fixed scheduling latency for ``stages`` stage launches."""
        seconds = stages * self.config.latency_per_stage_sec
        meter = active_meter()
        if meter is not None:
            meter.add_overhead(seconds)
            return
        with self._lock:
            self._charge(overhead=seconds)

    def advance(self, breakdown: TimeBreakdown) -> None:
        """Commit an already-split duration (the scheduler's critical path)
        straight to the global total, bypassing any meter."""
        with self._lock:
            self._charge(
                network=breakdown.network_seconds,
                compute=breakdown.compute_seconds,
                overhead=breakdown.overhead_seconds,
            )

    @property
    def elapsed(self) -> TimeBreakdown:
        with self._lock:
            return dataclasses.replace(self._time)

    @property
    def elapsed_seconds(self) -> float:
        with self._lock:
            return self._time.total_seconds

    def reset(self) -> None:
        with self._lock:
            self._time = TimeBreakdown()

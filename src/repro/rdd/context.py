"""The cluster context: workers, ledger, clock, broadcast.

:class:`ClusterContext` is this reproduction's stand-in for a SparkContext
over a physical cluster (see DESIGN.md, Substitutions).  It owns

* ``K`` logical workers, each with its own
  :class:`~repro.localexec.engine.LocalEngine` (``L`` threads, In-Place or
  Buffer aggregation, optional memory budget),
* the single :class:`~repro.rdd.ledger.CommunicationLedger` through which
  every cross-worker byte must pass, and
* the :class:`~repro.rdd.clock.SimulatedClock` that converts metered bytes
  and flops into the execution-time series the benchmarks report.

Partition ``p`` of any RDD lives on worker ``p % K``.
"""

from __future__ import annotations

from typing import Iterable

from repro.config import ClusterConfig
from repro.errors import ClusterError
from repro.localexec.engine import LocalEngine
from repro.rdd.broadcast import Broadcast
from repro.rdd.clock import SimulatedClock
from repro.rdd.ledger import CommunicationLedger
from repro.rdd.partitioner import Partitioner
from repro.rdd.sizeof import model_sizeof


class ClusterContext:
    """Entry point to the simulated cluster."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        self.ledger = CommunicationLedger()
        self.clock = SimulatedClock(self.config.clock)
        #: Installed fault-injection engine (see :mod:`repro.faults`);
        #: ``None`` means every hook below is inert.
        self.chaos = None
        self.engines = [
            LocalEngine(
                threads=self.config.threads_per_worker,
                inplace=self.config.inplace,
                memory_limit_bytes=self.config.memory_limit_bytes,
                batched_matmul=getattr(self.config, "batched_matmul", True),
                strassen=getattr(self.config, "strassen", False),
                strassen_min_size=getattr(self.config, "strassen_min_size", 128),
            )
            for __ in range(self.config.num_workers)
        ]

    # -- topology -------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return self.config.num_workers

    def workers(self) -> tuple[int, ...]:
        """The live worker ids.

        On the static cluster these are dense ``0..K-1`` and never change;
        an elastic context reports its *member* ids instead, which need not
        be dense or stable across stages.  Accounting code (block-cache
        charges, flop attribution) must key off this set rather than
        assuming ``range(num_workers)``.
        """
        return tuple(range(self.num_workers))

    def engine_for_worker(self, worker: int) -> LocalEngine:
        """The engine of one live worker id (see :meth:`workers`)."""
        return self.engines[worker]

    def worker_for_partition(self, partition_index: int) -> int:
        """The worker hosting a given partition index."""
        if partition_index < 0:
            raise ClusterError(f"negative partition index {partition_index}")
        return partition_index % self.num_workers

    def engine_for_partition(self, partition_index: int) -> LocalEngine:
        """The local engine of the worker hosting ``partition_index``."""
        return self.engines[self.worker_for_partition(partition_index)]

    # -- data ingestion ---------------------------------------------------------

    def parallelize(
        self,
        items: Iterable[tuple[object, object]],
        partitioner: Partitioner,
    ) -> "RDD":
        """Create an RDD from driver-side key/value pairs.

        Modelling a load from a distributed filesystem: the data lands
        directly in the scheme the partitioner dictates, with no *network*
        charge (the paper likewise does not charge initial HDFS reads as
        cluster communication -- only repartitions of live matrices count).
        """
        from repro.rdd.rdd import RDD  # local import to avoid a cycle

        partitions: list[list[tuple[object, object]]] = [
            [] for __ in range(partitioner.num_partitions)
        ]
        for key, value in items:
            partitions[partitioner.partition_for(key)].append((key, value))
        return RDD(self, partitions, partitioner)

    # -- execution backend -----------------------------------------------------

    def make_backend(self):
        """The :class:`~repro.runtime.backend.Backend` that executes plans
        on this context (imported lazily: the runtime sits above the rdd
        layer).  Subclasses pick their own backend implementation."""
        from repro.runtime.backend import SimulatedBackend

        return SimulatedBackend(self)

    # -- fault injection -------------------------------------------------------

    def install_chaos(self, engine) -> None:
        """Install (or clear, with ``None``) a fault-injection engine.

        The engine is consulted before every metered transfer and at the
        shuffle service's entry; an injected fault surfaces as a raised
        :class:`~repro.errors.FaultInjected` subclass.
        """
        self.chaos = engine

    # -- communication ------------------------------------------------------------

    def transfer(
        self,
        kind: str,
        nbytes: int,
        links: dict[tuple[int, int], int] | None = None,
    ) -> None:
        """Meter a cross-worker transfer in the ledger and the clock.

        ``links`` optionally attributes the bytes to (source worker, target
        worker) pairs; the chaos hook and the clock still fire exactly once
        on the total, so per-link attribution never perturbs fault
        determinism or simulated time.
        """
        if self.chaos is not None:
            self.chaos.on_transfer(kind, nbytes)  # may raise an injected fault
        if links:
            for link in sorted(links):
                self.ledger.record(kind, links[link], link)
        else:
            self.ledger.record(kind, nbytes)
        self.clock.advance_network(nbytes)

    def broadcast(self, value: object, nbytes: int | None = None) -> Broadcast:
        """Replicate ``value`` to every worker; charges ``(K - 1) * size``."""
        size = model_sizeof(value) if nbytes is None else nbytes
        self.transfer("broadcast", (self.num_workers - 1) * size)
        return Broadcast(value, size)

    # -- clock integration -----------------------------------------------------------

    def flops_snapshot(self) -> dict[int, tuple[int, int]]:
        """Per-worker ``(dense_flops, sparse_flops)`` counters right now."""
        return {
            w: (engine.stats.dense_flops, engine.stats.sparse_flops)
            for w, engine in enumerate(self.engines)
        }

    def charge_compute_since(self, snapshot: dict[int, tuple[int, int]]) -> None:
        """Advance the clock by the compute performed since ``snapshot``,
        modelled as one synchronised parallel phase."""
        current = self.flops_snapshot()
        dense = {w: current[w][0] - snapshot.get(w, (0, 0))[0] for w in current}
        sparse = {w: current[w][1] - snapshot.get(w, (0, 0))[1] for w in current}
        self.clock.advance_compute(dense, sparse, self.config.threads_per_worker)

    # -- reporting ----------------------------------------------------------------

    def peak_memory_bytes(self) -> int:
        """The largest per-worker peak (the paper reports per-node memory)."""
        return max(engine.tracker.peak_bytes for engine in self.engines)

    def peak_memory_by_worker(self) -> list[int]:
        """Per-worker peak model bytes (for balance inspection)."""
        return [engine.tracker.peak_bytes for engine in self.engines]

    def reset_metrics(self) -> None:
        """Clear ledger and clock (typically between benchmark phases)."""
        self.ledger.reset()
        self.clock.reset()

"""Communication ledger: every byte that crosses worker boundaries.

The paper's headline evaluation metric (Figure 6b and the 44 %-vs-6 %
communication-share analysis of Section 6.2) is the amount of data moved
through the cluster.  The ledger is the single place this is metered: the
shuffle service and broadcast facility report to it, and nothing else in the
system is allowed to move data between workers.

Entries are tagged with a *scope* (e.g. the current plan stage and operator)
so benchmarks can break communication down the way the paper's figures do.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from collections import defaultdict
from typing import Iterator

#: The kinds of cross-worker transfer the substrate can perform.
TRANSFER_KINDS = ("shuffle", "broadcast")


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One metered cross-worker transfer."""

    kind: str  # "shuffle" or "broadcast"
    nbytes: int
    scope: str  # e.g. "stage-2/partition(W)"
    #: The (source worker, target worker) link the bytes crossed, when the
    #: reporting service knows it (the shuffle service does); ``None`` for
    #: aggregate records such as broadcasts.
    link: tuple[int, int] | None = None


class CommunicationLedger:
    """Thread-safe accumulator of cross-worker traffic.

    The record list is guarded by a lock; the scope stack is *thread-local*,
    so concurrently executing stages (each on its own scheduler thread) tag
    their transfers independently instead of corrupting a shared stack.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[TransferRecord] = []
        self._scopes = threading.local()

    # -- scoping ------------------------------------------------------------

    def _scope_stack(self) -> list[str]:
        stack = getattr(self._scopes, "stack", None)
        if stack is None:
            stack = self._scopes.stack = []
        return stack

    @contextlib.contextmanager
    def scope(self, label: str) -> Iterator[None]:
        """Tag all transfers recorded inside the block with ``label``
        (nested scopes join with ``/``).  Scopes are per-thread."""
        stack = self._scope_stack()
        stack.append(label)
        try:
            yield
        finally:
            stack.pop()

    def current_scope(self) -> str:
        return "/".join(self._scope_stack())

    # -- recording ----------------------------------------------------------

    def record(
        self, kind: str, nbytes: int, link: tuple[int, int] | None = None
    ) -> None:
        """Meter one transfer of ``nbytes`` under the current scope,
        optionally attributed to a (source, target) worker link."""
        if kind not in TRANSFER_KINDS:
            raise ValueError(f"unknown transfer kind {kind!r}")
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return
        scope = "/".join(self._scope_stack())
        with self._lock:
            self._records.append(TransferRecord(kind, nbytes, scope, link))

    # -- reporting ----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(r.nbytes for r in self._records)

    def bytes_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        with self._lock:
            for record in self._records:
                out[record.kind] += record.nbytes
        return dict(out)

    def bytes_by_link(self) -> dict[tuple[int, int], int]:
        """Bytes per (source worker, target worker) pair, for records that
        carry link attribution (shuffles do; broadcasts do not)."""
        out: dict[tuple[int, int], int] = defaultdict(int)
        with self._lock:
            for record in self._records:
                if record.link is not None:
                    out[record.link] += record.nbytes
        return dict(out)

    def bytes_by_scope(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        with self._lock:
            for record in self._records:
                out[record.scope] += record.nbytes
        return dict(out)

    def records(self) -> list[TransferRecord]:
        with self._lock:
            return list(self._records)

    def snapshot(self) -> int:
        """Current total, for measuring deltas around a phase."""
        return self.total_bytes

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

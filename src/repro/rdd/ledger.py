"""Communication ledger: every byte that crosses worker boundaries.

The paper's headline evaluation metric (Figure 6b and the 44 %-vs-6 %
communication-share analysis of Section 6.2) is the amount of data moved
through the cluster.  The ledger is the single place this is metered: the
shuffle service and broadcast facility report to it, and nothing else in the
system is allowed to move data between workers.

Entries are tagged with a *scope* (e.g. the current plan stage and operator)
so benchmarks can break communication down the way the paper's figures do.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import threading
from collections import defaultdict
from typing import Iterator

from repro.trace.emit import active_tracer, current_stage

#: The kinds of cross-worker transfer the substrate can perform
#: ("rebalance" is the elastic pool shipping live blocks to a joiner).
TRANSFER_KINDS = ("shuffle", "broadcast", "rebalance")

#: Scope stacks per ledger instance, keyed by ``id(ledger)``.  A
#: :mod:`contextvars` variable -- not ``threading.local`` -- so that when
#: :meth:`repro.localexec.engine.LocalEngine._run` copies the submitting
#: stage's context into its pool threads, block tasks inherit the stage's
#: scope and tag their transfers correctly.  (The old thread-local stack
#: made pool threads record under an *empty* scope; the trace
#: reconciliation pass in :mod:`repro.trace.reconcile` catches exactly
#: that class of misattribution.)  The stack is an immutable tuple: each
#: ``scope()`` entry sets a new value and resets its token on exit, so
#: copied contexts snapshot the stack instead of sharing a mutable list.
_SCOPES: contextvars.ContextVar[dict[int, tuple[str, ...]]] = contextvars.ContextVar(
    "repro_ledger_scopes", default={}
)


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One metered cross-worker transfer."""

    kind: str  # "shuffle" or "broadcast"
    nbytes: int
    scope: str  # e.g. "stage-2/partition(W)"
    #: The (source worker, target worker) link the bytes crossed, when the
    #: reporting service knows it (the shuffle service does); ``None`` for
    #: aggregate records such as broadcasts.
    link: tuple[int, int] | None = None


class CommunicationLedger:
    """Thread-safe accumulator of cross-worker traffic.

    The record list is guarded by a lock; the scope stack is a *context
    variable* (the same pattern as ``StageMeter`` in
    :mod:`repro.runtime.metering`), so concurrently executing stages --
    each on its own scheduler thread -- tag their transfers independently,
    and engine pool threads that run under a copy of the stage's context
    inherit the stage's scope.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[TransferRecord] = []

    # -- scoping ------------------------------------------------------------

    def _scope_stack(self) -> tuple[str, ...]:
        return _SCOPES.get().get(id(self), ())

    @contextlib.contextmanager
    def scope(self, label: str) -> Iterator[None]:
        """Tag all transfers recorded inside the block with ``label``
        (nested scopes join with ``/``).  Scopes are per-context: they
        follow ``contextvars`` copies into pool threads."""
        stacks = dict(_SCOPES.get())
        stacks[id(self)] = stacks.get(id(self), ()) + (label,)
        token = _SCOPES.set(stacks)
        try:
            yield
        finally:
            _SCOPES.reset(token)

    def current_scope(self) -> str:
        return "/".join(self._scope_stack())

    # -- recording ----------------------------------------------------------

    def record(
        self, kind: str, nbytes: int, link: tuple[int, int] | None = None
    ) -> None:
        """Meter one transfer of ``nbytes`` under the current scope,
        optionally attributed to a (source, target) worker link."""
        if kind not in TRANSFER_KINDS:
            raise ValueError(f"unknown transfer kind {kind!r}")
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return
        scope = "/".join(self._scope_stack())
        with self._lock:
            self._records.append(TransferRecord(kind, nbytes, scope, link))
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "transfer",
                kind,
                stage=current_stage(),
                nbytes=nbytes,
                link=link,
                scope=scope,
            )

    # -- reporting ----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(r.nbytes for r in self._records)

    def bytes_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        with self._lock:
            for record in self._records:
                out[record.kind] += record.nbytes
        return dict(out)

    def bytes_by_link(
        self, include_unattributed: bool = False
    ) -> dict[tuple[int, int] | None, int]:
        """Bytes per (source worker, target worker) pair, for records that
        carry link attribution (shuffles do; broadcasts do not).

        With ``include_unattributed=True`` link-less records are returned
        under an explicit ``None`` bucket, so the per-link sums add up to
        :attr:`total_bytes` instead of silently dropping broadcast bytes.
        """
        out: dict[tuple[int, int] | None, int] = defaultdict(int)
        with self._lock:
            for record in self._records:
                if record.link is not None:
                    out[record.link] += record.nbytes
                elif include_unattributed:
                    out[None] += record.nbytes
        return dict(out)

    @property
    def unattributed_bytes(self) -> int:
        """Bytes of records with no link attribution (broadcasts)."""
        with self._lock:
            return sum(r.nbytes for r in self._records if r.link is None)

    def bytes_by_scope(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        with self._lock:
            for record in self._records:
                out[record.scope] += record.nbytes
        return dict(out)

    def records(self) -> list[TransferRecord]:
        with self._lock:
            return list(self._records)

    def snapshot(self) -> int:
        """Current total, for measuring deltas around a phase."""
        return self.total_bytes

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

"""Partitioners mapping block keys to cluster partitions.

DMac customises Spark's partitioner interface with its three schemes
(paper Section 5.4): Row and Column partitioners place a block ``(bi, bj)``
by its block-row or block-column index; the hash partitioner is what the
SystemML-S baseline uses for its cached intermediates.

Two RDDs co-partitioned by *equal* partitioners can be joined without a
shuffle, so partitioners define structural equality.
"""

from __future__ import annotations

import abc

from repro.errors import SchemeError

BlockKey = tuple[int, int]


class Partitioner(abc.ABC):
    """Maps keys to partition indices in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise SchemeError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    @abc.abstractmethod
    def partition_for(self, key: object) -> int:
        """Partition index for ``key``."""

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class RowPartitioner(Partitioner):
    """Row scheme: all blocks of block-row ``bi`` land in partition
    ``bi % num_partitions``."""

    def partition_for(self, key: object) -> int:
        bi, __ = key  # type: ignore[misc]
        return int(bi) % self.num_partitions


class ColumnPartitioner(Partitioner):
    """Column scheme: all blocks of block-column ``bj`` land in partition
    ``bj % num_partitions``."""

    def partition_for(self, key: object) -> int:
        __, bj = key  # type: ignore[misc]
        return int(bj) % self.num_partitions


class HashPartitioner(Partitioner):
    """Spark's default: hash of the whole key (used by SystemML-S caches)."""

    def partition_for(self, key: object) -> int:
        return hash(key) % self.num_partitions

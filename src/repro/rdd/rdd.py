"""A minimal RDD: Spark's resilient distributed dataset, in process.

Supports the transformations DMac's implementation relies on (paper
Section 5.4): narrow per-record maps and filters that never move data, plus
the wide transformations ``partition_by``, ``reduce_by_key``,
``group_by_key`` and ``join`` that route through the metered shuffle
service.  ``reduce_by_key`` exposes the ``map_side_combine`` switch the
paper discusses -- DMac turns it *off* because the In-Place local engine
emits pre-combined blocks.

An RDD remembers its partitioner when one is structurally guaranteed;
``partition_by`` with an equal partitioner is then a no-op, which is exactly
how Reference dependencies become free at the physical layer.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ClusterError
from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import HashPartitioner, Partitioner
from repro.rdd.shuffle import shuffle

KV = tuple[object, object]


class RDD:
    """An immutable, partitioned collection of (key, value) records."""

    def __init__(
        self,
        context: ClusterContext,
        partitions: list[list[KV]],
        partitioner: Partitioner | None = None,
    ) -> None:
        if partitioner is not None and partitioner.num_partitions != len(partitions):
            raise ClusterError(
                f"partitioner expects {partitioner.num_partitions} partitions, "
                f"got {len(partitions)}"
            )
        self.context = context
        self._partitions = partitions
        self.partitioner = partitioner

    # -- structure ----------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def partition(self, index: int) -> list[KV]:
        """Records of one partition (the hosting worker's local view)."""
        return list(self._partitions[index])

    def worker_partitions(self, worker: int) -> list[KV]:
        """All records hosted by one worker (union of its partitions)."""
        return [
            record
            for index, partition in enumerate(self._partitions)
            if self.context.worker_for_partition(index) == worker
            for record in partition
        ]

    # -- narrow transformations (no data movement) ----------------------------

    def map_values(self, func: Callable[[object], object]) -> "RDD":
        """Apply ``func`` to every value; keys (and partitioning) unchanged."""
        partitions = [[(k, func(v)) for k, v in part] for part in self._partitions]
        return RDD(self.context, partitions, self.partitioner)

    def map(
        self,
        func: Callable[[KV], KV],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """Apply ``func`` to every record.  The partitioner is dropped unless
        the caller asserts keys still land where the partitioner says."""
        partitions = [[func(record) for record in part] for part in self._partitions]
        return RDD(
            self.context,
            partitions,
            self.partitioner if preserves_partitioning else None,
        )

    def flat_map(
        self,
        func: Callable[[KV], Iterable[KV]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """Apply ``func`` to every record, concatenating the results."""
        partitions = [
            [out for record in part for out in func(record)]
            for part in self._partitions
        ]
        return RDD(
            self.context,
            partitions,
            self.partitioner if preserves_partitioning else None,
        )

    def filter(self, predicate: Callable[[KV], bool]) -> "RDD":
        """Keep records satisfying ``predicate``; partitioning preserved."""
        partitions = [
            [record for record in part if predicate(record)]
            for part in self._partitions
        ]
        return RDD(self.context, partitions, self.partitioner)

    def map_partitions_with_index(
        self,
        func: Callable[[int, list[KV]], list[KV]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """Apply ``func`` to each whole partition (with its index)."""
        partitions = [
            list(func(index, list(part))) for index, part in enumerate(self._partitions)
        ]
        return RDD(
            self.context,
            partitions,
            self.partitioner if preserves_partitioning else None,
        )

    def cache(self) -> "RDD":
        """Mark this RDD as cached.  All data already lives in memory in this
        substrate, so this is an API-fidelity no-op: what matters is that a
        cached RDD keeps its partitioner, making later Reference
        dependencies free."""
        return self

    # -- wide transformations (shuffle) ------------------------------------------

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        """Redistribute by ``partitioner``; a no-op if already so partitioned."""
        if self.partitioner == partitioner:
            return self
        partitions = shuffle(self.context, self._partitions, partitioner)
        return RDD(self.context, partitions, partitioner)

    def reduce_by_key(
        self,
        func: Callable[[object, object], object],
        partitioner: Partitioner | None = None,
        map_side_combine: bool = True,
    ) -> "RDD":
        """Combine all values of each key with ``func``.

        With ``map_side_combine`` (Spark's default) values are pre-combined
        inside each source partition before the shuffle, cutting traffic;
        DMac disables it because In-Place execution already emits combined
        blocks (paper Section 5.4).
        """
        partitioner = partitioner or HashPartitioner(self.num_partitions)
        source = self._partitions
        if map_side_combine:
            source = [self._combine(part, func) for part in source]
        shuffled = shuffle(self.context, source, partitioner)
        partitions = [self._combine(part, func) for part in shuffled]
        return RDD(self.context, partitions, partitioner)

    def group_by_key(self, partitioner: Partitioner | None = None) -> "RDD":
        """Gather all values of each key into a list."""
        partitioner = partitioner or HashPartitioner(self.num_partitions)
        shuffled = shuffle(self.context, self._partitions, partitioner)
        partitions = []
        for part in shuffled:
            grouped: dict[object, list[object]] = {}
            for key, value in part:
                grouped.setdefault(key, []).append(value)
            partitions.append(list(grouped.items()))
        return RDD(self.context, partitions, partitioner)

    def join(self, other: "RDD", partitioner: Partitioner | None = None) -> "RDD":
        """Inner join on keys; values become ``(left, right)`` pairs.

        Both sides are brought to a common partitioner first; a side already
        partitioned that way moves nothing.
        """
        partitioner = (
            partitioner
            or self.partitioner
            or other.partitioner
            or HashPartitioner(max(self.num_partitions, other.num_partitions))
        )
        left = self.partition_by(partitioner)
        right = other.partition_by(partitioner)
        partitions = []
        for left_part, right_part in zip(left._partitions, right._partitions):
            left_map: dict[object, list[object]] = {}
            for key, value in left_part:
                left_map.setdefault(key, []).append(value)
            joined: list[KV] = []
            for key, right_value in right_part:
                for left_value in left_map.get(key, ()):
                    joined.append((key, (left_value, right_value)))
            partitions.append(joined)
        return RDD(self.context, partitions, partitioner)

    @staticmethod
    def _combine(partition: list[KV], func: Callable[[object, object], object]) -> list[KV]:
        combined: dict[object, object] = {}
        for key, value in partition:
            if key in combined:
                combined[key] = func(combined[key], value)
            else:
                combined[key] = value
        return list(combined.items())

    # -- actions ------------------------------------------------------------

    def collect(self) -> list[KV]:
        """All records, gathered at the driver."""
        return [record for part in self._partitions for record in part]

    def collect_map(self) -> dict[object, object]:
        """All records as a key -> value dict (keys must be unique)."""
        out: dict[object, object] = {}
        for key, value in self.collect():
            if key in out:
                raise ClusterError(f"duplicate key in collect_map: {key!r}")
            out[key] = value
        return out

    def count(self) -> int:
        return sum(len(part) for part in self._partitions)

    def keys(self) -> list[object]:
        return [key for key, __ in self.collect()]

    def values(self) -> list[object]:
        return [value for __, value in self.collect()]

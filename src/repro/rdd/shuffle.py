"""The shuffle service: the only way data moves between workers.

A shuffle re-buckets every (key, value) record of an RDD by a target
partitioner.  Records whose source and target *workers* coincide are free;
records that cross a worker boundary are charged to the communication
ledger (and the simulated clock) at their model size plus a small framing
overhead.  This matches the paper's accounting, where a repartition of a
matrix costs on the order of the matrix size ``|A|``.
"""

from __future__ import annotations

from typing import Sequence

from repro.rdd.context import ClusterContext
from repro.rdd.partitioner import Partitioner
from repro.rdd.sizeof import RECORD_OVERHEAD_BYTES, model_sizeof

Partitions = list[list[tuple[object, object]]]


def shuffle(
    context: ClusterContext,
    source: Sequence[Sequence[tuple[object, object]]],
    partitioner: Partitioner,
) -> Partitions:
    """Redistribute records into ``partitioner``'s layout, metering traffic.

    Returns the new partition list (length ``partitioner.num_partitions``).
    """
    chaos = getattr(context, "chaos", None)
    if chaos is not None:
        # The shuffle service's fault point: an injected transient failure
        # aborts the whole exchange before any record moves.
        chaos.on_shuffle_start(
            num_source_partitions=len(source),
            num_target_partitions=partitioner.num_partitions,
        )
    targets: Partitions = [[] for __ in range(partitioner.num_partitions)]
    moved_bytes = 0
    # Partition-to-worker placement is a pure function of the index; hoist
    # it out of the per-record loop into a lookup table (free records stay
    # free without a method call per record).
    worker_of = [
        context.worker_for_partition(p)
        for p in range(max(len(source), partitioner.num_partitions))
    ]
    # Bytes moved per (source worker, target worker) link, for the ledger.
    pair_bytes: dict[tuple[int, int], int] = {}
    # The same block object commonly appears in many records of one shuffle
    # (replication-heavy layouts); size it once per call.  The cache must
    # not outlive the call: pooled blocks are mutated in place and object
    # ids are recycled, so a persistent id-keyed cache would go stale.
    sizeof_cache: dict[int, int] = {}
    for source_index, partition in enumerate(source):
        source_worker = worker_of[source_index]
        for key, value in partition:
            target_index = partitioner.partition_for(key)
            target_worker = worker_of[target_index]
            if target_worker != source_worker:
                nbytes = sizeof_cache.get(id(value))
                if nbytes is None:
                    nbytes = sizeof_cache[id(value)] = model_sizeof(value)
                nbytes += RECORD_OVERHEAD_BYTES
                moved_bytes += nbytes
                link = (source_worker, target_worker)
                pair_bytes[link] = pair_bytes.get(link, 0) + nbytes
            targets[target_index].append((key, value))
    context.transfer("shuffle", moved_bytes, links=pair_bytes)
    return targets

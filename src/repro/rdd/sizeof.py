"""Byte-size model for values that travel across the simulated network.

Matrix blocks dominate all real traffic; they are charged by the paper's
memory model (:attr:`model_nbytes`).  Everything else gets a small generic
estimate so control messages do not distort the communication figures.
"""

from __future__ import annotations

import sys

import numpy as np

#: Framing overhead charged per shuffled (key, value) record.
RECORD_OVERHEAD_BYTES = 16


def model_sizeof(value: object) -> int:
    """Bytes ``value`` occupies on the wire under the paper's model."""
    model_nbytes = getattr(value, "model_nbytes", None)
    if model_nbytes is not None:
        return int(model_nbytes)
    if isinstance(value, np.ndarray):
        return 4 * value.size  # paper model: 4 bytes per dense element
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, (tuple, list)):
        return sum(model_sizeof(item) for item in value)
    if isinstance(value, dict):
        return sum(
            model_sizeof(k) + model_sizeof(v) for k, v in value.items()
        )
    return sys.getsizeof(value)

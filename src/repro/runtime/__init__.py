"""repro.runtime: the stage-graph execution runtime.

The package splits the old monolithic executor into composable parts:

* :mod:`~repro.runtime.graph`     -- :class:`StageGraph`, the inter-stage
  dependency DAG recovered from ``schedule_stages`` output;
* :mod:`~repro.runtime.scheduler` -- concurrent dispatch of ready stages
  with critical-path simulated time;
* :mod:`~repro.runtime.registry`  -- the operator table shared by the
  executor, planner, lint and visualiser;
* :mod:`~repro.runtime.backend`   -- the :class:`Backend` protocol and the
  :class:`SimulatedBackend` over the metered in-process cluster;
* :mod:`~repro.runtime.resources` -- refcounted matrix lifetimes;
* :mod:`~repro.runtime.metering`  -- per-stage charge attribution;
* :mod:`~repro.runtime.executor`  -- :class:`PlanExecutor`, tying it all
  together.

Attributes are resolved lazily (PEP 562): low-level modules such as
:mod:`repro.rdd.clock` import :mod:`repro.runtime.metering` while the
higher runtime modules import the clock, so an eager package ``__init__``
would create an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Backend": "repro.runtime.backend",
    "SimulatedBackend": "repro.runtime.backend",
    "ExecutionResult": "repro.runtime.executor",
    "ExecutionState": "repro.runtime.executor",
    "PlanExecutor": "repro.runtime.executor",
    "StepTrace": "repro.runtime.executor",
    "evaluate_scalar": "repro.runtime.executor",
    "StageGraph": "repro.runtime.graph",
    "StageNode": "repro.runtime.graph",
    "StageMeter": "repro.runtime.metering",
    "active_meter": "repro.runtime.metering",
    "metered": "repro.runtime.metering",
    "OPERATORS": "repro.runtime.registry",
    "OperatorSpec": "repro.runtime.registry",
    "spec_for": "repro.runtime.registry",
    "spec_for_op": "repro.runtime.registry",
    "ResourceManager": "repro.runtime.resources",
    "SchedulerReport": "repro.runtime.scheduler",
    "StageScheduler": "repro.runtime.scheduler",
    "StageTiming": "repro.runtime.scheduler",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

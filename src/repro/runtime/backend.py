"""Execution backends: where kernels actually run.

The operator kernels in :mod:`repro.runtime.registry` are written against
the :class:`Backend` protocol, not against the simulated cluster, so the
runtime has a seam for future backends (a process pool, a real Spark
bridge) without touching the kernels or the scheduler.  The interface is
sized to what a plan needs: materialise sources, apply the extended
operators, run the compute strategies, aggregate to driver scalars, and
expose the metering surface (ledger, clock, per-worker flop counters) the
scheduler charges simulated time through.

:class:`SimulatedBackend` is the one shipping implementation: a thin
adapter over today's :class:`~repro.rdd.context.ClusterContext` and the
physical primitives of :mod:`repro.matrix.primitives`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.blocks.memory import choose_block_size
from repro.core.plan import Plan
from repro.errors import ExecutionError
from repro.lang.program import FullOp, LoadOp, RandomOp
from repro.matrix.distributed import DistributedMatrix
from repro.kernels.fused import FusedChain
from repro.matrix.primitives import (
    broadcast_matrix,
    cellwise_op,
    col_sums,
    cpmm,
    extract,
    fused_cellwise_op,
    local_transpose,
    matrix_sq_sum,
    matrix_sum,
    repartition,
    rmm1,
    rmm2,
    row_sums,
    scalar_op_matrix,
    unary_op_matrix,
)
from repro.matrix.schemes import Scheme
from repro.rdd.clock import SimulatedClock
from repro.rdd.context import ClusterContext
from repro.rdd.ledger import CommunicationLedger
from repro.rdd.sizeof import model_sizeof


@runtime_checkable
class Backend(Protocol):
    """What the runtime needs from an execution substrate."""

    # -- kernels ------------------------------------------------------------

    def materialise_source(
        self,
        op: LoadOp | RandomOp | FullOp,
        scheme: Scheme,
        block_size: int,
        inputs: dict[str, np.ndarray],
    ) -> DistributedMatrix: ...

    def extended(
        self, kind: str, source: DistributedMatrix, target_scheme: Scheme
    ) -> DistributedMatrix: ...

    def matmul(
        self,
        strategy: str,
        left: DistributedMatrix,
        right: DistributedMatrix,
        output_scheme: Scheme,
    ) -> DistributedMatrix: ...

    def cellwise(
        self, op: str, left: DistributedMatrix, right: DistributedMatrix
    ) -> DistributedMatrix: ...

    def fused_cellwise(
        self, chain: FusedChain, operands: tuple[DistributedMatrix, ...]
    ) -> DistributedMatrix: ...

    def scalar_op(
        self, op: str, source: DistributedMatrix, value: float
    ) -> DistributedMatrix: ...

    def unary(self, func: str, source: DistributedMatrix) -> DistributedMatrix: ...

    def row_agg(
        self,
        kind: str,
        source: DistributedMatrix,
        output_scheme: Scheme,
        communicates: bool,
    ) -> DistributedMatrix: ...

    def aggregate(self, kind: str, source: DistributedMatrix) -> float: ...

    def release(self, matrix: DistributedMatrix) -> None: ...

    # -- block cache accounting ---------------------------------------------

    def cached_bytes(self, matrix: DistributedMatrix) -> dict[int, int]:
        """Worker index -> model bytes of the matrix's blocks resident
        there (a Broadcast matrix charges every worker a full copy)."""
        ...

    def charge_cache(self, worker: int, nbytes: int) -> None:
        """Charge cached bytes against one worker's memory tracker; may
        raise :class:`~repro.errors.MemoryLimitExceeded`."""
        ...

    def discharge_cache(self, worker: int, nbytes: int) -> None: ...

    # -- fault injection ----------------------------------------------------

    def install_chaos(self, engine) -> None:
        """Install (or clear, with ``None``) a fault-injection engine on the
        substrate so transfer/shuffle hooks fire (see :mod:`repro.faults`)."""
        ...

    # -- metering surface ---------------------------------------------------

    @property
    def ledger(self) -> CommunicationLedger: ...

    @property
    def clock(self) -> SimulatedClock: ...

    @property
    def threads_per_worker(self) -> int: ...

    def flop_sources(self) -> dict[int, object]:
        """Worker index -> the stats object its engine reports flops on."""
        ...

    def peak_memory_bytes(self) -> int: ...

    def default_block_size(self, plan: Plan) -> int: ...


class SimulatedBackend:
    """The in-process metered cluster, adapted to the :class:`Backend` API."""

    def __init__(self, context: ClusterContext) -> None:
        self.context = context

    # -- kernels ------------------------------------------------------------

    def materialise_source(
        self,
        op: LoadOp | RandomOp | FullOp,
        scheme: Scheme,
        block_size: int,
        inputs: dict[str, np.ndarray],
    ) -> DistributedMatrix:
        if isinstance(op, LoadOp):
            if op.output not in inputs:
                raise ExecutionError(f"no input array bound for load {op.output!r}")
            array = np.asarray(inputs[op.output], dtype=np.float64)
            if array.shape != (op.rows, op.cols):
                raise ExecutionError(
                    f"input {op.output!r} has shape {array.shape}, "
                    f"program declared {(op.rows, op.cols)}"
                )
            return DistributedMatrix.from_numpy(self.context, array, block_size, scheme)
        if isinstance(op, RandomOp):
            return DistributedMatrix.random(
                self.context, op.rows, op.cols, block_size, scheme, seed=op.seed
            )
        if isinstance(op, FullOp):
            array = np.full((op.rows, op.cols), op.value, dtype=np.float64)
            return DistributedMatrix.from_numpy(
                self.context, array, block_size, scheme, storage="dense"
            )
        raise ExecutionError(f"unknown source operator {type(op).__name__}")

    def extended(
        self, kind: str, source: DistributedMatrix, target_scheme: Scheme
    ) -> DistributedMatrix:
        if kind == "partition":
            return repartition(source, target_scheme)
        if kind == "broadcast":
            return broadcast_matrix(source)
        if kind == "transpose":
            return local_transpose(source)
        if kind == "extract":
            return extract(source, target_scheme)
        raise ExecutionError(f"unknown extended operator {kind!r}")

    def matmul(
        self,
        strategy: str,
        left: DistributedMatrix,
        right: DistributedMatrix,
        output_scheme: Scheme,
    ) -> DistributedMatrix:
        if strategy == "rmm1":
            return rmm1(left, right)
        if strategy == "rmm2":
            return rmm2(left, right)
        if strategy == "cpmm":
            return cpmm(left, right, output_scheme=output_scheme)
        raise ExecutionError(f"unknown matmul strategy {strategy!r}")

    def cellwise(
        self, op: str, left: DistributedMatrix, right: DistributedMatrix
    ) -> DistributedMatrix:
        return cellwise_op(op, left, right)

    def fused_cellwise(
        self, chain: FusedChain, operands: tuple[DistributedMatrix, ...]
    ) -> DistributedMatrix:
        return fused_cellwise_op(chain, operands)

    def scalar_op(
        self, op: str, source: DistributedMatrix, value: float
    ) -> DistributedMatrix:
        return scalar_op_matrix(op, source, value)

    def unary(self, func: str, source: DistributedMatrix) -> DistributedMatrix:
        return unary_op_matrix(func, source)

    def row_agg(
        self,
        kind: str,
        source: DistributedMatrix,
        output_scheme: Scheme,
        communicates: bool,
    ) -> DistributedMatrix:
        aggregate = row_sums if kind == "rowsum" else col_sums
        if communicates:
            return aggregate(source, output_scheme=output_scheme)
        return aggregate(source)

    def aggregate(self, kind: str, source: DistributedMatrix) -> float:
        if kind == "sum":
            return matrix_sum(source)
        if kind == "sqsum":
            return matrix_sq_sum(source)
        if kind == "value":
            return source.value()
        raise ExecutionError(f"unknown aggregation {kind!r}")

    def release(self, matrix: DistributedMatrix) -> None:
        # Grids were discharged from the memory trackers when their producing
        # operation completed; dropping the reference is all that remains.
        pass

    # -- block cache accounting ---------------------------------------------

    def cached_bytes(self, matrix: DistributedMatrix) -> dict[int, int]:
        # Keyed off the context's live worker set, not range(num_workers):
        # an elastic context's member ids are neither dense nor stable, and
        # charge/discharge must land on the same workers' trackers.
        out: dict[int, int] = {}
        for worker in self.context.workers():
            nbytes = sum(
                model_sizeof(block)
                for block in matrix.worker_grid(worker).values()
            )
            if nbytes:
                out[worker] = nbytes
        return out

    def charge_cache(self, worker: int, nbytes: int) -> None:
        self.context.engine_for_worker(worker).tracker.allocate(nbytes)

    def discharge_cache(self, worker: int, nbytes: int) -> None:
        self.context.engine_for_worker(worker).tracker.release(nbytes)

    # -- fault injection ----------------------------------------------------

    def install_chaos(self, engine) -> None:
        self.context.install_chaos(engine)

    # -- metering surface ---------------------------------------------------

    @property
    def ledger(self) -> CommunicationLedger:
        return self.context.ledger

    @property
    def clock(self) -> SimulatedClock:
        return self.context.clock

    @property
    def threads_per_worker(self) -> int:
        return self.context.config.threads_per_worker

    def flop_sources(self) -> dict[int, object]:
        # Worker ids come from the context's live worker set: enumerate()
        # over the engines list would assume dense stable ids, which breaks
        # flop attribution the moment membership can change.
        return {
            w: self.context.engine_for_worker(w).stats
            for w in self.context.workers()
        }

    def peak_memory_bytes(self) -> int:
        return self.context.peak_memory_bytes()

    def default_block_size(self, plan: Plan) -> int:
        rows, cols = max(
            plan.program.dims.values(), key=lambda shape: shape[0] * shape[1]
        )
        config = self.context.config
        return choose_block_size(
            rows, cols, config.num_workers, config.threads_per_worker
        )

"""The runtime executor: stage-graph execution of DMac plans.

This replaces the old serial step loop of ``repro.core.executor`` (kept as
a compatibility shim).  An execution now flows through the runtime's parts:

1. the plan is folded into a :class:`~repro.runtime.graph.StageGraph`,
2. the :class:`~repro.runtime.scheduler.StageScheduler` dispatches ready
   nodes concurrently; each node runs its steps through the operator
   registry's kernels against a pluggable
   :class:`~repro.runtime.backend.Backend`,
3. matrix lifetimes are reference counts held by a
   :class:`~repro.runtime.resources.ResourceManager` (released exactly
   once, also on mid-run failure),
4. per-node :class:`~repro.runtime.metering.StageMeter` measurements are
   folded into the simulated clock as *critical-path* time.

Ledgered bytes are unchanged from the serial executor -- same kernels,
same scopes -- only the simulated seconds now reflect stage overlap.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time

import numpy as np

from repro.core.plan import MatrixInstance, Plan
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError
from repro.matrix.distributed import DistributedMatrix
from repro.rdd.clock import TimeBreakdown
from repro.rdd.context import ClusterContext
from repro.runtime.backend import Backend
from repro.runtime.graph import StageGraph, StageNode
from repro.runtime.metering import StageMeter, metered
from repro.runtime.registry import spec_for
from repro.runtime.resources import BlockCache, ResourceManager
from repro.runtime.scalars import evaluate_scalar  # noqa: F401  (re-export)
from repro.runtime.scheduler import SchedulerReport, StageScheduler, StageTiming
from repro.trace.emit import active_tracer, install_tracer, stage_scope


@dataclasses.dataclass(frozen=True)
class StepTrace:
    """Per-step record collected when executing with ``trace=True``."""

    step: str
    stage: int
    comm_bytes: int
    flops: int
    wall_seconds: float


@dataclasses.dataclass
class ExecutionResult:
    """Everything a run produced and what it cost."""

    matrices: dict[str, np.ndarray]  # program outputs, by version name
    scalars: dict[str, float]  # requested driver scalars
    comm_bytes: int  # metered cross-worker traffic of this run
    time: TimeBreakdown  # simulated seconds (network/compute/overhead)
    num_stages: int
    peak_memory_bytes: int  # largest per-worker model-byte peak
    wall_seconds: float  # real elapsed time of the in-process run
    #: Block pairs this run dispatched through the engines' batched BLAS
    #: path (0 when batching is off or no stage had a regular dense grid).
    batched_pairs: int = 0
    trace: list[StepTrace] | None = None  # per-step records (trace=True)
    stage_timings: list[StageTiming] | None = None  # simulated stage schedule
    critical_path: tuple[int, ...] = ()  # stage-graph nodes charged to the clock
    recovery: dict | None = None  # fault/recovery summary (chaos runs only)
    cache: dict | None = None  # BlockCache stats (plans with cache_pins only)
    #: The run's TraceCollector when executed with a tracer installed
    #: (``repro.trace``); ``None`` otherwise.
    tracing: object | None = None
    #: Static per-worker peak-memory bound from :mod:`repro.verify.memory`,
    #: computed before execution under this run's exact block size and
    #: concurrency; ``None`` if the prediction was unavailable.
    predicted_peak_memory_bytes: int | None = None
    #: Elastic-pool summary (slots, membership events, worker-seconds,
    #: rebalance traffic) for runs on an elastic backend; ``None`` on the
    #: static cluster.
    elastic: dict | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.time.total_seconds

    def comm_by_stage(self) -> dict[int, int]:
        """Measured bytes per stage (requires a traced run)."""
        if self.trace is None:
            raise ExecutionError("run with trace=True to get per-stage traffic")
        out: dict[int, int] = {}
        for record in self.trace:
            out[record.stage] = out.get(record.stage, 0) + record.comm_bytes
        return out


class ExecutionState:
    """Shared mutable state of one plan execution (thread-safe where two
    concurrently running stages can touch it)."""

    def __init__(
        self,
        backend: Backend,
        resources: ResourceManager,
        inputs: dict[str, np.ndarray],
        block_size: int,
    ) -> None:
        self.backend = backend
        self.resources = resources
        self.inputs = inputs
        self.block_size = block_size
        self._lock = threading.Lock()
        self._scalars: dict[str, float] = {}
        self._traces: dict[int, StepTrace] = {}
        self._completed: set[int] = set()

    # -- step completion (retry support) -------------------------------------

    def is_step_completed(self, plan_index: int) -> bool:
        with self._lock:
            return plan_index in self._completed

    def mark_step_completed(self, plan_index: int) -> None:
        with self._lock:
            self._completed.add(plan_index)

    # -- driver scalars ------------------------------------------------------

    def get_scalar(self, name: str) -> float:
        with self._lock:
            if name not in self._scalars:
                raise ExecutionError(f"scalar {name!r} referenced before computation")
            return self._scalars[name]

    def set_scalar(self, name: str, value: float) -> None:
        with self._lock:
            self._scalars[name] = value

    def scalars_snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._scalars)

    # -- tracing -------------------------------------------------------------

    def record_trace(self, plan_index: int, trace: StepTrace) -> None:
        with self._lock:
            self._traces[plan_index] = trace

    def traces_in_plan_order(self) -> list[StepTrace]:
        with self._lock:
            return [self._traces[i] for i in sorted(self._traces)]


def _batched_pairs_total(backend) -> int:
    """Cumulative batched-BLAS pair count across the backend's engines."""
    return sum(
        getattr(stats, "batched_pairs", 0)
        for stats in backend.flop_sources().values()
    )


class PlanExecutor:
    """Executes DMac plans on a :class:`Backend` via the stage scheduler.

    The default backend comes from ``context.make_backend()`` -- the
    static :class:`~repro.runtime.backend.SimulatedBackend` for a plain
    :class:`ClusterContext`, the elastic backend for an elastic context --
    preserving the historical constructor.
    """

    def __init__(
        self,
        context: ClusterContext,
        block_size: int | None = None,
        max_concurrent_stages: int | None = None,
        backend: Backend | None = None,
    ) -> None:
        self.context = context
        self.backend = backend if backend is not None else context.make_backend()
        self.block_size = (
            block_size if block_size is not None else context.config.block_size
        )
        if max_concurrent_stages is None:
            max_concurrent_stages = getattr(
                context.config, "max_concurrent_stages", None
            )
        if getattr(self.backend, "pool", None) is not None:
            # Elastic runs dispatch serially: membership transitions fire
            # between stage-graph nodes in one deterministic order.  The
            # simulated schedule still reflects dependency-bound overlap.
            max_concurrent_stages = 1
        self.max_concurrent_stages = max_concurrent_stages

    def execute(
        self,
        plan: Plan,
        inputs: dict[str, np.ndarray] | None = None,
        trace: bool = False,
        chaos=None,
        tracer=None,
    ) -> ExecutionResult:
        """Run ``plan``; ``inputs`` binds LoadOp names to driver arrays.
        With ``trace=True`` the result carries a per-step record of bytes,
        flops and wall time.  ``chaos`` installs a
        :class:`~repro.faults.ChaosEngine`: injected faults fire at the
        engine's named points, the scheduler retries retryable ones, and
        lost blocks are recomputed through their lineage cone; the result's
        ``recovery`` field summarises what happened.  With ``chaos=None``
        (the default) every fault path is inert and the run is bit-identical
        to one without this machinery.  ``tracer`` installs a
        :class:`~repro.trace.TraceCollector` for the duration of the run
        (returned on ``result.tracing``); with ``tracer=None`` every emit
        site is inert, same discipline as ``chaos``."""
        if tracer is not None:
            with install_tracer(tracer):
                return self._execute(plan, inputs, trace, chaos, tracer)
        return self._execute(plan, inputs, trace, chaos, None)

    def _execute(
        self,
        plan: Plan,
        inputs: dict[str, np.ndarray] | None,
        trace: bool,
        chaos,
        tracer,
    ) -> ExecutionResult:
        inputs = inputs or {}
        if plan.num_stages == 0:
            schedule_stages(plan)
        graph = StageGraph.from_plan(plan)
        backend = self.backend
        block_size = (
            self.block_size
            if self.block_size is not None
            else backend.default_block_size(plan)
        )
        config = self.context.config
        predicted_peak = self._predict_peak(plan, graph, block_size, config)
        cache = None
        if getattr(plan, "cache_pins", ()):
            budget = getattr(config, "cache_limit_bytes", None)
            if budget is None:
                budget = getattr(config, "memory_limit_bytes", None)
            cache = BlockCache(plan.cache_pins, backend, budget_bytes=budget)
        manager = ResourceManager(
            plan,
            backend,
            max_events=getattr(config, "resource_event_log_limit", None),
            cache=cache,
        )
        resources = manager
        pool = getattr(backend, "pool", None)
        if pool is not None and pool.events and chaos is None:
            # A leave loses blocks that only lineage recovery can rebuild,
            # so elastic runs with a timeline always execute under the
            # recovery machinery; an engine with no fault clauses never
            # fires, keeping clean elastic runs deterministic.
            from repro.faults.chaos import ChaosEngine

            chaos = ChaosEngine(pool.seed, ())
        scheduler_kwargs: dict = {}
        recovery_log = None
        checkpoints = None
        if chaos is not None:
            # Imported lazily: repro.faults sits above the runtime in the
            # layer diagram and must not be a hard import of the executor.
            from repro.config import RecoveryConfig
            from repro.faults.recovery import CheckpointStore, RecoveringResources
            from repro.faults.report import RecoveryLog, summarise_recovery

            recovery_log = RecoveryLog()
            chaos.attach_sink(recovery_log.record)
            recovery_config = getattr(config, "recovery", None) or RecoveryConfig()
            if recovery_config.checkpoint_every > 0:
                checkpoints = CheckpointStore(
                    every=recovery_config.checkpoint_every,
                    clock=backend.clock,
                    log=recovery_log,
                )
            resources = RecoveringResources(
                manager=manager,
                chaos=chaos,
                plan=plan,
                backend=backend,
                checkpoints=checkpoints,
                log=recovery_log,
            )
            scheduler_kwargs = dict(
                max_attempts=recovery_config.max_stage_attempts,
                backoff_base_sec=recovery_config.backoff_base_sec,
                backoff_cap_sec=recovery_config.backoff_cap_sec,
                speculation_multiplier=recovery_config.speculation_multiplier,
                event_sink=recovery_log.record,
            )
            backend.install_chaos(chaos)
        state = ExecutionState(
            backend=backend,
            resources=resources,
            inputs=inputs,
            block_size=block_size,
        )
        resources.bind_state(state)
        worker_of_stats = {
            id(stats): worker for worker, stats in backend.flop_sources().items()
        }

        bytes_before = backend.ledger.snapshot()
        batched_before = _batched_pairs_total(backend)
        elastic_events_before = len(pool.applied_log) if pool is not None else 0
        rebalance_before = (
            backend.rebalance_bytes if pool is not None else 0
        )
        records_before = len(backend.ledger.records()) if tracer is not None else 0
        clock_window = backend.clock.begin_window() if tracer is not None else None
        wall_start = time.perf_counter()
        scheduler = StageScheduler(self.max_concurrent_stages, **scheduler_kwargs)
        plan_span = (
            tracer.begin_span("plan", "plan", num_stages=plan.num_stages)
            if tracer is not None
            else None
        )
        try:
            report = scheduler.run(
                graph,
                lambda node: self._run_node(
                    node, plan, state, worker_of_stats, trace, chaos
                ),
            )
            matrices = self._materialise_outputs(plan, state)
            cache_stats = cache.stats() if cache is not None else None
        except BaseException:
            if clock_window is not None:
                backend.clock.end_window(clock_window)
            raise
        finally:
            if plan_span is not None:
                tracer.end_span(plan_span)
            state.resources.close()
            if chaos is not None:
                backend.install_chaos(None)
        backend.clock.advance(report.elapsed)
        if tracer is not None:
            tracer.apply_schedule(report.timings, report.critical_path)
            tracer.attach_elapsed(report.elapsed)
            tracer.attach_ledger_window(backend.ledger.records()[records_before:])
            window = backend.clock.end_window(clock_window)
            tracer.attach_clock_delta(
                window.network_seconds,
                window.compute_seconds,
                window.overhead_seconds,
            )

        recovery = None
        if chaos is not None:
            recovery = summarise_recovery(
                log=recovery_log,
                chaos=chaos,
                resources=resources,
                checkpoints=checkpoints,
            )
        elastic = None
        if pool is not None:
            elastic = backend.elastic_summary(
                report,
                events_from=elastic_events_before,
                rebalance_bytes_before=rebalance_before,
            )
            # Staged programs run segment after segment on one pool; event
            # stages index the cumulative stage count.
            pool.finish_segment(plan.num_stages)
        scalars = state.scalars_snapshot()
        return ExecutionResult(
            matrices=matrices,
            scalars={name: scalars[name] for name in plan.program.scalar_outputs},
            comm_bytes=backend.ledger.snapshot() - bytes_before,
            batched_pairs=_batched_pairs_total(backend) - batched_before,
            time=dataclasses.replace(report.elapsed),
            num_stages=plan.num_stages,
            peak_memory_bytes=backend.peak_memory_bytes(),
            wall_seconds=time.perf_counter() - wall_start,
            trace=state.traces_in_plan_order() if trace else None,
            stage_timings=report.timings,
            critical_path=report.critical_path,
            recovery=recovery,
            cache=cache_stats,
            tracing=tracer,
            predicted_peak_memory_bytes=predicted_peak,
            elastic=elastic,
        )

    def _predict_peak(self, plan, graph, block_size, config) -> int | None:
        """Static per-worker peak bound for this exact run configuration.
        Imported lazily -- repro.verify sits above the runtime -- and never
        fatal: a plan the analyser cannot size simply reports ``None``."""
        from repro.errors import ReproError

        try:
            from repro.verify.memory import predict_peak_memory

            return predict_peak_memory(
                plan,
                num_workers=config.num_workers,
                threads_per_worker=config.threads_per_worker,
                block_size=block_size,
                inplace=getattr(config, "inplace", True),
                max_concurrent_stages=self.max_concurrent_stages,
                graph=graph,
                strassen=getattr(config, "strassen", False),
                strassen_min_size=getattr(config, "strassen_min_size", 128),
            ).peak_bytes
        except ReproError:
            return None

    # -- one stage-graph node ------------------------------------------------

    def _run_node(
        self,
        node: StageNode,
        plan: Plan,
        state: ExecutionState,
        worker_of_stats: dict[int, int],
        trace: bool,
        chaos=None,
    ) -> StageMeter:
        meter = StageMeter()
        tracer = active_tracer()
        try:
            with contextlib.ExitStack() as stack:
                if tracer is not None:
                    # One stage span per *attempt* (retries open a new one);
                    # sim times are assigned post-run from the schedule.
                    stack.enter_context(
                        tracer.span(
                            "stage",
                            f"stage-{node.stage}",
                            node=node.index,
                            stage=node.stage,
                        )
                    )
                    stack.enter_context(stage_scope(node.index, node.stage))
                stack.enter_context(metered(meter))
                begin_node = getattr(state.backend, "begin_node", None)
                if chaos is None:
                    if begin_node is not None:
                        begin_node(node, state.resources)
                    self._run_steps(node, plan, state, worker_of_stats, trace, meter)
                else:
                    with chaos.stage_scope(node):
                        chaos.on_stage_start()  # may raise an injected crash
                        meter.slowdown_factor = chaos.slowdown_factor()
                        if begin_node is not None:
                            # Elastic membership transitions due before this
                            # stage: applied under the node's meter and chaos
                            # scope, so rebalance traffic is charged (and
                            # fault-injectable) like any other stage work.
                            begin_node(node, state.resources)
                        self._run_steps(
                            node, plan, state, worker_of_stats, trace, meter
                        )
        except BaseException as error:
            # The failed attempt's metered cost: the scheduler charges it to
            # the node's simulated duration even though the attempt failed.
            error.stage_meter = meter  # type: ignore[attr-defined]
            raise
        return meter

    def _run_steps(
        self,
        node: StageNode,
        plan: Plan,
        state: ExecutionState,
        worker_of_stats: dict[int, int],
        trace: bool,
        meter: StageMeter,
    ) -> None:
        backend = state.backend
        tracer = active_tracer()
        backend.clock.advance_stage_overhead(1)
        for plan_index in node.steps:
            if state.is_step_completed(plan_index):
                continue  # a retried node re-runs only its unfinished steps
            step = plan.steps[plan_index]
            step_wall = time.perf_counter()
            step_span = (
                tracer.begin_span(
                    "step",
                    str(step),
                    node=node.index,
                    stage=step.stage,
                    plan_index=plan_index,
                    # Where within the node's metered duration this step
                    # starts: placed on the simulated timeline post-run.
                    sim_offset=meter.total_seconds,
                )
                if tracer is not None
                else None
            )
            kernel = spec_for(step).kernel
            try:
                with backend.ledger.scope(f"stage-{step.stage}"):
                    with backend.ledger.scope(str(step)):
                        kernel(step, state)
                dense: dict[int, int] = {}
                sparse: dict[int, int] = {}
                flops = 0
                for stats, dense_flops, sparse_flops in meter.take_step_flops():
                    worker = worker_of_stats.get(id(stats))
                    if worker is None:  # pragma: no cover - foreign stats object
                        continue
                    dense[worker] = dense.get(worker, 0) + dense_flops
                    sparse[worker] = sparse.get(worker, 0) + sparse_flops
                    flops += dense_flops + sparse_flops
                backend.clock.advance_compute(
                    dense, sparse, backend.threads_per_worker
                )
                step_bytes = meter.take_step_bytes()
            except BaseException:
                if step_span is not None:  # keep spans balanced on faults
                    tracer.end_span(step_span)
                raise
            if step_span is not None:
                tracer.end_span(
                    step_span,
                    sim_duration=meter.total_seconds - step_span.attrs["sim_offset"],
                    bytes=step_bytes,
                    flops=flops,
                )
            if trace:
                state.record_trace(
                    plan_index,
                    StepTrace(
                        step=str(step),
                        stage=step.stage,
                        comm_bytes=step_bytes,
                        flops=flops,
                        wall_seconds=time.perf_counter() - step_wall,
                    ),
                )
            state.resources.consume(step)
            state.mark_step_completed(plan_index)

    def _materialise_outputs(
        self, plan: Plan, state: ExecutionState
    ) -> dict[str, np.ndarray]:
        matrices: dict[str, np.ndarray] = {}
        for name, instance in plan.outputs.items():
            matrix = self._output_matrix(state, instance)
            array = matrix.to_numpy()
            matrices[name] = array.T if instance.transposed else array
            state.resources.release_output(instance)
        return matrices

    @staticmethod
    def _output_matrix(
        state: ExecutionState, instance: MatrixInstance
    ) -> DistributedMatrix:
        try:
            return state.resources.get(instance)
        except ExecutionError:
            raise ExecutionError(
                f"output instance {instance} was freed or never built"
            ) from None


__all__ = [
    "ExecutionResult",
    "ExecutionState",
    "PlanExecutor",
    "SchedulerReport",
    "StepTrace",
    "evaluate_scalar",
]

"""The runtime executor: stage-graph execution of DMac plans.

This replaces the old serial step loop of ``repro.core.executor`` (kept as
a compatibility shim).  An execution now flows through the runtime's parts:

1. the plan is folded into a :class:`~repro.runtime.graph.StageGraph`,
2. the :class:`~repro.runtime.scheduler.StageScheduler` dispatches ready
   nodes concurrently; each node runs its steps through the operator
   registry's kernels against a pluggable
   :class:`~repro.runtime.backend.Backend`,
3. matrix lifetimes are reference counts held by a
   :class:`~repro.runtime.resources.ResourceManager` (released exactly
   once, also on mid-run failure),
4. per-node :class:`~repro.runtime.metering.StageMeter` measurements are
   folded into the simulated clock as *critical-path* time.

Ledgered bytes are unchanged from the serial executor -- same kernels,
same scopes -- only the simulated seconds now reflect stage overlap.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from repro.core.plan import MatrixInstance, Plan
from repro.core.stages import schedule_stages
from repro.errors import ExecutionError
from repro.matrix.distributed import DistributedMatrix
from repro.rdd.clock import TimeBreakdown
from repro.rdd.context import ClusterContext
from repro.runtime.backend import Backend, SimulatedBackend
from repro.runtime.graph import StageGraph, StageNode
from repro.runtime.metering import StageMeter, metered
from repro.runtime.registry import spec_for
from repro.runtime.resources import ResourceManager
from repro.runtime.scalars import evaluate_scalar  # noqa: F401  (re-export)
from repro.runtime.scheduler import SchedulerReport, StageScheduler, StageTiming


@dataclasses.dataclass(frozen=True)
class StepTrace:
    """Per-step record collected when executing with ``trace=True``."""

    step: str
    stage: int
    comm_bytes: int
    flops: int
    wall_seconds: float


@dataclasses.dataclass
class ExecutionResult:
    """Everything a run produced and what it cost."""

    matrices: dict[str, np.ndarray]  # program outputs, by version name
    scalars: dict[str, float]  # requested driver scalars
    comm_bytes: int  # metered cross-worker traffic of this run
    time: TimeBreakdown  # simulated seconds (network/compute/overhead)
    num_stages: int
    peak_memory_bytes: int  # largest per-worker model-byte peak
    wall_seconds: float  # real elapsed time of the in-process run
    trace: list[StepTrace] | None = None  # per-step records (trace=True)
    stage_timings: list[StageTiming] | None = None  # simulated stage schedule
    critical_path: tuple[int, ...] = ()  # stage-graph nodes charged to the clock

    @property
    def simulated_seconds(self) -> float:
        return self.time.total_seconds

    def comm_by_stage(self) -> dict[int, int]:
        """Measured bytes per stage (requires a traced run)."""
        if self.trace is None:
            raise ExecutionError("run with trace=True to get per-stage traffic")
        out: dict[int, int] = {}
        for record in self.trace:
            out[record.stage] = out.get(record.stage, 0) + record.comm_bytes
        return out


class ExecutionState:
    """Shared mutable state of one plan execution (thread-safe where two
    concurrently running stages can touch it)."""

    def __init__(
        self,
        backend: Backend,
        resources: ResourceManager,
        inputs: dict[str, np.ndarray],
        block_size: int,
    ) -> None:
        self.backend = backend
        self.resources = resources
        self.inputs = inputs
        self.block_size = block_size
        self._lock = threading.Lock()
        self._scalars: dict[str, float] = {}
        self._traces: dict[int, StepTrace] = {}

    # -- driver scalars ------------------------------------------------------

    def get_scalar(self, name: str) -> float:
        with self._lock:
            if name not in self._scalars:
                raise ExecutionError(f"scalar {name!r} referenced before computation")
            return self._scalars[name]

    def set_scalar(self, name: str, value: float) -> None:
        with self._lock:
            self._scalars[name] = value

    def scalars_snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._scalars)

    # -- tracing -------------------------------------------------------------

    def record_trace(self, plan_index: int, trace: StepTrace) -> None:
        with self._lock:
            self._traces[plan_index] = trace

    def traces_in_plan_order(self) -> list[StepTrace]:
        with self._lock:
            return [self._traces[i] for i in sorted(self._traces)]


class PlanExecutor:
    """Executes DMac plans on a :class:`Backend` via the stage scheduler.

    The default backend is :class:`SimulatedBackend` over the given
    :class:`ClusterContext`, preserving the historical constructor.
    """

    def __init__(
        self,
        context: ClusterContext,
        block_size: int | None = None,
        max_concurrent_stages: int | None = None,
        backend: Backend | None = None,
    ) -> None:
        self.context = context
        self.backend = backend if backend is not None else SimulatedBackend(context)
        self.block_size = (
            block_size if block_size is not None else context.config.block_size
        )
        if max_concurrent_stages is None:
            max_concurrent_stages = getattr(
                context.config, "max_concurrent_stages", None
            )
        self.max_concurrent_stages = max_concurrent_stages

    def execute(
        self,
        plan: Plan,
        inputs: dict[str, np.ndarray] | None = None,
        trace: bool = False,
    ) -> ExecutionResult:
        """Run ``plan``; ``inputs`` binds LoadOp names to driver arrays.
        With ``trace=True`` the result carries a per-step record of bytes,
        flops and wall time."""
        inputs = inputs or {}
        if plan.num_stages == 0:
            schedule_stages(plan)
        graph = StageGraph.from_plan(plan)
        backend = self.backend
        block_size = (
            self.block_size
            if self.block_size is not None
            else backend.default_block_size(plan)
        )
        state = ExecutionState(
            backend=backend,
            resources=ResourceManager(plan, backend),
            inputs=inputs,
            block_size=block_size,
        )
        worker_of_stats = {
            id(stats): worker for worker, stats in backend.flop_sources().items()
        }

        bytes_before = backend.ledger.snapshot()
        wall_start = time.perf_counter()
        scheduler = StageScheduler(self.max_concurrent_stages)
        try:
            report = scheduler.run(
                graph,
                lambda node: self._run_node(node, plan, state, worker_of_stats, trace),
            )
            matrices = self._materialise_outputs(plan, state)
        finally:
            state.resources.close()
        backend.clock.advance(report.elapsed)

        scalars = state.scalars_snapshot()
        return ExecutionResult(
            matrices=matrices,
            scalars={name: scalars[name] for name in plan.program.scalar_outputs},
            comm_bytes=backend.ledger.snapshot() - bytes_before,
            time=dataclasses.replace(report.elapsed),
            num_stages=plan.num_stages,
            peak_memory_bytes=backend.peak_memory_bytes(),
            wall_seconds=time.perf_counter() - wall_start,
            trace=state.traces_in_plan_order() if trace else None,
            stage_timings=report.timings,
            critical_path=report.critical_path,
        )

    # -- one stage-graph node ------------------------------------------------

    def _run_node(
        self,
        node: StageNode,
        plan: Plan,
        state: ExecutionState,
        worker_of_stats: dict[int, int],
        trace: bool,
    ) -> StageMeter:
        backend = state.backend
        meter = StageMeter()
        with metered(meter):
            backend.clock.advance_stage_overhead(1)
            for plan_index in node.steps:
                step = plan.steps[plan_index]
                step_wall = time.perf_counter()
                kernel = spec_for(step).kernel
                with backend.ledger.scope(f"stage-{step.stage}"):
                    with backend.ledger.scope(str(step)):
                        kernel(step, state)
                dense: dict[int, int] = {}
                sparse: dict[int, int] = {}
                flops = 0
                for stats, dense_flops, sparse_flops in meter.take_step_flops():
                    worker = worker_of_stats.get(id(stats))
                    if worker is None:  # pragma: no cover - foreign stats object
                        continue
                    dense[worker] = dense.get(worker, 0) + dense_flops
                    sparse[worker] = sparse.get(worker, 0) + sparse_flops
                    flops += dense_flops + sparse_flops
                backend.clock.advance_compute(
                    dense, sparse, backend.threads_per_worker
                )
                step_bytes = meter.take_step_bytes()
                if trace:
                    state.record_trace(
                        plan_index,
                        StepTrace(
                            step=str(step),
                            stage=step.stage,
                            comm_bytes=step_bytes,
                            flops=flops,
                            wall_seconds=time.perf_counter() - step_wall,
                        ),
                    )
                state.resources.consume(step)
        return meter

    def _materialise_outputs(
        self, plan: Plan, state: ExecutionState
    ) -> dict[str, np.ndarray]:
        matrices: dict[str, np.ndarray] = {}
        for name, instance in plan.outputs.items():
            matrix = self._output_matrix(state, instance)
            array = matrix.to_numpy()
            matrices[name] = array.T if instance.transposed else array
            state.resources.release_output(instance)
        return matrices

    @staticmethod
    def _output_matrix(
        state: ExecutionState, instance: MatrixInstance
    ) -> DistributedMatrix:
        try:
            return state.resources.get(instance)
        except ExecutionError:
            raise ExecutionError(
                f"output instance {instance} was freed or never built"
            ) from None


__all__ = [
    "ExecutionResult",
    "ExecutionState",
    "PlanExecutor",
    "SchedulerReport",
    "StepTrace",
    "evaluate_scalar",
]

"""The stage graph: the unit of scheduling for the concurrent runtime.

``schedule_stages`` labels every step with a stage *number*, but numbers
alone describe a chain -- stage 2 after stage 1 after nothing.  The paper's
point (Section 4.3 / 5.2) is stronger: a stage is a communication-free
island of the plan DAG, and islands that do not depend on each other can be
"perfectly dispatched to the nodes in the cluster and executed
independently".  :class:`StageGraph` recovers that structure:

* steps sharing a stage number are split into **connected components** of
  the intra-stage dependency edges -- two same-numbered steps with no data
  flowing between them land in different nodes and may run concurrently;
* every node records the nodes it **depends on** (matrix and driver-scalar
  producers), giving the scheduler its ready set;
* the **critical path** (the dependency chain with the most steps) is what
  the simulated clock charges under concurrent execution.

Construction is total and read-only: a malformed plan (instances consumed
before production, hand-corrupted stage numbers) still yields a graph, and
:meth:`StageGraph.stage_violations` reports exactly the wide-edge defects
the lint's DM103 rule publishes.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.core.plan import MatrixInstance, Plan, Step
from repro.core.stages import schedule_stages


@dataclasses.dataclass(frozen=True)
class StageNode:
    """One schedulable unit: a communication-free island of the plan."""

    index: int  # node id; indices are a valid topological order
    stage: int  # the paper's stage number (shared by all steps)
    steps: tuple[int, ...]  # plan step indices, ascending
    deps: tuple[int, ...]  # node indices this node waits on
    dependents: tuple[int, ...]  # node indices waiting on this node


class StageGraph:
    """Inter-stage dependency DAG built from a staged plan."""

    def __init__(
        self,
        plan: Plan,
        nodes: list[StageNode],
        step_deps: dict[int, frozenset[int]],
        node_of_step: dict[int, int],
        available_stage: dict[MatrixInstance, int],
    ) -> None:
        self.plan = plan
        self.nodes = nodes
        #: plan-step index -> producer plan-step indices it consumes
        self.step_deps = step_deps
        #: plan-step index -> index of the node containing it
        self.node_of_step = node_of_step
        #: stage each instance becomes available in (first producer wins)
        self.available_stage = available_stage

    # -- construction -------------------------------------------------------

    @classmethod
    def from_plan(cls, plan: Plan) -> "StageGraph":
        """Build the graph; stage-schedules the plan first if it never was."""
        if plan.num_stages == 0:
            schedule_stages(plan)
        steps = plan.steps

        producer: dict[MatrixInstance, int] = {}
        scalar_producer: dict[str, int] = {}
        available: dict[MatrixInstance, int] = {}
        step_deps: dict[int, frozenset[int]] = {}
        for index, step in enumerate(steps):
            deps = set()
            for instance in step.inputs():
                j = producer.get(instance)
                if j is not None and j < index:
                    deps.add(j)
            for name in step.scalar_inputs():
                j = scalar_producer.get(name)
                if j is not None and j < index:
                    deps.add(j)
            step_deps[index] = frozenset(deps)
            output = step.output_instance()
            if output is not None:
                producer.setdefault(output, index)
                available.setdefault(
                    output, step.stage + (1 if step.communicates else 0)
                )
            scalar = step.scalar_output()
            if scalar is not None:
                scalar_producer.setdefault(scalar, index)

        # Union steps connected by an intra-stage dependency edge: those must
        # run in one dispatch.  Cross-stage edges become graph edges instead.
        parent = list(range(len(steps)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for index, deps in step_deps.items():
            for j in deps:
                if steps[j].stage == steps[index].stage:
                    parent[find(index)] = find(j)

        groups: dict[int, list[int]] = {}
        for index in range(len(steps)):
            groups.setdefault(find(index), []).append(index)
        members = sorted(groups.values(), key=lambda g: g[0])

        group_of_step = {s: g for g, grp in enumerate(members) for s in grp}
        group_deps: list[set[int]] = [set() for __ in members]
        for index, deps in step_deps.items():
            for j in deps:
                if group_of_step[j] != group_of_step[index]:
                    group_deps[group_of_step[index]].add(group_of_step[j])

        order = _topo_order(members, group_deps)
        node_index = {g: i for i, g in enumerate(order)}
        dependents: list[list[int]] = [[] for __ in members]
        for g, deps in enumerate(group_deps):
            for d in deps:
                dependents[d].append(g)

        nodes = [
            StageNode(
                index=i,
                stage=steps[members[g][0]].stage,
                steps=tuple(members[g]),
                deps=tuple(sorted(node_index[d] for d in group_deps[g])),
                dependents=tuple(sorted(node_index[d] for d in dependents[g])),
            )
            for i, g in enumerate(order)
        ]
        node_of_step = {s: node_index[g] for s, g in group_of_step.items()}
        return cls(plan, nodes, step_deps, node_of_step, available)

    # -- structure ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(node.deps) for node in self.nodes)

    def roots(self) -> list[StageNode]:
        """Nodes with no dependencies (ready immediately)."""
        return [node for node in self.nodes if not node.deps]

    def steps_of(self, node: StageNode) -> list[Step]:
        return [self.plan.steps[i] for i in node.steps]

    def critical_path(self) -> list[int]:
        """Node indices of the dependency chain carrying the most steps."""
        if not self.nodes:
            return []
        weight = [len(node.steps) for node in self.nodes]
        best = list(weight)  # heaviest chain ending at each node
        choice: list[int | None] = [None] * len(self.nodes)
        for node in self.nodes:  # indices are topological
            for dep in node.deps:
                candidate = best[dep] + weight[node.index]
                # strict improvement, lowest-index tie-break: deterministic
                if candidate > best[node.index]:
                    best[node.index] = candidate
                    choice[node.index] = dep
        tail = max(range(len(self.nodes)), key=lambda i: (best[i], -i))
        path: list[int] = []
        cursor: int | None = tail
        while cursor is not None:
            path.append(cursor)
            cursor = choice[cursor]
        return list(reversed(path))

    def stage_violations(self) -> Iterator[tuple[int, MatrixInstance, int]]:
        """``(step index, instance, available stage)`` for every input that
        only becomes available -- through a communicating edge -- in the same
        or a later stage than its consumer (the lint's DM103 defect)."""
        for index, step in enumerate(self.plan.steps):
            for instance in step.inputs():
                available = self.available_stage.get(instance)
                if available is not None and available > step.stage:
                    yield (index, instance, available)

    # -- presentation -------------------------------------------------------

    def to_json_dict(self) -> dict:
        """JSON-ready structure (the CLI's ``repro stages --format json``)."""
        critical = self.critical_path()
        return {
            "num_stages": self.plan.num_stages,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "critical_path": critical,
            "critical_path_steps": sum(len(self.nodes[i].steps) for i in critical),
            "nodes": [
                {
                    "index": node.index,
                    "stage": node.stage,
                    "deps": list(node.deps),
                    "steps": [
                        {
                            "plan_index": i,
                            "description": str(self.plan.steps[i]),
                            "communicates": self.plan.steps[i].communicates,
                        }
                        for i in node.steps
                    ],
                }
                for node in self.nodes
            ],
        }

    def describe(self) -> str:
        """Human-readable listing: topo order, per-node steps, critical path."""
        critical = self.critical_path()
        on_path = set(critical)
        lines = [
            f"stage graph: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.plan.num_stages} stages"
        ]
        for node in self.nodes:
            deps = ", ".join(str(d) for d in node.deps) or "-"
            marker = " *" if node.index in on_path else ""
            lines.append(
                f"node {node.index} [stage {node.stage}] deps: {deps}{marker}"
            )
            for i in node.steps:
                step = self.plan.steps[i]
                comm = " [comm]" if step.communicates else ""
                lines.append(f"  {step}{comm}")
        path = " -> ".join(str(i) for i in critical) or "-"
        total = sum(len(self.nodes[i].steps) for i in critical)
        lines.append(f"critical path (* above): {path} ({total} steps)")
        return "\n".join(lines)


def _topo_order(members: list[list[int]], group_deps: list[set[int]]) -> list[int]:
    """Kahn's algorithm over step groups, smallest-first-step tie-break.

    Defensive: if the group graph has a cycle (only possible for malformed,
    hand-corrupted plans the lint inspects), the stragglers are appended in
    plan order so the graph stays total.
    """
    remaining = {g: len(deps) for g, deps in enumerate(group_deps)}
    dependents: dict[int, list[int]] = {g: [] for g in remaining}
    for g, deps in enumerate(group_deps):
        for d in deps:
            dependents[d].append(g)
    ready = sorted((g for g, n in remaining.items() if n == 0),
                   key=lambda g: members[g][0])
    order: list[int] = []
    while ready:
        g = ready.pop(0)
        order.append(g)
        del remaining[g]
        freed = []
        for h in dependents[g]:
            if h in remaining:
                remaining[h] -= 1
                if remaining[h] == 0:
                    freed.append(h)
        if freed:
            ready.extend(freed)
            ready.sort(key=lambda g: members[g][0])
    order.extend(sorted(remaining, key=lambda g: members[g][0]))
    return order

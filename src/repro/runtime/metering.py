"""Per-stage metering: redirecting charges to the stage that caused them.

The serial executor could attribute simulated time and flops to steps by
snapshotting global counters around each step.  Under the concurrent stage
scheduler two stages run at once, so global deltas would interleave.  A
:class:`StageMeter` is a private accumulator one scheduler task installs
(via a :mod:`contextvars` context variable) for the duration of its stage;
the clock and the engines consult :func:`active_meter` and, when one is
installed, charge *it* instead of (clock) or in addition to (engine
counters) the global state.  The scheduler then owns exact per-stage
durations and can commit only the critical path to the global clock.

A context variable -- not a plain thread-local -- because a worker engine
fans block tasks out to its own thread pool; the engine runs each pool
task under a copy of the submitting task's context, so the meter (and the
ledger's scope stack, which follows the same pattern) travels with it
(see :meth:`repro.localexec.engine.LocalEngine._run`).

This module intentionally imports nothing from :mod:`repro`: it sits below
the clock and the engines in the import graph.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from typing import Iterator

#: The meter of the stage currently executing on this thread (if any).
_ACTIVE: contextvars.ContextVar["StageMeter | None"] = contextvars.ContextVar(
    "repro_stage_meter", default=None
)


def active_meter() -> "StageMeter | None":
    """The installed :class:`StageMeter`, or ``None`` outside a stage."""
    return _ACTIVE.get()


@contextlib.contextmanager
def metered(meter: "StageMeter") -> Iterator["StageMeter"]:
    """Install ``meter`` as the active meter for the ``with`` block."""
    token = _ACTIVE.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE.reset(token)


class StageMeter:
    """Accumulates the simulated time, bytes and flops of one stage run.

    Thread-safe: a stage's block tasks may report from several engine pool
    threads at once.  ``take_step_*`` methods drain the per-step counters
    (the stage runner calls them after each plan step to build traces and
    charge per-step compute time).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.network_seconds = 0.0
        self.compute_seconds = 0.0
        self.overhead_seconds = 0.0
        self.network_bytes = 0
        self._step_bytes = 0
        # flop counters keyed by the reporting EngineStats object, so the
        # scheduler can map them back to worker indices.
        self._step_flops: dict[int, tuple[object, int, int]] = {}

    # -- charges (called by the clock and the engines) ----------------------

    def add_network(self, nbytes: int, seconds: float) -> None:
        with self._lock:
            self.network_bytes += nbytes
            self._step_bytes += nbytes
            self.network_seconds += seconds

    def add_compute(self, seconds: float) -> None:
        with self._lock:
            self.compute_seconds += seconds

    def add_overhead(self, seconds: float) -> None:
        with self._lock:
            self.overhead_seconds += seconds

    def record_flops(self, stats: object, flops: int, sparse: bool) -> None:
        """An engine reports block flops; ``stats`` identifies the engine."""
        with self._lock:
            owner, dense_total, sparse_total = self._step_flops.get(
                id(stats), (stats, 0, 0)
            )
            if sparse:
                sparse_total += flops
            else:
                dense_total += flops
            self._step_flops[id(stats)] = (owner, dense_total, sparse_total)

    # -- per-step draining (called by the stage runner) ---------------------

    def take_step_flops(self) -> list[tuple[object, int, int]]:
        """``(stats, dense, sparse)`` recorded since the last take."""
        with self._lock:
            out = list(self._step_flops.values())
            self._step_flops.clear()
        return out

    def take_step_bytes(self) -> int:
        """Network bytes charged since the last take."""
        with self._lock:
            out = self._step_bytes
            self._step_bytes = 0
        return out

    # -- totals -------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return self.network_seconds + self.compute_seconds + self.overhead_seconds

    def breakdown(self) -> tuple[float, float, float]:
        """``(network, compute, overhead)`` seconds accumulated so far."""
        with self._lock:
            return (self.network_seconds, self.compute_seconds, self.overhead_seconds)

"""The operator registry: one table describing every plan-step kind.

Before this table existed, four modules each carried their own
isinstance-dispatch chain over the step kinds -- the executor (physical
kernels), the planner (lang-operator lowering), the lint's abstract
interpreter (shape transfer functions) and the plan visualiser (edge
labels).  Adding an operator meant editing four switches that could drift
apart silently.  Each :class:`OperatorSpec` now bundles those four facets
for one step kind:

* ``kernel``     -- runs the step against an execution state (used by
  :mod:`repro.runtime.executor`),
* ``op_types``   -- the :mod:`repro.lang.program` operator classes the
  planner lowers into this step, plus ``plan_hook``, the name of the
  :class:`~repro.core.planner.DMacPlanner` method that does it,
* ``shape_rule`` -- the abstract shape transfer function (used by
  :mod:`repro.lint.facts`),
* ``edge_label`` -- how the step is drawn (used by :mod:`repro.core.viz`).

Kernels talk to the cluster exclusively through the execution state's
:class:`~repro.runtime.backend.Backend`, so they are backend-agnostic.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.plan import (
    AggregateStep,
    CellwiseStep,
    ExtendedStep,
    FusedCellwiseStep,
    MatMulStep,
    MatrixInstance,
    Plan,
    RowAggStep,
    ScalarComputeStep,
    ScalarMatrixStep,
    SourceStep,
    Step,
    UnaryStep,
)
from repro.errors import ExecutionError, PlanError
from repro.lang.program import (
    AggregateOp,
    CellwiseOp,
    FullOp,
    LoadOp,
    MatMulOp,
    RandomOp,
    RowAggOp,
    ScalarComputeOp,
    ScalarMatrixOp,
    UnaryMatrixOp,
)
from repro.runtime.scalars import evaluate_scalar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import ExecutionState

Shape = tuple[int, int]


@dataclasses.dataclass(frozen=True)
class OperatorSpec:
    """Everything the system knows about one plan-step kind."""

    name: str  # stable kind name, e.g. "matmul"
    step_type: type[Step]
    op_types: tuple[type, ...]  # lang operators lowered into this step
    plan_hook: str  # DMacPlanner method that lowers them
    kernel: Callable[[Step, "ExecutionState"], None]
    shape_rule: Callable[[Step, dict[MatrixInstance, Shape]], Optional[Shape]]
    edge_label: Callable[[Step], str]


# ---------------------------------------------------------------------------
# Physical kernels.  Each consumes its inputs from the execution state's
# resource manager and publishes its output back; scheme guards mirror the
# old executor's defensive checks.
# ---------------------------------------------------------------------------


def _run_source(step: SourceStep, state: "ExecutionState") -> None:
    matrix = state.backend.materialise_source(
        step.op, step.output.scheme, state.block_size, state.inputs
    )
    state.resources.publish(step.output, matrix)


def _run_extended(step: ExtendedStep, state: "ExecutionState") -> None:
    source = state.resources.get(step.source)
    result = state.backend.extended(step.kind, source, step.target.scheme)
    if result.scheme is not step.target.scheme:  # pragma: no cover - guard
        raise ExecutionError(
            f"{step.kind} produced {result.scheme}, plan expected {step.target}"
        )
    state.resources.publish(step.target, result)


def _run_matmul(step: MatMulStep, state: "ExecutionState") -> None:
    left = state.resources.get(step.left)
    right = state.resources.get(step.right)
    result = state.backend.matmul(step.strategy, left, right, step.output.scheme)
    state.resources.publish(step.output, result)


def _run_cellwise(step: CellwiseStep, state: "ExecutionState") -> None:
    left = state.resources.get(step.left)
    right = state.resources.get(step.right)
    state.resources.publish(step.output, state.backend.cellwise(step.op.op, left, right))


def _run_fused_cellwise(step: FusedCellwiseStep, state: "ExecutionState") -> None:
    from repro.kernels.fused import lower_chain

    chain, external = lower_chain(step)
    operands = tuple(state.resources.get(instance) for instance in external)
    state.resources.publish(step.output, state.backend.fused_cellwise(chain, operands))


def _run_scalar_matrix(step: ScalarMatrixStep, state: "ExecutionState") -> None:
    source = state.resources.get(step.source)
    scalar = step.op.scalar
    value = state.get_scalar(scalar) if isinstance(scalar, str) else float(scalar)
    state.resources.publish(step.output, state.backend.scalar_op(step.op.op, source, value))


def _run_unary(step: UnaryStep, state: "ExecutionState") -> None:
    source = state.resources.get(step.source)
    state.resources.publish(step.output, state.backend.unary(step.op.func, source))


def _run_row_agg(step: RowAggStep, state: "ExecutionState") -> None:
    source = state.resources.get(step.source)
    result = state.backend.row_agg(
        step.op.kind, source, step.output.scheme, step.communicates
    )
    if result.scheme is not step.output.scheme:  # pragma: no cover - guard
        raise ExecutionError(
            f"{step.op.kind} produced {result.scheme}, plan expected {step.output}"
        )
    state.resources.publish(step.output, result)


def _run_aggregate(step: AggregateStep, state: "ExecutionState") -> None:
    source = state.resources.get(step.source)
    state.set_scalar(step.op.output, state.backend.aggregate(step.op.kind, source))


def _run_scalar_compute(step: ScalarComputeStep, state: "ExecutionState") -> None:
    state.set_scalar(step.op.output, evaluate_scalar(step.op.expr, state.scalars_snapshot()))


# ---------------------------------------------------------------------------
# Abstract shape transfer functions (the lint's interpreter).  ``None``
# means an input shape was unknown; the anomaly is reported elsewhere.
# ---------------------------------------------------------------------------


def _shape_source(step: SourceStep, shapes: dict) -> Optional[Shape]:
    return (step.op.rows, step.op.cols)


def _shape_extended(step: ExtendedStep, shapes: dict) -> Optional[Shape]:
    source = shapes.get(step.source)
    if source is None:
        return None
    if step.kind == "transpose":
        return (source[1], source[0])
    return source


def _shape_matmul(step: MatMulStep, shapes: dict) -> Optional[Shape]:
    left, right = shapes.get(step.left), shapes.get(step.right)
    if left is None or right is None:
        return None
    # An inner mismatch still yields the output shape the step intends;
    # the shape rule reports the mismatch itself.
    return (left[0], right[1])


def _shape_cellwise(step: CellwiseStep, shapes: dict) -> Optional[Shape]:
    return shapes.get(step.left) or shapes.get(step.right)


def _shape_fused_cellwise(step: FusedCellwiseStep, shapes: dict) -> Optional[Shape]:
    for instance in step.inputs():
        shape = shapes.get(instance)
        if shape is not None:
            return shape
    return None


def _shape_from_source(step, shapes: dict) -> Optional[Shape]:
    return shapes.get(step.source)


def _shape_row_agg(step: RowAggStep, shapes: dict) -> Optional[Shape]:
    source = shapes.get(step.source)
    if source is None:
        return None
    return (source[0], 1) if step.op.kind == "rowsum" else (1, source[1])


def _shape_none(step, shapes: dict) -> Optional[Shape]:
    return None


# ---------------------------------------------------------------------------
# The table itself.
# ---------------------------------------------------------------------------

_SPECS = (
    OperatorSpec(
        name="source",
        step_type=SourceStep,
        op_types=(LoadOp, RandomOp, FullOp),
        plan_hook="_plan_source",
        kernel=_run_source,
        shape_rule=_shape_source,
        edge_label=lambda step: type(step.op).__name__.replace("Op", "").lower(),
    ),
    OperatorSpec(
        name="extended",
        step_type=ExtendedStep,
        op_types=(),  # emitted by dependency lowering, not by a lang operator
        plan_hook="",
        kernel=_run_extended,
        shape_rule=_shape_extended,
        edge_label=lambda step: step.kind,
    ),
    OperatorSpec(
        name="matmul",
        step_type=MatMulStep,
        op_types=(MatMulOp,),
        plan_hook="_plan_matmul",
        kernel=_run_matmul,
        shape_rule=_shape_matmul,
        edge_label=lambda step: step.strategy,
    ),
    OperatorSpec(
        name="cellwise",
        step_type=CellwiseStep,
        op_types=(CellwiseOp,),
        plan_hook="_plan_cellwise",
        kernel=_run_cellwise,
        shape_rule=_shape_cellwise,
        edge_label=lambda step: step.op.op,
    ),
    OperatorSpec(
        name="fused-cellwise",
        step_type=FusedCellwiseStep,
        op_types=(),  # emitted by the optimizer's fusion pass, not the planner
        plan_hook="",
        kernel=_run_fused_cellwise,
        shape_rule=_shape_fused_cellwise,
        edge_label=lambda step: "fused:" + ",".join(step.ops),
    ),
    OperatorSpec(
        name="scalar-matrix",
        step_type=ScalarMatrixStep,
        op_types=(ScalarMatrixOp,),
        plan_hook="_plan_scalar_matrix",
        kernel=_run_scalar_matrix,
        shape_rule=_shape_from_source,
        edge_label=lambda step: f"{step.op.op} scalar",
    ),
    OperatorSpec(
        name="unary",
        step_type=UnaryStep,
        op_types=(UnaryMatrixOp,),
        plan_hook="_plan_unary",
        kernel=_run_unary,
        shape_rule=_shape_from_source,
        edge_label=lambda step: step.op.func,
    ),
    OperatorSpec(
        name="row-agg",
        step_type=RowAggStep,
        op_types=(RowAggOp,),
        plan_hook="_plan_row_agg",
        kernel=_run_row_agg,
        shape_rule=_shape_row_agg,
        edge_label=lambda step: step.op.kind,
    ),
    OperatorSpec(
        name="aggregate",
        step_type=AggregateStep,
        op_types=(AggregateOp,),
        plan_hook="_plan_aggregate",
        kernel=_run_aggregate,
        shape_rule=_shape_none,
        edge_label=lambda step: step.op.kind,
    ),
    OperatorSpec(
        name="scalar-compute",
        step_type=ScalarComputeStep,
        op_types=(ScalarComputeOp,),
        plan_hook="_plan_scalar_compute",
        kernel=_run_scalar_compute,
        shape_rule=_shape_none,
        edge_label=lambda step: "",
    ),
)

#: Step type -> spec (the executor/lint/viz lookup).
OPERATORS: dict[type[Step], OperatorSpec] = {spec.step_type: spec for spec in _SPECS}

#: Lang operator type -> spec (the planner lookup).
OPERATORS_BY_OP: dict[type, OperatorSpec] = {
    op_type: spec for spec in _SPECS for op_type in spec.op_types
}


def spec_for(step: Step) -> OperatorSpec:
    """The registered spec for a plan step; :class:`PlanError` if unknown."""
    spec = OPERATORS.get(type(step))
    if spec is None:
        raise PlanError(f"scheduler: unknown step {type(step).__name__}")
    return spec


def spec_for_op(op: object) -> OperatorSpec | None:
    """The spec whose step a lang operator lowers to (``None`` if unknown)."""
    return OPERATORS_BY_OP.get(type(op))


def validate_plan_steps(plan: Plan) -> None:
    """Fail fast (``PlanError``) when a plan carries an unregistered step."""
    for step in plan.steps:
        spec_for(step)

"""Refcount-based lifetime management for materialised matrices.

The serial executor freed matrices with a liveness pass ("pop after the
step whose index equals the instance's last use") -- correct only when
steps run in plan order.  Under concurrent stages there is no single
"current index", so lifetimes are reference counts instead: an instance's
count is the number of plan steps that consume it (plus a pin for every
program output), decremented as each consumer finishes.  At zero the
matrix is handed to the backend's ``release`` hook and dropped.

Every transition is recorded in an event log (``("publish" | "release",
instance)``), which is what the lifecycle property tests assert over:
every instance published during a run -- finished or aborted -- is
released exactly once.
"""

from __future__ import annotations

import threading

from repro.core.plan import MatrixInstance, Plan, Step
from repro.errors import ExecutionError
from repro.matrix.distributed import DistributedMatrix


class ResourceManager:
    """Tracks every live :class:`DistributedMatrix` of one plan execution."""

    def __init__(self, plan: Plan, backend=None) -> None:
        self._backend = backend
        self._lock = threading.Lock()
        self._live: dict[MatrixInstance, DistributedMatrix] = {}
        self._released: set[MatrixInstance] = set()
        self._refs: dict[MatrixInstance, int] = {}
        self.events: list[tuple[str, MatrixInstance]] = []
        for step in plan.steps:
            for instance in step.inputs():
                self._refs[instance] = self._refs.get(instance, 0) + 1
        for instance in plan.outputs.values():
            # Pin program outputs until the driver has materialised them.
            self._refs[instance] = self._refs.get(instance, 0) + 1

    # -- kernel-facing API --------------------------------------------------

    def publish(self, instance: MatrixInstance, matrix: DistributedMatrix) -> None:
        """Register a step's freshly produced output."""
        with self._lock:
            if instance in self._live or instance in self._released:
                raise ExecutionError(f"instance {instance} produced twice")
            self.events.append(("publish", instance))
            if self._refs.get(instance, 0) <= 0:
                # Nothing will ever read it (planner never emits such steps,
                # but hand-built plans can): release immediately.
                self._released.add(instance)
                self.events.append(("release", instance))
                to_free = matrix
            else:
                self._live[instance] = matrix
                return
        self._free(to_free)

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        """The live matrix for an instance (its refcount is untouched;
        consumption is per *step*, via :meth:`consume`)."""
        with self._lock:
            matrix = self._live.get(instance)
        if matrix is None:
            raise ExecutionError(
                f"plan step consumes {instance} but it is not materialised"
            )
        return matrix

    def consume(self, step: Step) -> None:
        """A step finished: drop one reference per input it consumed."""
        for instance in step.inputs():
            self._decref(instance)

    def release_output(self, instance: MatrixInstance) -> None:
        """Drop the output pin after the driver materialised the result."""
        self._decref(instance)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release everything still live (normal end or mid-run abort).

        Idempotent, and exactly-once per instance: anything already released
        through refcounting is skipped."""
        with self._lock:
            leftovers = list(self._live.items())
            self._live.clear()
            for instance, __ in leftovers:
                self._released.add(instance)
                self.events.append(("release", instance))
        for __, matrix in leftovers:
            self._free(matrix)

    def live_instances(self) -> list[MatrixInstance]:
        with self._lock:
            return list(self._live)

    # -- internals ----------------------------------------------------------

    def _decref(self, instance: MatrixInstance) -> None:
        with self._lock:
            if instance in self._released or instance not in self._live:
                return
            remaining = self._refs.get(instance, 0) - 1
            self._refs[instance] = remaining
            if remaining > 0:
                return
            matrix = self._live.pop(instance)
            self._released.add(instance)
            self.events.append(("release", instance))
        self._free(matrix)

    def _free(self, matrix: DistributedMatrix) -> None:
        if self._backend is not None:
            self._backend.release(matrix)

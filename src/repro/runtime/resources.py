"""Refcount-based lifetime management for materialised matrices.

The serial executor freed matrices with a liveness pass ("pop after the
step whose index equals the instance's last use") -- correct only when
steps run in plan order.  Under concurrent stages there is no single
"current index", so lifetimes are reference counts instead: an instance's
count is the number of plan steps that consume it (plus a pin for every
program output), decremented as each consumer finishes.  At zero the
matrix is handed to the backend's ``release`` hook and dropped.

Every transition is recorded in an event log (``("publish" | "release" |
"lost" | "restore", instance)``), which is what the lifecycle property
tests assert over: every instance published during a run -- finished or
aborted -- is released exactly once (with fault injection, an instance may
additionally be ``lost`` and later ``restore``\\ d by lineage recovery; the
books balance as ``releases + losts - restores == publishes``).  The log is
bounded (``max_events``, default :data:`DEFAULT_MAX_EVENTS`) so long
iterative runs with retries cannot grow it without bound;
``events_recorded`` / ``events_dropped`` expose the true totals.

Plans carrying optimizer ``cache_pins`` additionally run with a
:class:`BlockCache`: pinned instances hold an extra reference (like output
pins), their resident bytes are charged to the per-worker memory trackers
so ``peak_memory_bytes`` reflects them, and under cache-budget pressure
the least-recently-used pin is *spilled* (``("spill", instance)``) --
freed, but transparently recomputed through its lineage cone on the next
``get`` (``("refill", instance)``).  Spill/refill events ride alongside
the publish/release books without changing their balance.
"""

from __future__ import annotations

import collections
import threading

from repro.core.plan import MatrixInstance, Plan, Step
from repro.errors import ExecutionError, MemoryLimitExceeded
from repro.matrix.distributed import DistributedMatrix
from repro.trace.emit import active_tracer, current_stage

#: Default cap on the lifecycle event log.  Long iterative runs with
#: retries would otherwise grow it without bound; the cap is generous
#: enough that every test-scale run keeps its full history.
DEFAULT_MAX_EVENTS = 65536


class BlockCache:
    """LRU residency tracking for the plan's pinned (hoisted) instances.

    The cache does not own matrices -- the :class:`ResourceManager` does.
    It decides which pinned instances stay resident under the per-worker
    ``budget_bytes``, and charges/releases their model bytes against the
    backend's per-worker memory trackers, so a run's
    ``peak_memory_bytes`` accounts for what caching keeps alive.
    """

    def __init__(
        self,
        pins: tuple[MatrixInstance, ...],
        backend,
        budget_bytes: int | None = None,
    ) -> None:
        self._pins = frozenset(pins)
        self._backend = backend
        self._budget = budget_bytes
        self._lock = threading.Lock()
        # instance -> per-worker resident bytes charged for it (LRU order).
        self._entries: collections.OrderedDict[MatrixInstance, dict[int, int]] = (
            collections.OrderedDict()
        )
        self._worker_bytes: dict[int, int] = {}
        self.admitted = 0
        self.spilled = 0
        self.refilled = 0
        self.hits = 0  # reads served while the pinned instance was hosted
        self.misses = 0  # reads of a pinned instance that was not hosted
        self.peak_pinned_bytes = 0

    def wants(self, instance: MatrixInstance) -> bool:
        return instance in self._pins

    def is_hosted(self, instance: MatrixInstance) -> bool:
        with self._lock:
            return instance in self._entries

    def admit(
        self, instance: MatrixInstance, matrix: DistributedMatrix
    ) -> list[MatrixInstance]:
        """Host a pinned instance; returns the LRU victims evicted to make
        room (the manager spills them).  An instance that cannot fit even
        after evicting everything else is simply not hosted -- it then
        lives and dies by its refcount like any other instance."""
        per_worker = self._backend.cached_bytes(matrix)
        with self._lock:
            if instance in self._entries:
                return []
            victims: list[MatrixInstance] = []
            while self._overflows(per_worker) and self._entries:
                victim, victim_bytes = self._entries.popitem(last=False)
                self._uncharge(victim_bytes)
                victims.append(victim)
                self.spilled += 1
            if self._overflows(per_worker):
                return victims  # alone over budget: do not host
            if not self._charge(per_worker):
                return victims  # engine memory exhausted: do not host
            self._entries[instance] = per_worker
            self.admitted += 1
            return victims

    def touch(self, instance: MatrixInstance) -> None:
        with self._lock:
            if instance in self._entries:
                self.hits += 1
                self._entries.move_to_end(instance)
            elif instance in self._pins:
                self.misses += 1

    def discharge(self, instance: MatrixInstance) -> None:
        """Stop hosting an instance (freed, lost, or spilled externally)."""
        with self._lock:
            per_worker = self._entries.pop(instance, None)
            if per_worker is not None:
                self._uncharge(per_worker)

    def close(self) -> None:
        with self._lock:
            for per_worker in self._entries.values():
                self._uncharge(per_worker)
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "pins": len(self._pins),
                "hosted": len(self._entries),
                "admitted": self.admitted,
                "spilled": self.spilled,
                "refilled": self.refilled,
                "hits": self.hits,
                "misses": self.misses,
                "pinned_bytes": sum(self._worker_bytes.values()),
                "peak_pinned_bytes": self.peak_pinned_bytes,
                "budget_bytes": self._budget,
            }

    # -- internals (caller holds self._lock) ---------------------------------

    def _overflows(self, per_worker: dict[int, int]) -> bool:
        if self._budget is None:
            return False
        return any(
            self._worker_bytes.get(worker, 0) + nbytes > self._budget
            for worker, nbytes in per_worker.items()
        )

    def _charge(self, per_worker: dict[int, int]) -> bool:
        charged: list[tuple[int, int]] = []
        for worker, nbytes in per_worker.items():
            try:
                self._backend.charge_cache(worker, nbytes)
            except MemoryLimitExceeded:
                for done_worker, done_bytes in charged:
                    self._backend.discharge_cache(done_worker, done_bytes)
                return False
            charged.append((worker, nbytes))
            self._worker_bytes[worker] = self._worker_bytes.get(worker, 0) + nbytes
        self.peak_pinned_bytes = max(
            self.peak_pinned_bytes, sum(self._worker_bytes.values())
        )
        return True

    def _uncharge(self, per_worker: dict[int, int]) -> None:
        for worker, nbytes in per_worker.items():
            self._backend.discharge_cache(worker, nbytes)
            self._worker_bytes[worker] = self._worker_bytes.get(worker, 0) - nbytes


class _RefillResources:
    """Resource view for refill recomputation: reads fall back scratch ->
    live manager; writes stay in scratch (mirrors recovery's scratch)."""

    def __init__(self, scratch, manager) -> None:
        self._scratch = scratch
        self._manager = manager

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        matrix = self._scratch.get(instance)
        if matrix is not None:
            return matrix
        return self._manager.get(instance)

    def publish(self, instance: MatrixInstance, matrix) -> None:
        self._scratch[instance] = matrix

    def consume(self, step) -> None:
        pass  # scratch lifetimes end with the refill, not per step


class _RefillState:
    """Execution-state facade for re-running refill cone steps."""

    def __init__(self, base, resources: _RefillResources) -> None:
        self.backend = base.backend
        self.inputs = base.inputs
        self.block_size = base.block_size
        self.resources = resources
        self._base = base

    def get_scalar(self, name: str) -> float:
        return self._base.get_scalar(name)

    def set_scalar(self, name: str, value: float) -> None:
        pass  # driver scalars were already computed by the real run

    def scalars_snapshot(self) -> dict[str, float]:
        return self._base.scalars_snapshot()

    def record_trace(self, plan_index, trace) -> None:
        pass


class ResourceManager:
    """Tracks every live :class:`DistributedMatrix` of one plan execution."""

    def __init__(
        self,
        plan: Plan,
        backend=None,
        *,
        max_events: int | None = DEFAULT_MAX_EVENTS,
        cache: BlockCache | None = None,
    ) -> None:
        self._backend = backend
        self._plan = plan
        self._cache = cache
        self._state = None  # bound by the executor before the run starts
        self._lock = threading.Lock()
        self._refill_lock = threading.RLock()
        self._live: dict[MatrixInstance, DistributedMatrix] = {}
        self._released: set[MatrixInstance] = set()
        self._lost: set[MatrixInstance] = set()
        self._spilled: set[MatrixInstance] = set()
        self._refs: dict[MatrixInstance, int] = {}
        self.events: collections.deque[tuple[str, MatrixInstance]] = collections.deque(
            maxlen=max_events
        )
        self.events_recorded = 0
        for step in plan.steps:
            for instance in step.inputs():
                self._refs[instance] = self._refs.get(instance, 0) + 1
        for instance in plan.outputs.values():
            # Pin program outputs until the driver has materialised them.
            self._refs[instance] = self._refs.get(instance, 0) + 1
        if cache is not None:
            for instance in getattr(plan, "cache_pins", ()):
                # Cache pins hold a reference for the whole run, like output
                # pins; close() settles it.
                self._refs[instance] = self._refs.get(instance, 0) + 1

    def bind_state(self, state) -> None:
        """Give the manager the run's execution state, so spilled cache
        entries can be recomputed through their lineage cone."""
        self._state = state

    # -- kernel-facing API --------------------------------------------------

    def publish(self, instance: MatrixInstance, matrix: DistributedMatrix) -> None:
        """Register a step's freshly produced output."""
        with self._lock:
            if instance in self._live or instance in self._released:
                raise ExecutionError(f"instance {instance} produced twice")
            self._log(("publish", instance))
            if self._refs.get(instance, 0) <= 0:
                # Nothing will ever read it (planner never emits such steps,
                # but hand-built plans can): release immediately.
                self._released.add(instance)
                self._log(("release", instance))
                to_free = matrix
            else:
                self._live[instance] = matrix
                to_free = None
        if to_free is not None:
            self._free(to_free)
            return
        self._maybe_admit(instance, matrix)

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        """The live matrix for an instance (its refcount is untouched;
        consumption is per *step*, via :meth:`consume`)."""
        with self._lock:
            matrix = self._live.get(instance)
            spilled = instance in self._spilled
        if matrix is not None:
            if self._cache is not None:
                self._cache.touch(instance)
                tracer = active_tracer()
                if tracer is not None and self._cache.is_hosted(instance):
                    tracer.event(
                        "cache", "hit", stage=current_stage(), instance=str(instance)
                    )
            return matrix
        if spilled:
            return self._refill(instance)
        raise ExecutionError(
            f"plan step consumes {instance} but it is not materialised"
        )

    def consume(self, step: Step) -> None:
        """A step finished: drop one reference per input it consumed."""
        for instance in step.inputs():
            self._decref(instance)

    def release_output(self, instance: MatrixInstance) -> None:
        """Drop the output pin after the driver materialised the result."""
        self._decref(instance)

    # -- fault injection / recovery -----------------------------------------

    def invalidate(self, instance: MatrixInstance) -> None:
        """Drop a live instance's blocks as if lost to a failure.

        The refcount is untouched: consumers still expect the instance, and
        the first one to :meth:`get` it will find it missing and trigger
        lineage recovery.  Recovery re-registers the matrix via
        :meth:`restore`.
        """
        with self._lock:
            matrix = self._live.pop(instance, None)
            if matrix is None:
                raise ExecutionError(
                    f"cannot invalidate {instance}: it is not materialised"
                )
            self._lost.add(instance)
            self._log(("lost", instance))
        if self._cache is not None:
            self._cache.discharge(instance)
        self._free(matrix)

    def is_lost(self, instance: MatrixInstance) -> bool:
        """``True`` while an instance is invalidated and not yet restored."""
        with self._lock:
            return instance in self._lost

    def restore(self, instance: MatrixInstance, matrix: DistributedMatrix) -> None:
        """Re-register a recomputed matrix for a previously lost instance."""
        with self._lock:
            if instance not in self._lost:
                raise ExecutionError(
                    f"cannot restore {instance}: it was never invalidated"
                )
            self._lost.discard(instance)
            self._live[instance] = matrix
            self._log(("restore", instance))
        self._maybe_admit(instance, matrix)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release everything still live (normal end or mid-run abort).

        Idempotent, and exactly-once per instance: anything already released
        through refcounting is skipped."""
        with self._lock:
            leftovers = list(self._live.items())
            self._live.clear()
            for instance, __ in leftovers:
                self._released.add(instance)
                self._log(("release", instance))
            # Spilled-and-never-refilled cache entries were freed at spill
            # time; settle their books so every publish has its release.
            for instance in list(self._spilled):
                self._released.add(instance)
                self._log(("release", instance))
            self._spilled.clear()
        if self._cache is not None:
            self._cache.close()
        for __, matrix in leftovers:
            self._free(matrix)

    def live_instances(self) -> list[MatrixInstance]:
        with self._lock:
            return list(self._live)

    def live_items(self) -> list[tuple[MatrixInstance, DistributedMatrix]]:
        """Live (instance, matrix) pairs, without touching refcounts or the
        cache LRU (unlike :meth:`get`).  The elastic pool scans these to
        find blocks resident on a departing member."""
        with self._lock:
            return list(self._live.items())

    @property
    def events_dropped(self) -> int:
        """How many lifecycle events fell off the bounded log."""
        return self.events_recorded - len(self.events)

    # -- internals ----------------------------------------------------------

    def _log(self, event: tuple[str, MatrixInstance]) -> None:
        # Caller holds self._lock.
        self.events.append(event)
        self.events_recorded += 1

    def _decref(self, instance: MatrixInstance) -> None:
        with self._lock:
            if instance in self._released or instance not in self._live:
                return
            remaining = self._refs.get(instance, 0) - 1
            self._refs[instance] = remaining
            if remaining > 0:
                return
            matrix = self._live.pop(instance)
            self._released.add(instance)
            self._log(("release", instance))
        if self._cache is not None:
            self._cache.discharge(instance)
        self._free(matrix)

    def _free(self, matrix: DistributedMatrix) -> None:
        if self._backend is not None:
            self._backend.release(matrix)

    # -- block cache ---------------------------------------------------------

    def _maybe_admit(self, instance: MatrixInstance, matrix: DistributedMatrix) -> None:
        if self._cache is None or not self._cache.wants(instance):
            return
        for victim in self._cache.admit(instance, matrix):
            self._spill(victim)
        tracer = active_tracer()
        if tracer is not None and self._cache.is_hosted(instance):
            tracer.event("cache", "pin", stage=current_stage(), instance=str(instance))

    def _spill(self, victim: MatrixInstance) -> None:
        """Free a cache-evicted instance; a later ``get`` refills it."""
        with self._lock:
            matrix = self._live.pop(victim, None)
            if matrix is None:
                return  # already consumed to zero refs, lost, or spilled
            self._spilled.add(victim)
            self._log(("spill", victim))
        tracer = active_tracer()
        if tracer is not None:
            tracer.event("cache", "spill", stage=current_stage(), instance=str(victim))
        self._free(matrix)

    def _refill(self, instance: MatrixInstance) -> DistributedMatrix:
        """Recompute a spilled instance through its lineage cone.

        Runs on the consuming stage's thread: the recompute's flops and
        bytes are charged there, under a ``cache-refill/`` ledger scope.
        """
        with self._refill_lock:
            with self._lock:
                matrix = self._live.get(instance)
                if matrix is not None:
                    return matrix  # another consumer refilled it meanwhile
                if instance not in self._spilled:
                    raise ExecutionError(
                        f"plan step consumes {instance} but it is not materialised"
                    )
            if self._state is None:
                raise ExecutionError(
                    f"spilled instance {instance} needs recomputation but no "
                    f"execution state is bound"
                )
            # Lazy imports: repro.faults sits above the runtime in the layer
            # diagram (precedent: the executor's chaos wiring).
            from repro.faults.lineage import LineageTracker
            from repro.runtime.registry import spec_for

            def available(inst: MatrixInstance) -> bool:
                with self._lock:
                    return inst in self._live

            cone = LineageTracker(self._plan).recovery_cone(instance, available)
            scratch: dict[MatrixInstance, DistributedMatrix] = {}
            rstate = _RefillState(self._state, _RefillResources(scratch, self))
            ledger = self._backend.ledger if self._backend is not None else None
            if ledger is not None:
                with ledger.scope("cache-refill"):
                    for index in cone:
                        spec_for(self._plan.steps[index]).kernel(
                            self._plan.steps[index], rstate
                        )
            else:  # pragma: no cover - simulated backend always has a ledger
                for index in cone:
                    spec_for(self._plan.steps[index]).kernel(
                        self._plan.steps[index], rstate
                    )
            matrix = scratch.get(instance)
            if matrix is None:
                raise ExecutionError(
                    f"refill cone for {instance} did not rebuild it (steps {cone})"
                )
            with self._lock:
                self._spilled.discard(instance)
                self._live[instance] = matrix
                self._log(("refill", instance))
            if self._cache is not None:
                self._cache.refilled += 1
                tracer = active_tracer()
                if tracer is not None:
                    tracer.event(
                        "cache",
                        "refill",
                        stage=current_stage(),
                        instance=str(instance),
                        steps_recomputed=len(cone),
                    )
            self._maybe_admit(instance, matrix)
            return matrix

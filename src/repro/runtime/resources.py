"""Refcount-based lifetime management for materialised matrices.

The serial executor freed matrices with a liveness pass ("pop after the
step whose index equals the instance's last use") -- correct only when
steps run in plan order.  Under concurrent stages there is no single
"current index", so lifetimes are reference counts instead: an instance's
count is the number of plan steps that consume it (plus a pin for every
program output), decremented as each consumer finishes.  At zero the
matrix is handed to the backend's ``release`` hook and dropped.

Every transition is recorded in an event log (``("publish" | "release" |
"lost" | "restore", instance)``), which is what the lifecycle property
tests assert over: every instance published during a run -- finished or
aborted -- is released exactly once (with fault injection, an instance may
additionally be ``lost`` and later ``restore``\\ d by lineage recovery; the
books balance as ``releases + losts - restores == publishes``).  The log is
bounded (``max_events``, default :data:`DEFAULT_MAX_EVENTS`) so long
iterative runs with retries cannot grow it without bound;
``events_recorded`` / ``events_dropped`` expose the true totals.
"""

from __future__ import annotations

import collections
import threading

from repro.core.plan import MatrixInstance, Plan, Step
from repro.errors import ExecutionError
from repro.matrix.distributed import DistributedMatrix

#: Default cap on the lifecycle event log.  Long iterative runs with
#: retries would otherwise grow it without bound; the cap is generous
#: enough that every test-scale run keeps its full history.
DEFAULT_MAX_EVENTS = 65536


class ResourceManager:
    """Tracks every live :class:`DistributedMatrix` of one plan execution."""

    def __init__(
        self,
        plan: Plan,
        backend=None,
        *,
        max_events: int | None = DEFAULT_MAX_EVENTS,
    ) -> None:
        self._backend = backend
        self._lock = threading.Lock()
        self._live: dict[MatrixInstance, DistributedMatrix] = {}
        self._released: set[MatrixInstance] = set()
        self._lost: set[MatrixInstance] = set()
        self._refs: dict[MatrixInstance, int] = {}
        self.events: collections.deque[tuple[str, MatrixInstance]] = collections.deque(
            maxlen=max_events
        )
        self.events_recorded = 0
        for step in plan.steps:
            for instance in step.inputs():
                self._refs[instance] = self._refs.get(instance, 0) + 1
        for instance in plan.outputs.values():
            # Pin program outputs until the driver has materialised them.
            self._refs[instance] = self._refs.get(instance, 0) + 1

    # -- kernel-facing API --------------------------------------------------

    def publish(self, instance: MatrixInstance, matrix: DistributedMatrix) -> None:
        """Register a step's freshly produced output."""
        with self._lock:
            if instance in self._live or instance in self._released:
                raise ExecutionError(f"instance {instance} produced twice")
            self._log(("publish", instance))
            if self._refs.get(instance, 0) <= 0:
                # Nothing will ever read it (planner never emits such steps,
                # but hand-built plans can): release immediately.
                self._released.add(instance)
                self._log(("release", instance))
                to_free = matrix
            else:
                self._live[instance] = matrix
                return
        self._free(to_free)

    def get(self, instance: MatrixInstance) -> DistributedMatrix:
        """The live matrix for an instance (its refcount is untouched;
        consumption is per *step*, via :meth:`consume`)."""
        with self._lock:
            matrix = self._live.get(instance)
        if matrix is None:
            raise ExecutionError(
                f"plan step consumes {instance} but it is not materialised"
            )
        return matrix

    def consume(self, step: Step) -> None:
        """A step finished: drop one reference per input it consumed."""
        for instance in step.inputs():
            self._decref(instance)

    def release_output(self, instance: MatrixInstance) -> None:
        """Drop the output pin after the driver materialised the result."""
        self._decref(instance)

    # -- fault injection / recovery -----------------------------------------

    def invalidate(self, instance: MatrixInstance) -> None:
        """Drop a live instance's blocks as if lost to a failure.

        The refcount is untouched: consumers still expect the instance, and
        the first one to :meth:`get` it will find it missing and trigger
        lineage recovery.  Recovery re-registers the matrix via
        :meth:`restore`.
        """
        with self._lock:
            matrix = self._live.pop(instance, None)
            if matrix is None:
                raise ExecutionError(
                    f"cannot invalidate {instance}: it is not materialised"
                )
            self._lost.add(instance)
            self._log(("lost", instance))
        self._free(matrix)

    def is_lost(self, instance: MatrixInstance) -> bool:
        """``True`` while an instance is invalidated and not yet restored."""
        with self._lock:
            return instance in self._lost

    def restore(self, instance: MatrixInstance, matrix: DistributedMatrix) -> None:
        """Re-register a recomputed matrix for a previously lost instance."""
        with self._lock:
            if instance not in self._lost:
                raise ExecutionError(
                    f"cannot restore {instance}: it was never invalidated"
                )
            self._lost.discard(instance)
            self._live[instance] = matrix
            self._log(("restore", instance))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release everything still live (normal end or mid-run abort).

        Idempotent, and exactly-once per instance: anything already released
        through refcounting is skipped."""
        with self._lock:
            leftovers = list(self._live.items())
            self._live.clear()
            for instance, __ in leftovers:
                self._released.add(instance)
                self._log(("release", instance))
        for __, matrix in leftovers:
            self._free(matrix)

    def live_instances(self) -> list[MatrixInstance]:
        with self._lock:
            return list(self._live)

    @property
    def events_dropped(self) -> int:
        """How many lifecycle events fell off the bounded log."""
        return self.events_recorded - len(self.events)

    # -- internals ----------------------------------------------------------

    def _log(self, event: tuple[str, MatrixInstance]) -> None:
        # Caller holds self._lock.
        self.events.append(event)
        self.events_recorded += 1

    def _decref(self, instance: MatrixInstance) -> None:
        with self._lock:
            if instance in self._released or instance not in self._live:
                return
            remaining = self._refs.get(instance, 0) - 1
            self._refs[instance] = remaining
            if remaining > 0:
                return
            matrix = self._live.pop(instance)
            self._released.add(instance)
            self._log(("release", instance))
        self._free(matrix)

    def _free(self, matrix: DistributedMatrix) -> None:
        if self._backend is not None:
            self._backend.release(matrix)

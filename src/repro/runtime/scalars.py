"""Driver-side scalar evaluation (shared by kernels and baselines)."""

from __future__ import annotations

import math

from repro.errors import ExecutionError
from repro.lang.expr import (
    ScalarBinaryExpr,
    ScalarConst,
    ScalarExpr,
    ScalarRefExpr,
    ScalarUnaryExpr,
)


def evaluate_scalar(expr: ScalarExpr, scalars: dict[str, float]) -> float:
    """Evaluate a driver-side scalar expression against computed scalars."""
    if isinstance(expr, ScalarConst):
        return expr.value
    if isinstance(expr, ScalarRefExpr):
        if expr.name not in scalars:
            raise ExecutionError(f"scalar {expr.name!r} referenced before computation")
        return scalars[expr.name]
    if isinstance(expr, ScalarBinaryExpr):
        left = evaluate_scalar(expr.left, scalars)
        right = evaluate_scalar(expr.right, scalars)
        if expr.op == "add":
            return left + right
        if expr.op == "subtract":
            return left - right
        if expr.op == "multiply":
            return left * right
        if right == 0:
            raise ExecutionError("scalar division by zero at run time")
        return left / right
    if isinstance(expr, ScalarUnaryExpr):
        child = evaluate_scalar(expr.child, scalars)
        if expr.op == "negate":
            return -child
        if child < 0:
            raise ExecutionError(f"sqrt of negative value {child}")
        return math.sqrt(child)
    raise ExecutionError(f"unknown scalar expression {type(expr).__name__}")
